"""Shared configuration for the benchmark harnesses.

Each benchmark regenerates one paper table or figure: it runs the matching
experiment driver (at the scale selected by ``FINGRAV_SCALE``, default
``fast``), prints the regenerated rows/series so they can be compared against
the paper, asserts the paper's qualitative claims, and uses pytest-benchmark
to time a representative step.
"""

from __future__ import annotations

import pytest

from repro.core.report import comparative_report
from repro.experiments import default_scale


@pytest.fixture(scope="session")
def scale():
    """Experiment scale shared by every benchmark (env: FINGRAV_SCALE)."""
    selected = default_scale()
    print(f"\n[fingrav] benchmark scale: {selected.name}")
    return selected


def print_rows(title: str, rows) -> None:
    """Print a regenerated table with a recognisable banner."""
    print(f"\n=== {title} ===")
    if rows:
        print(comparative_report(rows))
    else:
        print("(no rows)")
