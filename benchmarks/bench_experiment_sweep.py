"""Benchmark: columnar profile construction + the parallel experiment sweep.

Two measurements, both extending ``BENCH_profiler.json``:

* ``test_profile_construction_scaling`` builds profiles from 1k-100k stitched
  LOIs through the columnar path (``profile_from_lois``) and the retained
  object-based path (``profile_from_lois_reference``), including the array
  materialisation every consumer performs (times + per-component series +
  mean).  The columnar path must be at least 5x faster at 50k points, with
  bit-identical results.
* ``test_sweep_worker_scaling`` runs the Figure-7 + Table-I job set (the two
  biggest per-kernel fan-outs of the suite) at the fast scale through
  :class:`SweepRunner` with one worker and with N workers, asserting that the
  results are identical and recording the measured wall-clock speedup.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.profile import ProfileKind, profile_from_lois, profile_from_lois_reference
from repro.core.records import LogOfInterest, PowerReading
from repro.experiments.fig7 import fig7_jobs
from repro.experiments.sweep import SweepRunner
from repro.experiments.table1 import table1_jobs
from repro.experiments.common import FAST_SCALE

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# --------------------------------------------------------------------------- #
# Profile construction: columnar vs object path.
# --------------------------------------------------------------------------- #
def make_lois(n: int, seed: int = 17) -> list[LogOfInterest]:
    rng = np.random.default_rng(seed)
    toi = rng.uniform(0, 1e-4, size=n)
    total = 700 + rng.standard_normal(n) * 12
    xcd = 500 + rng.standard_normal(n) * 8
    return [
        LogOfInterest(
            run_index=int(i % 600),
            execution_index=int(30 + (i % 4)),
            reading=PowerReading(
                gpu_timestamp_ticks=i,
                window_s=1e-3,
                total_w=float(total[i]),
                components={"xcd": float(xcd[i]), "iod": 120.0, "hbm": 80.0},
            ),
            window_end_cpu_s=1.0 + i * 1e-3,
            toi_s=float(toi[i]),
            toi_fraction=0.5,
        )
        for i in range(n)
    ]


def construction_seconds(builder, lois, repetitions: int = 3):
    """Best-of-N time to build a profile and materialise its arrays."""
    best = float("inf")
    profile = None
    for _ in range(repetitions):
        begin = time.perf_counter()
        profile = builder("bench", ProfileKind.SSP, lois, 1e-4)
        profile.times()
        for component in profile.components:
            profile.series(component)
        profile.mean_power_w()
        best = min(best, time.perf_counter() - begin)
    return profile, best


@pytest.mark.bench
def test_profile_construction_scaling():
    """Columnar construction is >=5x the object path at 50k points."""
    rows = []
    speedup_at_50k = None
    for n in (1_000, 10_000, 50_000, 100_000):
        lois = make_lois(n)
        columnar, columnar_s = construction_seconds(profile_from_lois, lois)
        objects, objects_s = construction_seconds(profile_from_lois_reference, lois)
        assert np.array_equal(columnar.times(), objects.times())
        assert columnar.components == objects.components
        for component in columnar.components:
            assert np.array_equal(columnar.series(component), objects.series(component))
        speedup = objects_s / columnar_s
        if n == 50_000:
            speedup_at_50k = speedup
        rows.append({
            "points": n,
            "columnar_ms": columnar_s * 1e3,
            "object_ms": objects_s * 1e3,
            "speedup": speedup,
        })
    print("\n=== profile construction: columnar vs object path ===")
    for row in rows:
        print(f"  {row['points']:>7} points: columnar {row['columnar_ms']:8.2f} ms, "
              f"object {row['object_ms']:8.2f} ms ({row['speedup']:.1f}x)")
    _write_results({"profile_construction": rows})
    assert speedup_at_50k is not None and speedup_at_50k >= 5.0, (
        f"columnar speedup at 50k points {speedup_at_50k:.2f}x below 5x"
    )


# --------------------------------------------------------------------------- #
# Sweep worker scaling: fig7 + table1 at fast scale, 1 vs N workers.
# --------------------------------------------------------------------------- #
def _sweep_jobs():
    return fig7_jobs(scale=FAST_SCALE) + table1_jobs(scale=FAST_SCALE)


def _profiles_identical(left, right) -> bool:
    for job_id in left:
        a, b = left[job_id], right[job_id]
        for attribute in ("ssp_profile", "sse_profile", "run_profile"):
            pa, pb = getattr(a, attribute), getattr(b, attribute)
            if len(pa) != len(pb) or not np.array_equal(pa.times(), pb.times()):
                return False
            if any(not np.array_equal(pa.series(c), pb.series(c)) for c in pa.components):
                return False
    return True


@pytest.mark.bench
def test_sweep_worker_scaling():
    """N workers beat 1 worker on the fig7+table1 job set, bit-identically.

    The wall-clock speedup is asserted only when the machine actually has more
    than one CPU; on a single-CPU box the parallel leg still runs (so the
    process-pool path and its determinism are exercised) but can only be held
    to an overhead bound.
    """
    cpus = os.cpu_count() or 1
    workers = min(max(cpus, 2), 8)
    jobs = _sweep_jobs()

    begin = time.perf_counter()
    serial = SweepRunner(workers=1).run(jobs)
    serial_s = time.perf_counter() - begin

    begin = time.perf_counter()
    parallel = SweepRunner(workers=workers).run(jobs)
    parallel_s = time.perf_counter() - begin

    speedup = serial_s / parallel_s
    print("\n=== sweep worker scaling (fig7 + table1 jobs, fast scale) ===")
    print(f"  {len(jobs)} jobs, {workers} workers, {cpus} CPUs")
    print(f"  1 worker:  {serial_s:6.2f} s")
    print(f"  {workers} workers: {parallel_s:6.2f} s")
    print(f"  speedup:   {speedup:.2f}x")
    _write_results({"sweep": {
        "jobs": len(jobs),
        "scale": FAST_SCALE.name,
        "workers": workers,
        "cpus": cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
    }})
    assert set(serial) == set(parallel)
    assert _profiles_identical(serial, parallel), "worker count changed the results"
    if cpus > 1:
        assert speedup >= 1.3, f"parallel sweep speedup {speedup:.2f}x below 1.3x"
    else:
        # Single CPU: parallelism cannot pay off; bound the pool overhead
        # (worker spawn + result pickling while contending for the one core).
        assert parallel_s <= serial_s * 2.0, (
            f"process-pool overhead too high on one CPU: {parallel_s:.2f}s "
            f"vs {serial_s:.2f}s serial"
        )
