"""Benchmark: columnar profile construction + the parallel experiment sweep.

Four measurements, all extending ``BENCH_profiler.json``:

* ``test_profile_construction_scaling`` builds profiles from 1k-100k stitched
  LOIs through the columnar path (``profile_from_lois``) and the retained
  object-based path (``profile_from_lois_reference``), including the array
  materialisation every consumer performs (times + per-component series +
  mean).  The columnar path must be at least 5x faster at 50k points, with
  bit-identical results.
* ``test_sweep_worker_scaling`` runs the Figure-7 + Table-I job set (the two
  biggest per-kernel fan-outs of the suite) at the fast scale through
  :class:`SweepRunner` with one worker and with N workers, asserting that the
  results are identical and recording the measured wall-clock speedup.
* ``test_slim_vs_full_payload`` executes every fast-scale Figure-7 job in
  both result modes and records the pickled payload bytes -- the slim mode
  must shrink at least one fig7 job's payload >=5x (the short-kernel jobs
  reach tens of x) with bit-identical profiles.
* ``test_execution_arena_run_cost`` measures per-execution ``backend.run()``
  cost on the arena (vectorized) engine against the retained object
  (``vectorized=False``) path, and against the ``device_run_cost`` numbers
  the pre-arena benchmark recorded in ``BENCH_profiler.json``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.profile import ProfileKind, profile_from_lois, profile_from_lois_reference
from repro.core.records import LogOfInterest, PowerReading
from repro.experiments.fig7 import fig7_jobs
from repro.experiments.sweep import SweepRunner, execute_job
from repro.experiments.table1 import table1_jobs
from repro.experiments.common import FAST_SCALE, make_backend
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


# --------------------------------------------------------------------------- #
# Profile construction: columnar vs object path.
# --------------------------------------------------------------------------- #
def make_lois(n: int, seed: int = 17) -> list[LogOfInterest]:
    rng = np.random.default_rng(seed)
    toi = rng.uniform(0, 1e-4, size=n)
    total = 700 + rng.standard_normal(n) * 12
    xcd = 500 + rng.standard_normal(n) * 8
    return [
        LogOfInterest(
            run_index=int(i % 600),
            execution_index=int(30 + (i % 4)),
            reading=PowerReading(
                gpu_timestamp_ticks=i,
                window_s=1e-3,
                total_w=float(total[i]),
                components={"xcd": float(xcd[i]), "iod": 120.0, "hbm": 80.0},
            ),
            window_end_cpu_s=1.0 + i * 1e-3,
            toi_s=float(toi[i]),
            toi_fraction=0.5,
        )
        for i in range(n)
    ]


def construction_seconds(builder, lois, repetitions: int = 3):
    """Best-of-N time to build a profile and materialise its arrays."""
    best = float("inf")
    profile = None
    for _ in range(repetitions):
        begin = time.perf_counter()
        profile = builder("bench", ProfileKind.SSP, lois, 1e-4)
        profile.times()
        for component in profile.components:
            profile.series(component)
        profile.mean_power_w()
        best = min(best, time.perf_counter() - begin)
    return profile, best


@pytest.mark.bench
def test_profile_construction_scaling():
    """Columnar construction is >=5x the object path at 50k points."""
    rows = []
    speedup_at_50k = None
    for n in (1_000, 10_000, 50_000, 100_000):
        lois = make_lois(n)
        columnar, columnar_s = construction_seconds(profile_from_lois, lois)
        objects, objects_s = construction_seconds(profile_from_lois_reference, lois)
        assert np.array_equal(columnar.times(), objects.times())
        assert columnar.components == objects.components
        for component in columnar.components:
            assert np.array_equal(columnar.series(component), objects.series(component))
        speedup = objects_s / columnar_s
        if n == 50_000:
            speedup_at_50k = speedup
        rows.append({
            "points": n,
            "columnar_ms": columnar_s * 1e3,
            "object_ms": objects_s * 1e3,
            "speedup": speedup,
        })
    print("\n=== profile construction: columnar vs object path ===")
    for row in rows:
        print(f"  {row['points']:>7} points: columnar {row['columnar_ms']:8.2f} ms, "
              f"object {row['object_ms']:8.2f} ms ({row['speedup']:.1f}x)")
    _write_results({"profile_construction": rows})
    assert speedup_at_50k is not None and speedup_at_50k >= 5.0, (
        f"columnar speedup at 50k points {speedup_at_50k:.2f}x below 5x"
    )


# --------------------------------------------------------------------------- #
# Sweep worker scaling: fig7 + table1 at fast scale, 1 vs N workers.
# --------------------------------------------------------------------------- #
def _sweep_jobs():
    return fig7_jobs(scale=FAST_SCALE) + table1_jobs(scale=FAST_SCALE)


def _profiles_identical(left, right) -> bool:
    for job_id in left:
        a, b = left[job_id], right[job_id]
        # Slim results carry only their declared sections; compare those.
        sections = getattr(a, "sections", ("ssp", "sse", "run"))
        if sections != getattr(b, "sections", ("ssp", "sse", "run")):
            return False
        if a.summary() != b.summary():
            return False
        for attribute in (f"{name}_profile" for name in sections):
            pa, pb = getattr(a, attribute), getattr(b, attribute)
            if len(pa) != len(pb) or not np.array_equal(pa.times(), pb.times()):
                return False
            if any(not np.array_equal(pa.series(c), pb.series(c)) for c in pa.components):
                return False
    return True


@pytest.mark.bench
def test_sweep_worker_scaling():
    """N workers beat 1 worker on the fig7+table1 job set, bit-identically.

    The wall-clock speedup is asserted only when the machine actually has more
    than one CPU; on a single-CPU box the parallel leg still runs (so the
    process-pool path and its determinism are exercised) but can only be held
    to an overhead bound.
    """
    cpus = os.cpu_count() or 1
    workers = min(max(cpus, 2), 8)
    jobs = _sweep_jobs()

    begin = time.perf_counter()
    serial = SweepRunner(workers=1).run(jobs)
    serial_s = time.perf_counter() - begin

    begin = time.perf_counter()
    parallel = SweepRunner(workers=workers).run(jobs)
    parallel_s = time.perf_counter() - begin

    speedup = serial_s / parallel_s
    print("\n=== sweep worker scaling (fig7 + table1 jobs, fast scale) ===")
    print(f"  {len(jobs)} jobs, {workers} workers, {cpus} CPUs")
    print(f"  1 worker:  {serial_s:6.2f} s")
    print(f"  {workers} workers: {parallel_s:6.2f} s")
    print(f"  speedup:   {speedup:.2f}x")
    section = {
        "jobs": len(jobs),
        "scale": FAST_SCALE.name,
        "workers": workers,
        "cpus": cpus,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
    }
    if cpus == 1:
        section["note"] = (
            "measured in a single-CPU container: the workers contend for one "
            "core, so the sub-1x 'speedup' reflects process-pool overhead, "
            "not a sweep-engine regression; re-run on a multi-core host for "
            "a meaningful ratio"
        )
    _write_results({"sweep": section})
    assert set(serial) == set(parallel)
    assert _profiles_identical(serial, parallel), "worker count changed the results"
    if cpus > 1:
        assert speedup >= 1.3, f"parallel sweep speedup {speedup:.2f}x below 1.3x"
    else:
        # Single CPU: parallelism cannot pay off; bound the pool overhead
        # (worker spawn + result pickling while contending for the one core).
        assert parallel_s <= serial_s * 2.0, (
            f"process-pool overhead too high on one CPU: {parallel_s:.2f}s "
            f"vs {serial_s:.2f}s serial"
        )


# --------------------------------------------------------------------------- #
# Slim vs full result payloads: every fig7 job, both modes.
# --------------------------------------------------------------------------- #
@pytest.mark.bench
def test_slim_vs_full_payload():
    """Slim results shrink fig7 job payloads >=5x with bit-identical profiles."""
    rows = []
    for job in fig7_jobs(scale=FAST_SCALE):
        # Pin sections to all-three so this series stays comparable with the
        # PR 4 baseline; the driver-declared subsets are measured separately
        # by bench_result_payload.py (``payload_v2``).
        full = execute_job(dataclasses.replace(job, result_mode="full"))
        slim = execute_job(
            dataclasses.replace(job, result_mode="slim", profile_sections=None)
        )
        for attribute in ("ssp_profile", "sse_profile", "run_profile"):
            pa, pb = getattr(full, attribute), getattr(slim, attribute)
            assert np.array_equal(pa.times(), pb.times())
            assert pa.components == pb.components
            for component in pa.components:
                assert np.array_equal(pa.series(component), pb.series(component))
        assert full.summary() == slim.summary()
        full_bytes = len(pickle.dumps(full, protocol=pickle.HIGHEST_PROTOCOL))
        slim_bytes = len(pickle.dumps(slim, protocol=pickle.HIGHEST_PROTOCOL))
        rows.append({
            "job": job.job_id,
            "runs": full.num_runs,
            "full_bytes": full_bytes,
            "slim_bytes": slim_bytes,
            "ratio": full_bytes / slim_bytes,
        })
    total_full = sum(row["full_bytes"] for row in rows)
    total_slim = sum(row["slim_bytes"] for row in rows)
    print("\n=== slim vs full pickled payloads (fig7, fast scale) ===")
    for row in rows:
        print(f"  {row['job']:<22} runs={row['runs']:4d}  "
              f"full {row['full_bytes']:>9,} B  slim {row['slim_bytes']:>8,} B  "
              f"({row['ratio']:.1f}x)")
    print(f"  total: {total_full:,} B -> {total_slim:,} B "
          f"({total_full / total_slim:.1f}x)")
    _write_results({"slim_payload": {
        "scale": FAST_SCALE.name,
        "jobs": rows,
        "total_full_bytes": total_full,
        "total_slim_bytes": total_slim,
        "total_ratio": total_full / total_slim,
    }})
    best = max(row["ratio"] for row in rows)
    assert best >= 5.0, f"best fig7 slim payload ratio {best:.1f}x below 5x"


# --------------------------------------------------------------------------- #
# Execution-arena run cost: per-execution backend.run() vs the object path
# (and vs the pre-arena numbers recorded by earlier benchmark runs).
# --------------------------------------------------------------------------- #
def _run_cost_seconds(backend: SimulatedDeviceBackend, executions: int) -> float:
    kernel = cb_gemm(2048)
    backend.run(kernel, executions=executions, pre_delay_s=0.0)  # warm caches
    repetitions = 12
    best = float("inf")
    for repetition in range(3):
        begin = time.perf_counter()
        for i in range(repetitions):
            backend.run(kernel, executions=executions, pre_delay_s=0.0, run_index=i)
        best = min(best, (time.perf_counter() - begin) / repetitions)
    return best


@pytest.mark.bench
def test_execution_arena_run_cost():
    """The arena engine beats the object path on per-execution run cost."""
    # The pre-arena (PR 3) vectorized numbers are snapshotted once under
    # their own key: ``device_run_cost`` is re-measured with the *current*
    # (arena) engine by bench_device_scaling.py, so reading it live would
    # turn the comparison into arena-vs-arena on every later bench run.
    previous: dict[int, float] = {}
    baseline_rows = None
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
            baseline_rows = payload.get("pre_arena_device_run_cost")
            if baseline_rows is None:
                baseline_rows = payload.get("device_run_cost")
            for row in baseline_rows or []:
                previous[row["executions"]] = row.get("vectorized_ms")
        except (json.JSONDecodeError, TypeError, KeyError):
            previous = {}
            baseline_rows = None
    rows = []
    for executions in (20, 40, 80, 160):
        arena_s = _run_cost_seconds(make_backend(seed=3), executions)
        reference_s = _run_cost_seconds(
            SimulatedDeviceBackend(
                spec=mi300x_spec(), seed=3, config=BackendConfig(vectorized=False)
            ),
            executions,
        )
        row = {
            "executions": executions,
            "arena_ms": arena_s * 1e3,
            "arena_us_per_execution": arena_s / executions * 1e6,
            "reference_ms": reference_s * 1e3,
            "speedup_vs_reference": reference_s / arena_s,
        }
        pre_arena_ms = previous.get(executions)
        if pre_arena_ms:
            row["pre_arena_ms"] = pre_arena_ms
            row["speedup_vs_pre_arena"] = pre_arena_ms / row["arena_ms"]
        rows.append(row)
    print("\n=== per-execution backend.run() cost: arena vs object path ===")
    for row in rows:
        extra = ""
        if "speedup_vs_pre_arena" in row:
            extra = (f", pre-arena {row['pre_arena_ms']:.2f} ms "
                     f"({row['speedup_vs_pre_arena']:.2f}x)")
        print(f"  {row['executions']:>4} executions: arena {row['arena_ms']:7.3f} ms "
              f"({row['arena_us_per_execution']:5.2f} us/exec), "
              f"object path {row['reference_ms']:7.3f} ms "
              f"({row['speedup_vs_reference']:.1f}x){extra}")
    update: dict = {"arena_run_cost": rows}
    if baseline_rows:
        update["pre_arena_device_run_cost"] = baseline_rows  # freeze the baseline
    _write_results(update)
    for row in rows:
        assert row["speedup_vs_reference"] >= 2.0, (
            f"arena path only {row['speedup_vs_reference']:.2f}x over the "
            f"object path at {row['executions']} executions"
        )
