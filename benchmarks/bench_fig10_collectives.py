"""Benchmark: regenerate Figure 10 (collectives vs CB-8K-GEMM, per-component power)."""

from conftest import print_rows

from repro.experiments import run_fig10


def test_fig10_collective_comparison(benchmark, scale):
    result = benchmark.pedantic(
        run_fig10, kwargs={"scale": scale, "seed": 10}, iterations=1, rounds=1
    )
    print_rows("Figure 10 (per-kernel component power, SSP profiles)", result.rows())
    print_rows("Figure 10 claims", [result.summary()])
    claims = result.all_claims()
    assert all(claims.values()), claims
