"""Benchmark: the compiled slice/boundary core vs the NumPy engines.

PR 6 ports the three hot loops of the device layer -- the per-execution
slice loop, the firmware control-boundary lattice and the thermal span
relaxation -- into a single compiled kernel call per idle span / execution
sequence (``repro.gpu.fastcore``).  This benchmark measures what that buys
on the same ``backend.run()`` shape the execution-arena benchmark uses
(``arena_run_cost`` in ``BENCH_profiler.json``), plus a sub-crossover idle
span where the NumPy grid still defers to the scalar per-period loop but
the compiled kernel (which has no crossover threshold) does not.

Acceptance: the compiled engine must beat the vectorized (arena) engine by
>=5x on per-execution run cost at the largest execution count, and must not
regress on the sub-crossover idle span.

Results land in ``BENCH_profiler.json`` under ``compiled_core``, stamped
with the active provider name and Numba version (``null`` when the
bundled-C provider carried the run).  The whole module is skipped when no
compiled-kernel provider is available in the environment.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.gpu import fastcore
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"

pytestmark = [
    pytest.mark.bench,
    pytest.mark.skipif(
        not fastcore.available(),
        reason="no compiled-kernel provider in this environment",
    ),
]

ENGINES = ("compiled", "vectorized", "reference")


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _merge_section(update: dict) -> None:
    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    section = payload.get("compiled_core", {})
    section.update(update)
    section["engines"] = {
        "compiled_available": fastcore.available(),
        "compiled_provider": fastcore.provider_name(),
        "numba_version": fastcore.numba_version(),
    }
    _write_results({"compiled_core": section})


def _make_backend(engine: str, seed: int = 3) -> SimulatedDeviceBackend:
    return SimulatedDeviceBackend(
        spec=mi300x_spec(), seed=seed, config=BackendConfig(engine=engine)
    )


@pytest.mark.bench
def test_compiled_core_run_cost():
    """Compiled engine >=5x the vectorized arena engine at the largest N.

    Same shape as ``arena_run_cost`` (zero pre-delay, CB-2K-GEMM), extended
    up to 640 executions: the vectorized engine still pays a Python-level
    per-execution loop inside ``launch_sequence``, so its cost grows
    linearly with N while the compiled sequence kernel's stays nearly flat.
    """
    kernel = cb_gemm(2048)
    rows = []
    for executions in (20, 80, 160, 320, 640):
        backends = {engine: _make_backend(engine) for engine in ENGINES}
        repetitions = 12 if executions <= 160 else 6
        for backend in backends.values():  # warm caches / lattice / kernels
            backend.run(kernel, executions=executions, pre_delay_s=0.0)
        # Interleave best-of rounds across the engines so a transient load
        # spike degrades one round of each, not one engine's whole sample.
        seconds = {engine: float("inf") for engine in ENGINES}
        for _ in range(3):
            for engine, backend in backends.items():
                begin = time.perf_counter()
                for i in range(repetitions):
                    backend.run(
                        kernel, executions=executions, pre_delay_s=0.0, run_index=i
                    )
                seconds[engine] = min(
                    seconds[engine], (time.perf_counter() - begin) / repetitions
                )
        rows.append({
            "executions": executions,
            "compiled_ms": seconds["compiled"] * 1e3,
            "compiled_us_per_execution": seconds["compiled"] / executions * 1e6,
            "vectorized_ms": seconds["vectorized"] * 1e3,
            "reference_ms": seconds["reference"] * 1e3,
            "speedup_vs_vectorized": seconds["vectorized"] / seconds["compiled"],
            "speedup_vs_reference": seconds["reference"] / seconds["compiled"],
        })
    print("\n=== per-execution backend.run() cost: compiled vs NumPy engines ===")
    print(f"  provider: {fastcore.provider_name()}, "
          f"numba: {fastcore.numba_version() or 'absent (bundled C)'}")
    for row in rows:
        print(f"  {row['executions']:>4} executions: compiled {row['compiled_ms']:7.3f} ms "
              f"({row['compiled_us_per_execution']:5.2f} us/exec), "
              f"vectorized {row['vectorized_ms']:7.3f} ms "
              f"({row['speedup_vs_vectorized']:.1f}x), "
              f"reference {row['reference_ms']:8.3f} ms "
              f"({row['speedup_vs_reference']:.1f}x)")
    _merge_section({"arena_run_cost": rows})
    largest = rows[-1]
    assert largest["speedup_vs_vectorized"] >= 5.0, (
        f"compiled engine only {largest['speedup_vs_vectorized']:.2f}x over the "
        f"vectorized engine at {largest['executions']} executions"
    )
    # Every row must at least match the engine it supersedes.
    for row in rows:
        assert row["speedup_vs_vectorized"] >= 0.9, (
            f"compiled engine regressed at {row['executions']} executions: "
            f"{row['speedup_vs_vectorized']:.2f}x"
        )


@pytest.mark.bench
def test_compiled_core_sub_crossover_idle():
    """No idle regression below the old batching crossover.

    A 2 ms span is 8 control periods -- below the 16-period
    ``_IDLE_BATCH_MIN_PERIODS`` break-even, where the vectorized engine
    deliberately runs the scalar per-period loop.  The compiled engine has
    no threshold: the same single kernel call must carry short spans at
    least as cheaply as the scalar loop does.
    """
    duration_s = 2e-3
    devices = {
        engine: SimulatedGPU(mi300x_spec(), seed=1, engine=engine)
        for engine in ("compiled", "vectorized")
    }
    for device in devices.values():
        device.start_recording()
        device.idle(duration_s)  # warm
    seconds = {engine: float("inf") for engine in devices}
    calls = 50
    for _ in range(4):
        for engine, device in devices.items():
            begin = time.perf_counter()
            for _ in range(calls):
                device.idle(duration_s)
            seconds[engine] = min(
                seconds[engine], (time.perf_counter() - begin) / calls
            )
    ratio = seconds["vectorized"] / seconds["compiled"]
    print("\n=== sub-crossover idle span (2 ms = 8 control periods) ===")
    print(f"  compiled   {seconds['compiled'] * 1e6:7.1f} us")
    print(f"  vectorized {seconds['vectorized'] * 1e6:7.1f} us "
          f"(compiled is {ratio:.2f}x)")
    _merge_section({"sub_crossover_idle": {
        "idle_ms": duration_s * 1e3,
        "control_periods": duration_s / mi300x_spec().dvfs.control_period_s,
        "compiled_us": seconds["compiled"] * 1e6,
        "vectorized_us": seconds["vectorized"] * 1e6,
        "compiled_speedup": ratio,
    }})
    # 0.85 floor: spans this short are timer-noise territory; anything near
    # parity proves the thresholdless compiled path does not regress.
    assert ratio >= 0.85, (
        f"compiled engine regressed on the sub-crossover span: {ratio:.2f}x"
    )
