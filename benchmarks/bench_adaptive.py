"""Benchmark: adaptive convergence-driven collection vs fixed run counts.

The streaming :class:`~repro.core.session.ProfileSession` stops collecting
once the golden-run SSP/SSE confidence intervals fall within
``convergence_rtol`` of the section means, turning the methodology's
worst-case run budgets (Table I) into expected-case ones.  This benchmark
profiles a short, a throttled and a memory-bound kernel under both policies
and records, per kernel:

* runs collected and wall time, fixed vs adaptive;
* the stop reason and the final relative CI the session reached;
* the drift of the adaptive SSP power estimate against the fixed one,
  which must stay within the convergence tolerance.

Results are written to the ``adaptive`` section of ``BENCH_profiler.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.gpu.backend import SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm, mb_gemv

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"

#: (kernel builder, planned runs, top-up budget, backend/profiler seeds).
CASES = {
    "CB-2K-GEMM": (lambda: cb_gemm(2048), 40, 300, 11, 211),
    "CB-8K-GEMM": (lambda: cb_gemm(8192), 50, 200, 12, 212),
    "MB-8K-GEMV": (lambda: mb_gemv(8192), 60, 120, 13, 213),
}


def _profile(name: str, adaptive: bool):
    build, runs, budget, backend_seed, profiler_seed = CASES[name]
    backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=backend_seed)
    profiler = FinGraVProfiler(
        backend,
        ProfilerConfig(
            seed=profiler_seed, max_additional_runs=budget, adaptive=adaptive
        ),
    )
    begin = time.perf_counter()
    result = profiler.profile(build(), runs=runs)
    return result, time.perf_counter() - begin


def _merge_section(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    section = dict(payload.get("adaptive") or {})
    section.update(update)
    payload["adaptive"] = section
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.bench
def test_adaptive_expected_vs_worst_case_runs():
    rows = {}
    for name in CASES:
        fixed, fixed_s = _profile(name, adaptive=False)
        adaptive, adaptive_s = _profile(name, adaptive=True)
        audit = adaptive.metadata["collection"]
        fixed_ssp = fixed.ssp_profile.mean_power_w("total")
        adaptive_ssp = adaptive.ssp_profile.mean_power_w("total")
        drift = abs(adaptive_ssp - fixed_ssp) / fixed_ssp
        rows[name] = {
            "fixed_runs": fixed.num_runs,
            "adaptive_runs": adaptive.num_runs,
            "runs_saved_vs_fixed": fixed.num_runs - adaptive.num_runs,
            "stop_reason": audit["stop_reason"],
            "final_relative_ci": audit["final_relative_ci"],
            "fixed_seconds": round(fixed_s, 4),
            "adaptive_seconds": round(adaptive_s, 4),
            "ssp_drift": round(drift, 5),
        }
        print(f"\n[adaptive] {name}: fixed {fixed.num_runs} runs "
              f"({fixed_s:.2f}s) -> adaptive {adaptive.num_runs} runs "
              f"({adaptive_s:.2f}s), stop={audit['stop_reason']}, "
              f"drift={drift:.4f}")
        # Early stopping must never move the estimate outside the tolerance.
        assert drift <= ProfilerConfig().convergence_rtol, (name, drift)
        # When convergence never fires (target/budget-bound kernels) the
        # capped checkpoint batches may overshoot the fixed policy's one-shot
        # yield-scaled sizing by at most one batch.
        overshoot_cap = max(2 * ProfilerConfig().checkpoint_every, 16)
        assert adaptive.num_runs <= fixed.num_runs + overshoot_cap, (name, rows[name])
    # At least one kernel genuinely converts worst-case runs into
    # expected-case ones.
    assert any(row["runs_saved_vs_fixed"] > 0 for row in rows.values()), rows
    _merge_section({
        "note": (
            "fixed vs convergence-driven adaptive collection "
            "(ProfileSession, rtol=0.05); same seeds and budgets per kernel"
        ),
        "kernels": rows,
    })
