"""Benchmark: regenerate Table II (takeaways, guidance and recommendations)."""

from conftest import print_rows

from repro.experiments import run_table2


def test_table2_insights(benchmark, scale):
    result = benchmark.pedantic(
        run_table2, kwargs={"scale": scale, "seed": 2}, iterations=1, rounds=1
    )
    print_rows("Table II (re-derived takeaways)", result.rows())
    assert result.all_hold(), [t.to_row() for t in result.takeaways if not t.holds]
