"""Benchmark: regenerate Figure 6 (CB-8K-GEMM total and XCD power over a run)."""

from conftest import print_rows

from repro.experiments import run_fig6
from repro.viz.ascii import render_series


def test_fig6_cb8k_run_profile(benchmark, scale):
    result = benchmark.pedantic(
        run_fig6, kwargs={"scale": scale, "seed": 6}, iterations=1, rounds=1
    )
    print_rows("Figure 6 summary", [result.summary()])
    times = [t * 1e3 for t in result.total_series.times_s]
    print(render_series(times, result.total_series.power_w,
                        x_label="run time (ms)", y_label="total power (W)"))
    assert result.throttling_detected
    assert result.rise_then_fall_then_rise()
    # Paper: ~20% SSE-vs-SSP spread for CB-8K-GEMM.
    assert 0.05 < result.sse_vs_ssp_error < 0.35
