"""Benchmark: section-aware result payloads + the NPZ spill deserializer.

Two measurements, both extending ``BENCH_profiler.json`` under ``payload_v2``:

* ``test_sectioned_payload_vs_pr4_baseline`` executes every fast-scale
  Figure-7 and Table-I job exactly as the drivers declare them (fig7 retains
  ``("ssp", "sse")``, table1 retains nothing) and records the pickled payload
  bytes.  The fig7 total must shrink at least a further 2x against the PR 4
  ``slim_payload`` baseline, which pickled all three stitched profiles.
* ``test_npz_spill_rss`` round-trips a 100k-point profile through the sweep
  cache's spill codec (pickle envelope + memory-mapped ``.npz`` sidecar),
  asserts the reload is bit-identical, and measures the peak RSS of a fresh
  deserializer subprocess for the spill path against the plain in-memory
  pickle path.  The spill path must deserialize with strictly lower peak RSS.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.profile import FineGrainProfile, ProfileColumns, ProfileKind
from repro.experiments.common import FAST_SCALE
from repro.experiments.fig7 import fig7_jobs
from repro.experiments.sweep import (
    _ColumnSpillUnpickler,
    _write_entry,
    _write_sidecar,
    execute_job,
)
from repro.experiments.table1 import table1_jobs

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"


def _read_results() -> dict:
    if RESULT_PATH.exists():
        try:
            return json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            return {}
    return {}


def _merge_payload_v2(update: dict) -> None:
    """Merge ``update`` into the ``payload_v2`` section (both tests write it)."""
    payload = _read_results()
    section = dict(payload.get("payload_v2") or {})
    section.update(update)
    payload["payload_v2"] = section
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _pickled_bytes(obj) -> int:
    return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


# --------------------------------------------------------------------------- #
# Driver-declared section subsets vs the PR 4 all-sections slim baseline.
# --------------------------------------------------------------------------- #
@pytest.mark.bench
def test_sectioned_payload_vs_pr4_baseline():
    """fig7+table1 payloads shrink >=2x further than the PR 4 slim baseline."""
    baseline = _read_results().get("slim_payload")
    assert baseline, (
        "no 'slim_payload' baseline in BENCH_profiler.json; run "
        "bench_experiment_sweep.py::test_slim_vs_full_payload first"
    )
    baseline_bytes = {row["job"]: row["slim_bytes"] for row in baseline["jobs"]}

    rows = []
    for job in fig7_jobs(scale=FAST_SCALE) + table1_jobs(scale=FAST_SCALE):
        result = execute_job(job)  # driver-declared sections, untouched
        row = {
            "job": job.job_id,
            "sections": list(job.profile_sections or ()),
            "bytes": _pickled_bytes(result),
        }
        before = baseline_bytes.get(job.job_id)
        if before is not None:
            row["pr4_slim_bytes"] = before
            row["shrink_vs_pr4"] = before / row["bytes"]
        rows.append(row)

    fig7_rows = [row for row in rows if "pr4_slim_bytes" in row]
    assert fig7_rows, "no fig7 jobs overlapped the PR 4 baseline"
    total_now = sum(row["bytes"] for row in fig7_rows)
    total_before = sum(row["pr4_slim_bytes"] for row in fig7_rows)
    shrink = total_before / total_now

    print("\n=== driver-declared section payloads vs PR 4 slim baseline ===")
    for row in rows:
        extra = ""
        if "shrink_vs_pr4" in row:
            extra = (f"  pr4 {row['pr4_slim_bytes']:>8,} B "
                     f"({row['shrink_vs_pr4']:.1f}x smaller)")
        print(f"  {row['job']:<22} sections={','.join(row['sections']) or '-':<9} "
              f"{row['bytes']:>8,} B{extra}")
    print(f"  fig7 total: {total_before:,} B -> {total_now:,} B ({shrink:.1f}x)")

    _merge_payload_v2({
        "scale": FAST_SCALE.name,
        "jobs": rows,
        "fig7_total_bytes": total_now,
        "fig7_pr4_slim_bytes": total_before,
        "fig7_shrink_vs_pr4": shrink,
    })
    assert shrink >= 2.0, (
        f"sectioned fig7 payloads only {shrink:.2f}x below the PR 4 slim "
        f"baseline, expected >=2x"
    )


# --------------------------------------------------------------------------- #
# NPZ spill: bit-identical 100k-point round trip, lower deserializer RSS.
# --------------------------------------------------------------------------- #
def _large_profile(n: int = 100_000, seed: int = 23) -> FineGrainProfile:
    rng = np.random.default_rng(seed)
    columns = ProfileColumns(
        time_s=np.sort(rng.uniform(0.0, 60.0, n)),
        run_index=rng.integers(0, 400, n),
        execution_index=rng.integers(0, 100, n),
        powers_w={
            "total": rng.uniform(300.0, 700.0, n),
            "xcd": rng.uniform(100.0, 400.0, n),
            "iod": rng.uniform(50.0, 120.0, n),
            "hbm": rng.uniform(40.0, 90.0, n),
        },
    ).freeze()
    return FineGrainProfile(
        kernel_name="bench-100k",
        kind=ProfileKind.RUN,
        execution_time_s=1e-4,
        columns=columns,
    )


_CHILD_SCRIPT = """\
import pickle, sys
from pathlib import Path

# Imported in both modes so the interpreter footprint is identical.
from repro.experiments.sweep import _ColumnSpillUnpickler


def peak_rss_kb():
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmHWM:"):
                return int(line.split()[1])
    raise RuntimeError("no VmHWM in /proc/self/status")


mode, path = sys.argv[1], Path(sys.argv[2])
# Imports dominate the process-lifetime peak, so reset the kernel's
# peak-RSS watermark: VmHWM then covers only the deserialization window.
with open("/proc/self/clear_refs", "w") as handle:
    handle.write("5\\n")
with path.open("rb") as handle:
    if mode == "plain":
        entry = pickle.load(handle)
    else:
        entry = _ColumnSpillUnpickler(handle, path.with_suffix(".npz")).load()
profile = entry["profile"]
assert profile.columns().time_s.shape[0] == 100_000
print(peak_rss_kb())
"""


def _deserializer_rss_kb(mode: str, path: Path) -> int:
    completed = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, mode, str(path)],
        capture_output=True,
        text=True,
        check=True,
        cwd=Path(__file__).resolve().parent.parent,
        env={**os.environ, "PYTHONPATH": "src"},
    )
    return int(completed.stdout.strip())


@pytest.mark.bench
def test_npz_spill_rss(tmp_path):
    """100k-point spill round trip is bit-identical and leaner to load."""
    profile = _large_profile()
    entry = {"profile": profile}

    plain_path = tmp_path / "entry-plain.pkl"
    with plain_path.open("wb") as handle:
        pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)

    spill_path = tmp_path / "entry-spill.pkl"
    with spill_path.open("wb") as handle:
        spilled = _write_entry(entry, handle, spill_points=4096)
    assert len(spilled) == 1, "the 100k-point columns never spilled"
    sidecar = spill_path.with_suffix(".npz")
    with sidecar.open("wb") as handle:
        _write_sidecar(spilled, handle)

    # Bit-identity: every array of the reloaded columns matches exactly.
    with spill_path.open("rb") as handle:
        reloaded = _ColumnSpillUnpickler(handle, sidecar).load()["profile"]
    mine, theirs = profile.columns(), reloaded.columns()
    assert mine.equals(theirs) and theirs.equals(mine)
    for name in ("time_s", "run_index", "execution_index"):
        assert getattr(mine, name).dtype == getattr(theirs, name).dtype
        assert np.array_equal(getattr(mine, name), getattr(theirs, name))
    for component in mine.powers_w:
        assert mine.powers_w[component].dtype == theirs.powers_w[component].dtype
        assert np.array_equal(mine.powers_w[component], theirs.powers_w[component])
    assert reloaded == profile

    plain_rss_kb = _deserializer_rss_kb("plain", plain_path)
    spill_rss_kb = _deserializer_rss_kb("spill", spill_path)

    plain_bytes = plain_path.stat().st_size
    spill_bytes = spill_path.stat().st_size + sidecar.stat().st_size
    print("\n=== 100k-point deserializer peak RSS: plain pickle vs NPZ spill ===")
    print(f"  plain pickle: {plain_bytes:>9,} B on disk, "
          f"peak RSS {plain_rss_kb:>7,} KB")
    print(f"  NPZ spill:    {spill_bytes:>9,} B on disk "
          f"(pickle {spill_path.stat().st_size:,} B + "
          f"sidecar {sidecar.stat().st_size:,} B), "
          f"peak RSS {spill_rss_kb:>7,} KB")
    print(f"  RSS saved:    {plain_rss_kb - spill_rss_kb:,} KB")

    _merge_payload_v2({"spill_100k": {
        "points": 100_000,
        "plain_pickle_bytes": plain_bytes,
        "spill_total_bytes": spill_bytes,
        "plain_peak_rss_kb": plain_rss_kb,
        "spill_peak_rss_kb": spill_rss_kb,
        "rss_saved_kb": plain_rss_kb - spill_rss_kb,
    }})
    assert spill_rss_kb < plain_rss_kb, (
        f"spill deserializer peak RSS {spill_rss_kb} KB not below the "
        f"in-memory pickle path {plain_rss_kb} KB"
    )
