"""Benchmark: regenerate Figure 7 (CB GEMMs vs MB GEMVs, per-component power)."""

from conftest import print_rows

from repro.experiments import run_fig7


def test_fig7_component_comparison(benchmark, scale):
    result = benchmark.pedantic(
        run_fig7, kwargs={"scale": scale, "seed": 7}, iterations=1, rounds=1
    )
    print_rows("Figure 7 (per-kernel component power, SSP profiles)", result.rows())
    print_rows("Figure 7 claims", [result.summary()])
    print_rows("SSE-vs-SSP errors", result.errors.to_rows())
    print_rows("Power proportionality", result.proportionality.to_rows())
    claims = result.all_claims()
    assert all(claims.values()), claims
