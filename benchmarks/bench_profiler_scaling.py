"""Benchmark: scaling of ``FinGraVProfiler.profile()`` in the number of runs.

The paper's methodology profiles sub-millisecond kernels by collecting
hundreds of runs (Table I), so the profiler's run->LOI->profile pipeline must
scale linearly in runs.  This benchmark isolates that pipeline with a
*replay* backend -- records are simulated once, then served instantly -- so
``profile()`` wall time is dominated by the methodology (LOI extraction,
binning, stitching), not by the simulated GPU:

* ``test_profiler_scaling_near_linear`` profiles the same short kernel at
  increasing run counts and asserts that per-run cost does not blow up.
* ``test_vectorized_speedup_over_legacy`` reproduces the paper's hardest
  case -- a ~13 us kernel whose SSE LOI scarcity drags the step-8 top-up loop
  through many batches -- and compares the vectorized incremental engine
  against the pre-PR implementation (``ProfilerConfig(vectorized=False)``:
  pure-Python LOI extraction plus a full re-collect of every record per
  batch).  Both pipelines produce bit-identical profiles; the vectorized one
  must be at least 5x faster end-to-end.

Results are written to ``BENCH_profiler.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.differentiation import build_plan
from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.core.records import DelayCalibration, RunRecord
from repro.gpu.backend import SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

KERNEL_SIZE = 1024
POOL_SEED = 404
POOL_SIZE = 700
INITIAL_RUNS = 40
TOPUP_BUDGET = 600
BENCH_CONFIG = ProfilerConfig(
    seed=909, refine_ssp_with_power_search=False, max_additional_runs=TOPUP_BUDGET
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"


class RecordPool:
    """Pre-simulated runs plus replayed timing/calibration probes."""

    def __init__(self, kernel, size: int, seed: int = POOL_SEED) -> None:
        backend = SimulatedDeviceBackend(spec=mi300x_spec(), seed=seed)
        self.kernel = kernel
        self.timings = {
            executions: backend.time_kernel(kernel, executions)
            for executions in (BENCH_CONFIG.timing_executions, 8)
        }
        self.calibration = backend.calibrate_read_delay(BENCH_CONFIG.calibration_samples)
        self.execution_time_s = float(
            np.median(self.timings[BENCH_CONFIG.timing_executions][2:])
        )
        plan = build_plan(
            backend, kernel, self.execution_time_s, refine_with_power_search=False
        )
        window_fill = backend.power_sample_period_s / self.execution_time_s
        tail = int(np.ceil(window_fill * BENCH_CONFIG.ssp_tail_fraction))
        tail = min(
            max(tail, BENCH_CONFIG.min_ssp_tail_executions),
            BENCH_CONFIG.max_ssp_tail_executions,
        )
        self.executions_per_run = plan.ssp_executions + tail
        rng = np.random.default_rng(seed + 1)
        max_delay = (
            BENCH_CONFIG.max_random_delay_periods * backend.power_sample_period_s
        )
        self.records: list[RunRecord] = [
            backend.run(
                kernel,
                executions=self.executions_per_run,
                pre_delay_s=float(rng.uniform(0.0, max_delay)),
                run_index=i,
            )
            for i in range(size)
        ]
        self.power_sample_period_s = backend.power_sample_period_s
        self.counter_frequency_hz = backend.counter_frequency_hz
        self.kernel_name = backend.kernel_name(kernel)


class ReplayBackend:
    """A ProfilingBackend that serves pre-simulated records instantly.

    Every ``profile()`` call against a fresh ReplayBackend sees the same
    deterministic sequence of records and probe results, so the vectorized
    and legacy pipelines traverse identical inputs.
    """

    def __init__(self, pool: RecordPool) -> None:
        self._pool = pool
        self._cursor = 0

    @property
    def power_sample_period_s(self) -> float:
        return self._pool.power_sample_period_s

    @property
    def counter_frequency_hz(self) -> float:
        return self._pool.counter_frequency_hz

    def kernel_name(self, kernel) -> str:
        return self._pool.kernel_name

    def time_kernel(self, kernel, executions: int) -> list[float]:
        try:
            return list(self._pool.timings[executions])
        except KeyError as exc:
            raise ValueError(f"no replayed timing probe for {executions} executions") from exc

    def calibrate_read_delay(self, samples: int = 32) -> DelayCalibration:
        return self._pool.calibration

    def run(self, kernel, executions, pre_delay_s, run_index=0, preceding=()):
        if self._cursor >= len(self._pool.records):
            raise RuntimeError("replay pool exhausted; enlarge POOL_SIZE")
        record = self._pool.records[self._cursor]
        self._cursor += 1
        if record.run_index == run_index:
            return record
        return replace(record, run_index=run_index)


@pytest.fixture(scope="module")
def pool():
    return RecordPool(cb_gemm(KERNEL_SIZE), POOL_SIZE)


def profile_seconds(pool: RecordPool, vectorized: bool, runs: int,
                    max_additional_runs: int | None = None, repetitions: int = 3):
    """Best-of-N wall time of one full profile() call (plus the result)."""
    config = BENCH_CONFIG.with_overrides(vectorized=vectorized)
    if max_additional_runs is not None:
        config = config.with_overrides(max_additional_runs=max_additional_runs)
    best = float("inf")
    result = None
    for _ in range(repetitions):
        profiler = FinGraVProfiler(ReplayBackend(pool), config)
        begin = time.perf_counter()
        result = profiler.profile(pool.kernel, runs=runs)
        best = min(best, time.perf_counter() - begin)
    return result, best


def _profiles_identical(left, right) -> bool:
    for name in ("ssp_profile", "sse_profile", "run_profile"):
        a, b = getattr(left, name), getattr(right, name)
        if len(a) != len(b) or a.execution_time_s != b.execution_time_s:
            return False
        if not np.array_equal(a.times(), b.times()):
            return False
        if a.components != b.components:
            return False
        if any(not np.array_equal(a.series(c), b.series(c)) for c in a.components):
            return False
    return True


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


@pytest.mark.bench
def test_profiler_scaling_near_linear(pool):
    """profile() wall time grows near-linearly in the number of runs."""
    counts = (60, 120, 240, 480)
    rows = []
    for runs in counts:
        _, seconds = profile_seconds(pool, vectorized=True, runs=runs,
                                     max_additional_runs=0)
        rows.append({"runs": runs, "seconds": seconds,
                     "us_per_run": seconds / runs * 1e6})
    print("\n=== profile() scaling (vectorized, replayed backend) ===")
    for row in rows:
        print(f"  {row['runs']:>4} runs: {row['seconds']*1e3:7.2f} ms "
              f"({row['us_per_run']:6.1f} us/run)")
    _write_results({"kernel": pool.kernel_name,
                    "execution_time_s": pool.execution_time_s,
                    "scaling": rows})
    # An 8x run increase may cost at most ~2.5x the per-run time (generous
    # slack over timer noise); O(n^2) behaviour would blow well past this.
    first, last = rows[0], rows[-1]
    ratio = last["seconds"] / first["seconds"]
    assert ratio < (last["runs"] / first["runs"]) * 2.5, (
        f"super-linear scaling: {ratio:.1f}x time for "
        f"{last['runs'] / first['runs']:.0f}x runs"
    )


@pytest.mark.bench
def test_vectorized_speedup_over_legacy(pool):
    """The vectorized engine beats the pre-PR pipeline >=5x, bit-identically."""
    vec_result, vec_seconds = profile_seconds(pool, vectorized=True,
                                              runs=INITIAL_RUNS)
    legacy_result, legacy_seconds = profile_seconds(pool, vectorized=False,
                                                    runs=INITIAL_RUNS)
    speedup = legacy_seconds / vec_seconds
    topup_runs = vec_result.num_runs - INITIAL_RUNS
    print("\n=== vectorized vs pre-PR profile() (replayed backend) ===")
    print(f"  kernel {pool.kernel_name}: {pool.execution_time_s*1e6:.1f} us, "
          f"{vec_result.num_runs} total runs ({topup_runs} top-up)")
    print(f"  vectorized: {vec_seconds*1e3:7.2f} ms")
    print(f"  legacy:     {legacy_seconds*1e3:7.2f} ms")
    print(f"  speedup:    {speedup:.2f}x")
    _write_results({"topup": {
        "kernel": pool.kernel_name,
        "execution_time_s": pool.execution_time_s,
        "total_runs": vec_result.num_runs,
        "topup_runs": topup_runs,
        "vectorized_seconds": vec_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": speedup,
    }})
    assert vec_result.num_runs == legacy_result.num_runs
    assert _profiles_identical(vec_result, legacy_result)
    assert topup_runs >= 200, f"scenario lost its top-up ({topup_runs} runs)"
    assert speedup >= 5.0, f"vectorized speedup {speedup:.2f}x below 5x"
