"""Benchmark: regenerate Table I (FinGraV profiling guidance)."""

from conftest import print_rows

from repro.experiments import run_table1


def test_table1_guidance(benchmark, scale):
    result = benchmark.pedantic(
        run_table1, kwargs={"scale": scale, "seed": 1}, iterations=1, rounds=1
    )
    print_rows("Table I (paper)", result.paper_rows())
    print_rows("Table I (measured LOI economics)", result.rows())
    assert result.recommendations_are_sufficient()
    assert result.shorter_kernels_need_more_runs()
