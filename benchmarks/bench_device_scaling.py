"""Benchmark: end-to-end live-backend ``profile()`` with the vectorized device.

PR 1 moved >95% of live-backend profiling cost into the simulated device's
per-slice Python loops; this PR rebuilds the device's time-advance engine
around batched slice computation and a columnar segment buffer.  Unlike
``bench_profiler_scaling`` (which replays pre-simulated records to isolate the
methodology), these benchmarks drive the *live* simulated backend, so wall
time is dominated by the device:

* ``test_device_vectorized_speedup_live`` reproduces the paper's hardest
  scenario -- a ~13 us kernel whose SSE LOI scarcity forces a large top-up
  (600-run budget) -- end to end through ``FinGraVProfiler.profile()``, and
  compares the vectorized engine against the retained per-slice pipeline
  (``BackendConfig(vectorized=False)``).  The profiles must agree (bit-equal
  run structure and golden selection; powers within the documented 1e-9
  relative tolerance from closed-form idle-span warmth) and the vectorized
  engine must be at least 3x faster.
* ``test_device_run_cost_by_exec_count`` times single instrumented runs at
  growing execution counts, showing that per-execution device cost is what
  the vectorized engine compresses.

Results are appended to ``BENCH_profiler.json`` in the repository root.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.profiler import FinGraVProfiler, ProfilerConfig
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

KERNEL_SIZE = 1024
INITIAL_RUNS = 40
TOPUP_BUDGET = 600
BENCH_CONFIG = ProfilerConfig(
    seed=909, refine_ssp_with_power_search=False, max_additional_runs=TOPUP_BUDGET
)
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _live_profile(vectorized: bool, repetitions: int = 3):
    """Median-of-N wall time of profile() against a freshly seeded live backend.

    The median (rather than best-of) keeps the measured ratio stable against
    one-off scheduler noise on either side.
    """
    kernel = cb_gemm(KERNEL_SIZE)
    seconds = []
    result = None
    for _ in range(repetitions):
        backend = SimulatedDeviceBackend(
            spec=mi300x_spec(), seed=404, config=BackendConfig(vectorized=vectorized)
        )
        profiler = FinGraVProfiler(backend, BENCH_CONFIG)
        begin = time.perf_counter()
        result = profiler.profile(kernel, runs=INITIAL_RUNS)
        seconds.append(time.perf_counter() - begin)
    return result, float(np.median(seconds))


def _profiles_close(left, right) -> bool:
    for name in ("ssp_profile", "sse_profile", "run_profile"):
        a, b = getattr(left, name), getattr(right, name)
        if len(a) != len(b) or a.execution_time_s != b.execution_time_s:
            return False
        if not np.array_equal(a.times(), b.times()):
            return False
        if a.components != b.components:
            return False
        if any(
            not np.allclose(a.series(c), b.series(c), rtol=1e-9, atol=1e-9)
            for c in a.components
        ):
            return False
    return True


@pytest.mark.bench
def test_device_vectorized_speedup_live():
    """Vectorized device beats the per-slice pipeline >=3x on a live top-up."""
    vec_result, vec_seconds = _live_profile(vectorized=True)
    ref_result, ref_seconds = _live_profile(vectorized=False)
    speedup = ref_seconds / vec_seconds
    topup_runs = vec_result.num_runs - INITIAL_RUNS
    print("\n=== vectorized device vs per-slice reference (live profile()) ===")
    print(f"  kernel CB-{KERNEL_SIZE}-GEMM: {vec_result.execution_time_s*1e6:.1f} us, "
          f"{vec_result.num_runs} total runs ({topup_runs} top-up)")
    print(f"  vectorized device: {vec_seconds:7.3f} s")
    print(f"  per-slice device:  {ref_seconds:7.3f} s")
    print(f"  speedup:           {speedup:.2f}x")
    _write_results({"device_topup": {
        "kernel": f"CB-{KERNEL_SIZE}-GEMM",
        "execution_time_s": vec_result.execution_time_s,
        "total_runs": vec_result.num_runs,
        "topup_runs": topup_runs,
        "vectorized_seconds": vec_seconds,
        "reference_seconds": ref_seconds,
        "speedup": speedup,
    }})
    assert vec_result.num_runs == ref_result.num_runs
    assert vec_result.golden_run_indices == ref_result.golden_run_indices
    assert _profiles_close(vec_result, ref_result)
    assert topup_runs >= 100, f"scenario lost its top-up ({topup_runs} runs)"
    assert speedup >= 3.0, f"vectorized device speedup {speedup:.2f}x below 3x"


@pytest.mark.bench
def test_device_run_cost_by_exec_count():
    """Per-run device cost at growing execution counts, both engines."""
    kernel = cb_gemm(KERNEL_SIZE)
    rows = []
    for executions in (20, 40, 80, 160):
        per_engine = {}
        for vectorized in (True, False):
            backend = SimulatedDeviceBackend(
                spec=mi300x_spec(), seed=7, config=BackendConfig(vectorized=vectorized)
            )
            rng = np.random.default_rng(1)
            backend.run(kernel, executions=executions, pre_delay_s=0.0, run_index=0)
            repeats = 20
            begin = time.perf_counter()
            for i in range(repeats):
                backend.run(
                    kernel,
                    executions=executions,
                    pre_delay_s=float(rng.uniform(0.0, 2e-3)),
                    run_index=i,
                )
            per_engine[vectorized] = (time.perf_counter() - begin) / repeats
        rows.append({
            "executions": executions,
            "vectorized_ms": per_engine[True] * 1e3,
            "reference_ms": per_engine[False] * 1e3,
            "speedup": per_engine[False] / per_engine[True],
        })
    print("\n=== backend.run() cost by execution count ===")
    for row in rows:
        print(f"  {row['executions']:>4} executions: vectorized {row['vectorized_ms']:6.2f} ms, "
              f"per-slice {row['reference_ms']:6.2f} ms ({row['speedup']:.2f}x)")
    _write_results({"device_run_cost": rows})
    # Device cost dominates at high execution counts, where the vectorized
    # engine must hold a solid advantage.
    assert rows[-1]["speedup"] >= 2.0
