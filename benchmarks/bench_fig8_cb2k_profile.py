"""Benchmark: regenerate Figure 8 (CB-2K-GEMM total and XCD power over a run)."""

from conftest import print_rows

from repro.experiments import run_fig8
from repro.viz.ascii import render_series


def test_fig8_cb2k_run_profile(benchmark, scale):
    result = benchmark.pedantic(
        run_fig8, kwargs={"scale": scale, "seed": 8}, iterations=1, rounds=1
    )
    print_rows("Figure 8 summary", [result.summary()])
    times = [t * 1e3 for t in result.total_series.times_s]
    print(render_series(times, result.total_series.power_w,
                        x_label="run time (ms)", y_label="total power (W)"))
    assert result.gradual_rise()
    # Paper: up to ~80% SSE-vs-SSP error for CB-2K-GEMM.
    assert result.sse_vs_ssp_error > 0.4
