"""Benchmark: idle-span cost across the batched, inline and compiled engines.

After PR 2-4 vectorized the execution, record and profile layers, multi-
boundary idle spans were the last per-control-period Python loop on the
``backend.run()`` hot path: fig5-style padding, interleaving gaps and
park/boost studies spend most of their simulated time idle, one loop
iteration per 250 us firmware control period.  PR 5 batched those spans
into a verified NumPy boundary grid with a closed-form firmware update
(``PowerManagementFirmware.idle_span``); PR 6 ports the whole span to a
single compiled-kernel call with *no* crossover threshold at all.

Four engines are timed on an idle-heavy instrumented run (a park/boost-study
shape: few executions separated by tens of milliseconds of idle):

* ``compiled`` -- the compiled slice/boundary core (skipped when no
  fastcore provider is available in the environment),
* ``batched`` -- the NumPy boundary engine (the vectorized default),
* ``inline`` -- the retained per-period scalar loop the batched engine
  replaced and falls back to (``_idle_batch_min_periods = inf``),
* ``reference`` -- the pinned per-slice specification
  (``BackendConfig(engine="reference")``).

The run records must agree across all engines (the device equivalence suite
pins the full bit-identical contract); the batched engine must beat the
pinned reference by >=3x on the idle-heavy shape, and the compiled engine
must not trail the batched one.  A raw ``device.idle()`` scaling table shows
where the per-period loop's linear cost collapses -- including a
sub-crossover span (below the 16-period ``_IDLE_BATCH_MIN_PERIODS``
break-even, where the NumPy grid still defers to the scalar loop but the
compiled kernel does not).

Results are appended to ``BENCH_profiler.json`` (section ``idle_span``),
stamped with the active engine/provider names and Numba version.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpu import fastcore
from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

KERNEL_SIZE = 1024
EXECUTIONS = 4
PRE_DELAY_S = 50e-3  # ~200 control periods of idle between anchor and kernels
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"

_BACKEND_ENGINE = {
    "compiled": "compiled",
    "batched": "vectorized",
    "inline": "vectorized",
    "reference": "reference",
}


def _engines() -> tuple[str, ...]:
    base = ("batched", "inline", "reference")
    return (("compiled",) + base) if fastcore.available() else base


def _provenance() -> dict:
    """Engine/provider stamp recorded next to every timing section."""
    return {
        "compiled_available": fastcore.available(),
        "compiled_provider": fastcore.provider_name(),
        "numba_version": fastcore.numba_version(),
    }


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _make_backend(engine: str, seed: int = 31) -> SimulatedDeviceBackend:
    backend = SimulatedDeviceBackend(
        spec=mi300x_spec(),
        seed=seed,
        config=BackendConfig(engine=_BACKEND_ENGINE[engine]),
    )
    if engine == "inline":
        backend.device._idle_batch_min_periods = float("inf")
    return backend


def _run_costs(repeats: int = 25, rounds: int = 4) -> tuple[dict, dict]:
    """Best-of-N mean wall time of one idle-heavy instrumented run per engine.

    Rounds are interleaved across the engines so a transient load spike on
    the machine degrades every engine's round rather than one engine's whole
    measurement -- the reported ratios stay stable under contention.
    """
    kernel = cb_gemm(KERNEL_SIZE)
    backends = {engine: _make_backend(engine) for engine in _engines()}
    records = {
        engine: backend.run(kernel, executions=EXECUTIONS, pre_delay_s=PRE_DELAY_S, run_index=0)
        for engine, backend in backends.items()
    }
    seconds = {engine: float("inf") for engine in backends}
    for _ in range(rounds):
        for engine, backend in backends.items():
            begin = time.perf_counter()
            for i in range(repeats):
                backend.run(
                    kernel, executions=EXECUTIONS, pre_delay_s=PRE_DELAY_S, run_index=i
                )
            seconds[engine] = min(seconds[engine], (time.perf_counter() - begin) / repeats)
    return seconds, records


@pytest.mark.bench
def test_idle_span_backend_run_speedup():
    """Batched idle spans beat the pinned reference >=3x on idle-heavy runs."""
    seconds, records = _run_costs()
    engines = tuple(seconds)

    # The first run of every engine must agree record-for-record (the device
    # equivalence suite pins the full contract; this is the smoke check).
    reference_record = records["reference"]
    for engine in engines:
        if engine == "reference":
            continue
        record = records[engine]
        assert len(record.executions) == len(reference_record.executions)
        for ours, theirs in zip(record.executions, reference_record.executions):
            assert ours == theirs
        assert len(record.readings) == len(reference_record.readings)
        for ours, theirs in zip(record.readings, reference_record.readings):
            assert ours.gpu_timestamp_ticks == theirs.gpu_timestamp_ticks
            assert ours.total_w == pytest.approx(theirs.total_w, rel=1e-9)

    speedup_vs_reference = seconds["reference"] / seconds["batched"]
    speedup_vs_inline = seconds["inline"] / seconds["batched"]
    idle_periods = (PRE_DELAY_S + 8e-3 + 2.8e-3) / mi300x_spec().dvfs.control_period_s
    print("\n=== idle-span engines: idle-heavy backend.run() ===")
    print(f"  shape: {EXECUTIONS} x CB-{KERNEL_SIZE}-GEMM, pre-delay "
          f"{PRE_DELAY_S * 1e3:.0f} ms (~{idle_periods:.0f} idle control periods/run)")
    for engine in engines:
        print(f"  {engine:>9}: {seconds[engine] * 1e6:8.1f} us/run")
    print(f"  speedup vs per-period inline loop: {speedup_vs_inline:.2f}x")
    print(f"  speedup vs per-slice reference:    {speedup_vs_reference:.2f}x")
    section = {
        "workload": {
            "kernel": f"CB-{KERNEL_SIZE}-GEMM",
            "executions": EXECUTIONS,
            "pre_delay_s": PRE_DELAY_S,
        },
        "engines": _provenance(),
        "run_seconds": {engine: seconds[engine] for engine in engines},
        "speedup_vs_inline": speedup_vs_inline,
        "speedup_vs_reference": speedup_vs_reference,
    }
    if "compiled" in seconds:
        section["compiled_speedup_vs_reference"] = (
            seconds["reference"] / seconds["compiled"]
        )
        section["compiled_speedup_vs_batched"] = (
            seconds["batched"] / seconds["compiled"]
        )
        print(f"  compiled vs reference:             "
              f"{section['compiled_speedup_vs_reference']:.2f}x")
        print(f"  compiled vs batched:               "
              f"{section['compiled_speedup_vs_batched']:.2f}x")
    _write_results({"idle_span": section})
    assert speedup_vs_reference >= 3.0, (
        f"batched idle-span engine only {speedup_vs_reference:.2f}x over the reference"
    )
    # Soft floor: the measured ratio is ~1.5x; anything clearly above parity
    # proves the batched grid carries the idle-heavy shape.
    assert speedup_vs_inline >= 1.1, (
        f"batched idle-span engine only {speedup_vs_inline:.2f}x over the inline loop"
    )
    if "compiled" in seconds:
        # The compiled core must not trail the NumPy grid it supersedes
        # (0.9 floor absorbs timer noise; in practice it is well ahead).
        assert section["compiled_speedup_vs_batched"] >= 0.9, (
            f"compiled engine regressed to "
            f"{section['compiled_speedup_vs_batched']:.2f}x of the batched grid"
        )


@pytest.mark.bench
def test_idle_span_raw_scaling():
    """Raw device.idle() cost: linear per-period loop vs batched vs compiled.

    The 2 ms span (8 control periods) sits below the 16-period
    ``_IDLE_BATCH_MIN_PERIODS`` break-even, so the NumPy grid deliberately
    defers to the identical per-period path there -- but the compiled kernel
    has no threshold and must not regress on it.  The 8 ms span (32 periods)
    used to sit below the old 48-period crossover and ride the scalar loop;
    with the measured break-even of ~16-24 periods it now takes the batched
    grid.  The long spans must show the step change.
    """
    compiled_on = fastcore.available()
    rows = []
    for duration_s in (2e-3, 8e-3, 50e-3, 200e-3):
        devices = {}
        engine_names = ("compiled", "batched", "inline") if compiled_on else ("batched", "inline")
        for engine in engine_names:
            device = SimulatedGPU(
                mi300x_spec(), seed=1, engine=_BACKEND_ENGINE[engine]
            )
            if engine == "inline":
                device._idle_batch_min_periods = float("inf")
            device.start_recording()
            device.idle(duration_s)  # warm the lattice / caches / JIT
            devices[engine] = device
        # Interleave best-of rounds across the engines so a transient load
        # spike degrades one round of each, not one engine's whole sample.
        per_engine = {engine: float("inf") for engine in devices}
        calls = max(5, int(0.1 / duration_s))
        for _ in range(4):
            for engine, device in devices.items():
                begin = time.perf_counter()
                for _ in range(calls):
                    device.idle(duration_s)
                per_engine[engine] = min(
                    per_engine[engine], (time.perf_counter() - begin) / calls
                )
        for device in devices.values():
            device.stop_recording()
        row = {
            "idle_ms": duration_s * 1e3,
            "batched_us": per_engine["batched"] * 1e6,
            "inline_us": per_engine["inline"] * 1e6,
            "speedup": per_engine["inline"] / per_engine["batched"],
        }
        if compiled_on:
            row["compiled_us"] = per_engine["compiled"] * 1e6
            row["compiled_speedup_vs_inline"] = (
                per_engine["inline"] / per_engine["compiled"]
            )
        rows.append(row)
    print("\n=== raw device.idle() cost by span length ===")
    for row in rows:
        line = (f"  idle({row['idle_ms']:6.1f} ms): batched {row['batched_us']:8.1f} us, "
                f"per-period {row['inline_us']:8.1f} us ({row['speedup']:.2f}x)")
        if compiled_on:
            line += (f", compiled {row['compiled_us']:8.1f} us "
                     f"({row['compiled_speedup_vs_inline']:.2f}x vs per-period)")
        print(line)
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    section = results.get("idle_span", {})
    section["engines"] = _provenance()
    section["raw_idle_scaling"] = rows
    _write_results({"idle_span": section})
    # Long spans must show the step change (the 2 ms row is sub-crossover
    # parity for the NumPy grid by design and intentionally unasserted).
    assert rows[-1]["speedup"] >= 3.0
    assert rows[-2]["speedup"] >= 2.0
    if compiled_on:
        # The compiled kernel has no crossover: even the sub-crossover 2 ms
        # span must not regress against the scalar per-period loop (0.85
        # floor absorbs timer noise on a span this short).
        assert rows[0]["compiled_speedup_vs_inline"] >= 0.85, (
            f"compiled engine regressed on the sub-crossover span: "
            f"{rows[0]['compiled_speedup_vs_inline']:.2f}x vs the per-period loop"
        )
        # And the long spans must keep at least batched-grid performance.
        assert rows[-1]["compiled_us"] <= rows[-1]["batched_us"] * 1.15
