"""Benchmark: the batched idle-span boundary engine on idle-heavy workloads.

After PR 2-4 vectorized the execution, record and profile layers, multi-
boundary idle spans were the last per-control-period Python loop on the
``backend.run()`` hot path: fig5-style padding, interleaving gaps and
park/boost studies spend most of their simulated time idle, one loop
iteration per 250 us firmware control period.  This PR batches those spans
into a verified NumPy boundary grid with a closed-form firmware update
(``PowerManagementFirmware.idle_span``).

Three engines are timed on an idle-heavy instrumented run (a park/boost-study
shape: few executions separated by tens of milliseconds of idle):

* ``batched`` -- the new boundary engine (default),
* ``inline`` -- the retained per-period scalar loop the batched engine
  replaced and falls back to (``_idle_batch_min_periods = inf``),
* ``reference`` -- the pinned per-slice specification
  (``BackendConfig(vectorized=False)``).

The run records must agree across all three (the device equivalence suite
pins the full bit-identical contract); the batched engine must beat the
pinned reference by >=3x on the idle-heavy shape.  A raw ``device.idle()``
scaling table shows where the per-period loop's linear cost collapses.

Results are appended to ``BENCH_profiler.json`` (section ``idle_span``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.gpu.backend import BackendConfig, SimulatedDeviceBackend
from repro.gpu.device import SimulatedGPU
from repro.gpu.spec import mi300x_spec
from repro.kernels.workloads import cb_gemm

KERNEL_SIZE = 1024
EXECUTIONS = 4
PRE_DELAY_S = 50e-3  # ~200 control periods of idle between anchor and kernels
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_profiler.json"

ENGINES = ("batched", "inline", "reference")


def _write_results(update: dict) -> None:
    payload = {}
    if RESULT_PATH.exists():
        try:
            payload = json.loads(RESULT_PATH.read_text())
        except json.JSONDecodeError:
            payload = {}
    payload.update(update)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def _make_backend(engine: str, seed: int = 31) -> SimulatedDeviceBackend:
    backend = SimulatedDeviceBackend(
        spec=mi300x_spec(),
        seed=seed,
        config=BackendConfig(vectorized=(engine != "reference")),
    )
    if engine == "inline":
        backend.device._idle_batch_min_periods = float("inf")
    return backend


def _run_costs(repeats: int = 25, rounds: int = 4) -> tuple[dict, dict]:
    """Best-of-N mean wall time of one idle-heavy instrumented run per engine.

    Rounds are interleaved across the engines so a transient load spike on
    the machine degrades every engine's round rather than one engine's whole
    measurement -- the reported ratios stay stable under contention.
    """
    kernel = cb_gemm(KERNEL_SIZE)
    backends = {engine: _make_backend(engine) for engine in ENGINES}
    records = {
        engine: backend.run(kernel, executions=EXECUTIONS, pre_delay_s=PRE_DELAY_S, run_index=0)
        for engine, backend in backends.items()
    }
    seconds = {engine: float("inf") for engine in ENGINES}
    for _ in range(rounds):
        for engine, backend in backends.items():
            begin = time.perf_counter()
            for i in range(repeats):
                backend.run(
                    kernel, executions=EXECUTIONS, pre_delay_s=PRE_DELAY_S, run_index=i
                )
            seconds[engine] = min(seconds[engine], (time.perf_counter() - begin) / repeats)
    return seconds, records


@pytest.mark.bench
def test_idle_span_backend_run_speedup():
    """Batched idle spans beat the pinned reference >=3x on idle-heavy runs."""
    seconds, records = _run_costs()

    # The first run of every engine must agree record-for-record (the device
    # equivalence suite pins the full contract; this is the smoke check).
    reference_record = records["reference"]
    for engine in ("batched", "inline"):
        record = records[engine]
        assert len(record.executions) == len(reference_record.executions)
        for ours, theirs in zip(record.executions, reference_record.executions):
            assert ours == theirs
        assert len(record.readings) == len(reference_record.readings)
        for ours, theirs in zip(record.readings, reference_record.readings):
            assert ours.gpu_timestamp_ticks == theirs.gpu_timestamp_ticks
            assert ours.total_w == pytest.approx(theirs.total_w, rel=1e-9)

    speedup_vs_reference = seconds["reference"] / seconds["batched"]
    speedup_vs_inline = seconds["inline"] / seconds["batched"]
    idle_periods = (PRE_DELAY_S + 8e-3 + 2.8e-3) / mi300x_spec().dvfs.control_period_s
    print("\n=== batched idle-span engine: idle-heavy backend.run() ===")
    print(f"  shape: {EXECUTIONS} x CB-{KERNEL_SIZE}-GEMM, pre-delay "
          f"{PRE_DELAY_S * 1e3:.0f} ms (~{idle_periods:.0f} idle control periods/run)")
    for engine in ENGINES:
        print(f"  {engine:>9}: {seconds[engine] * 1e6:8.1f} us/run")
    print(f"  speedup vs per-period inline loop: {speedup_vs_inline:.2f}x")
    print(f"  speedup vs per-slice reference:    {speedup_vs_reference:.2f}x")
    _write_results({"idle_span": {
        "workload": {
            "kernel": f"CB-{KERNEL_SIZE}-GEMM",
            "executions": EXECUTIONS,
            "pre_delay_s": PRE_DELAY_S,
        },
        "run_seconds": {engine: seconds[engine] for engine in ENGINES},
        "speedup_vs_inline": speedup_vs_inline,
        "speedup_vs_reference": speedup_vs_reference,
    }})
    assert speedup_vs_reference >= 3.0, (
        f"batched idle-span engine only {speedup_vs_reference:.2f}x over the reference"
    )
    # Soft floor: the measured ratio is ~1.5x; anything clearly above parity
    # proves the batched grid carries the idle-heavy shape.
    assert speedup_vs_inline >= 1.1, (
        f"batched idle-span engine only {speedup_vs_inline:.2f}x over the inline loop"
    )


@pytest.mark.bench
def test_idle_span_raw_scaling():
    """Raw device.idle() cost: linear per-period loop vs flat batched grid.

    The 8 ms row sits below the ``_IDLE_BATCH_MIN_PERIODS`` crossover, so
    both engines deliberately take the identical per-period path there
    (documented parity, not asserted -- the ratio is pure timer noise); the
    long spans must show the step change.
    """
    rows = []
    for duration_s in (8e-3, 50e-3, 200e-3):
        devices = {}
        for engine in ("batched", "inline"):
            device = SimulatedGPU(mi300x_spec(), seed=1, vectorized=True)
            if engine == "inline":
                device._idle_batch_min_periods = float("inf")
            device.start_recording()
            device.idle(duration_s)  # warm the lattice / caches
            devices[engine] = device
        # Interleave best-of rounds across the engines so a transient load
        # spike degrades one round of each, not one engine's whole sample.
        per_engine = {engine: float("inf") for engine in devices}
        calls = max(5, int(0.1 / duration_s))
        for _ in range(4):
            for engine, device in devices.items():
                begin = time.perf_counter()
                for _ in range(calls):
                    device.idle(duration_s)
                per_engine[engine] = min(
                    per_engine[engine], (time.perf_counter() - begin) / calls
                )
        for device in devices.values():
            device.stop_recording()
        rows.append({
            "idle_ms": duration_s * 1e3,
            "batched_us": per_engine["batched"] * 1e6,
            "inline_us": per_engine["inline"] * 1e6,
            "speedup": per_engine["inline"] / per_engine["batched"],
        })
    print("\n=== raw device.idle() cost by span length ===")
    for row in rows:
        print(f"  idle({row['idle_ms']:6.1f} ms): batched {row['batched_us']:8.1f} us, "
              f"per-period {row['inline_us']:8.1f} us ({row['speedup']:.2f}x)")
    results = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {}
    section = results.get("idle_span", {})
    section["raw_idle_scaling"] = rows
    _write_results({"idle_span": section})
    # Long spans must show the step change (the 8 ms row is sub-crossover
    # parity by design and intentionally unasserted).
    assert rows[-1]["speedup"] >= 3.0
    assert rows[-2]["speedup"] >= 2.0
