"""Benchmark: regenerate Figure 5 (methodology evaluation on CB-4K-GEMM)."""

from conftest import print_rows

from repro.experiments import run_fig5


def test_fig5_methodology_evaluation(benchmark, scale):
    result = benchmark.pedantic(
        run_fig5, kwargs={"scale": scale, "seed": 5}, iterations=1, rounds=1
    )
    print_rows("Figure 5 (methodology evaluation summary)", result.rows())
    assert result.sync_captures_ramp()
    assert result.binning_tightens_profile()
    assert result.differentiation_matters()
    assert result.resilient_to_fewer_runs()
