"""Benchmark: ablations of the methodology / substrate design choices.

Covers the knobs DESIGN.md calls out: averaging-window vs instantaneous
sampling, coarse-sampler coverage (challenge C1), the binning-margin
trade-off, and CPU/GPU clock-drift sensitivity (the Lang et al. discussion).
"""

from conftest import print_rows

from repro.experiments import (
    run_binning_margin_sweep,
    run_coarse_coverage,
    run_drift_sensitivity,
    run_sampler_ablation,
)


def test_ablation_sampler_window(benchmark, scale):
    result = benchmark.pedantic(
        run_sampler_ablation, kwargs={"scale": scale, "seed": 31}, iterations=1, rounds=1
    )
    print_rows("Ablation: averaging vs instantaneous sampler", [result.to_row()])
    assert result.averaging_window_causes_split()


def test_ablation_coarse_sampler_coverage(benchmark, scale):
    result = benchmark.pedantic(
        run_coarse_coverage, kwargs={"scale": scale, "seed": 32}, iterations=1, rounds=1
    )
    print_rows("Ablation: coarse (amd-smi-like) sampler coverage", [result.to_row()])
    assert result.coarse_misses_kernels()


def test_ablation_binning_margin(benchmark, scale):
    result = benchmark.pedantic(
        run_binning_margin_sweep, kwargs={"scale": scale, "seed": 33}, iterations=1, rounds=1
    )
    print_rows("Ablation: binning margin sweep (CB-4K-GEMM)", result.rows())
    assert result.tighter_margin_keeps_fewer_runs()


def test_ablation_clock_drift(benchmark, scale):
    result = benchmark.pedantic(
        run_drift_sensitivity, kwargs={"scale": scale, "seed": 34}, iterations=1, rounds=1
    )
    print_rows("Ablation: CPU/GPU clock drift sensitivity", result.rows())
    assert result.error_grows_with_drift()
