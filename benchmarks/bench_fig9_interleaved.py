"""Benchmark: regenerate Figure 9 (interleaved kernel power vs isolated SSP)."""

from conftest import print_rows

from repro.experiments import run_fig9


def test_fig9_interleaved_kernels(benchmark, scale):
    result = benchmark.pedantic(
        run_fig9, kwargs={"scale": scale, "seed": 9}, iterations=1, rounds=1
    )
    print_rows("Figure 9 (interleaved vs isolated SSP total power)", result.rows())
    print_rows("Figure 9 expectations", [result.summary()])
    assert result.short_kernels_affected_long_not()
