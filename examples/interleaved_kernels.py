"""Interleaved-execution power study (Figure 9) and measurement guidance #2.

Measures how the power attributed to a kernel changes when other kernels run
immediately before it: kernels shorter than the logger's 1 ms averaging window
inherit the power level of their predecessors, while a compute-heavy GEMM
longer than the window is essentially unaffected.  This is the paper's
rationale for measurement guidance #2 (profile short kernels in isolation).

Usage::

    python examples/interleaved_kernels.py [--runs N]
"""

from __future__ import annotations

import argparse

from repro.analysis.interleaving import InterleavingStudy
from repro.core.report import comparative_report
from repro.experiments.common import make_backend, make_profiler
from repro.kernels.workloads import interleaving_scenarios


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=50,
                        help="interleaved runs per scenario (default: 50)")
    parser.add_argument("--seed", type=int, default=9)
    args = parser.parse_args()

    backend = make_backend(seed=args.seed)
    profiler = make_profiler(backend, seed=args.seed + 100)
    study = InterleavingStudy(backend, profiler=profiler, runs=args.runs, seed=args.seed + 200)

    scenarios = interleaving_scenarios()
    print("Scenarios (paper Figure 9):")
    for scenario in scenarios:
        print(f"  {scenario.describe()}")

    print("\nProfiling isolated SSP references and interleaved executions...")
    isolated = {}
    for scenario in scenarios:
        name = backend.kernel_name(scenario.kernel_of_interest)
        if name not in isolated:
            isolated[name] = study.isolated_ssp(scenario.kernel_of_interest)
    measurements = study.run_scenarios(scenarios, isolated=isolated)

    rows = []
    for measurement in measurements:
        rows.append(
            {
                "scenario": measurement.label,
                "kernel": measurement.kernel_name,
                "isolated_ssp_w": round(measurement.isolated_ssp_w, 1),
                "interleaved_w": round(measurement.interleaved_w, 1),
                "ratio": round(measurement.ratio, 2),
                "direction": measurement.direction(),
            }
        )
    print()
    print(comparative_report(rows))
    print(
        "\nMeasurement guidance #2: kernels shorter than the power-averaging window"
        "\nmust be profiled in isolation -- their measured power otherwise reflects"
        "\nwhatever executed just before them."
    )


if __name__ == "__main__":
    main()
