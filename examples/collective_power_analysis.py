"""Power analysis of communication collectives on the 8-GPU platform (Figure 10).

Profiles all-gather and all-reduce at latency-bound (64 KB / 128 KB) and
bandwidth-bound (512 MB / 1 GB) payloads on the simulated Infinity Platform,
compares them against the compute-bound 8K GEMM, and prints the classification
of each payload as latency- vs bandwidth-bound together with the component
power comparison -- the data behind the paper's observation that bandwidth-
bound collectives sit between latency-bound collectives and GEMMs in total
power while stressing the IOD and HBM.

Usage::

    python examples/collective_power_analysis.py [--runs N]
"""

from __future__ import annotations

import argparse

from repro.analysis.comparative import ComponentComparison, compare_kernels
from repro.core.report import comparative_report, format_duration
from repro.experiments.common import make_backend, make_profiler
from repro.kernels.workloads import cb_gemm, collective_suite
from repro.viz.ascii import render_bar_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=60,
                        help="runs per collective kernel (default: 60)")
    parser.add_argument("--gemm-runs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=10)
    args = parser.parse_args()

    collectives = collective_suite()
    print("Collective timing and boundedness classification:")
    rows = []
    for kernel in collectives:
        timing = kernel.timing()
        rows.append(
            {
                "kernel": kernel.name,
                "payload": f"{kernel.message_bytes / 1024:.0f}KB"
                if kernel.message_bytes < 1024 ** 2
                else f"{kernel.message_bytes / 1024 ** 2:.0f}MB",
                "duration": format_duration(timing.duration_s),
                "regime": kernel.regime().value,
            }
        )
    print(comparative_report(rows))

    backend = make_backend(seed=args.seed)
    profiler = make_profiler(backend, seed=args.seed + 100)
    print(f"\nProfiling {len(collectives)} collectives ({args.runs} runs each) "
          f"and CB-8K-GEMM ({args.gemm_runs} runs)...")
    comm_cmp, _ = compare_kernels(profiler, collectives, runs=args.runs)
    gemm_cmp, _ = compare_kernels(profiler, [cb_gemm(8192)], runs=args.gemm_runs)
    comparison = ComponentComparison(
        summaries=tuple(list(comm_cmp.summaries) + list(gemm_cmp.summaries))
    )

    print("\nPer-component SSP power (Figure 10):")
    print(comparative_report(comparison.to_rows()))
    print("\nTotal power, relative view:")
    print(render_bar_chart(comparison.series("total")))
    print("\nIOD power, relative view (bandwidth-bound collectives dominate):")
    print(render_bar_chart(comparison.series("iod")))


if __name__ == "__main__":
    main()
