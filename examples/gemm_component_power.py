"""Component-level power comparison of the paper's GEMM/GEMV suite (Figure 7).

Profiles the three compute-bound GEMMs and three memory-bound GEMVs with the
FinGraV methodology, then prints the per-component comparison, the
SSE-vs-SSP measurement errors, and the power-proportionality assessment that
motivates the paper's recommendations 2 and 3 (optimise XCD power for
compute-heavy kernels; pursue power proportionality for compute-light ones).

Usage::

    python examples/gemm_component_power.py [--gemm-runs N] [--gemv-runs N]
"""

from __future__ import annotations

import argparse

from repro.analysis.comparative import ComponentComparison, compare_kernels
from repro.analysis.errors import summarize_errors
from repro.analysis.proportionality import assess_proportionality
from repro.core.report import comparative_report
from repro.experiments.common import make_backend, make_profiler
from repro.kernels.workloads import cb_gemms, mb_gemvs
from repro.viz.ascii import render_bar_chart


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--gemm-runs", type=int, default=60)
    parser.add_argument("--gemv-runs", type=int, default=150)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    backend = make_backend(seed=args.seed)
    profiler = make_profiler(backend, seed=args.seed + 100)

    gemms = cb_gemms()
    gemvs = mb_gemvs()
    print(f"Profiling {len(gemms)} compute-bound GEMMs "
          f"({args.gemm_runs} runs each) and {len(gemvs)} memory-bound GEMVs "
          f"({args.gemv_runs} runs each)...")
    gemm_cmp, gemm_results = compare_kernels(profiler, gemms, runs=args.gemm_runs)
    gemv_cmp, gemv_results = compare_kernels(profiler, gemvs, runs=args.gemv_runs)
    comparison = ComponentComparison(
        summaries=tuple(list(gemm_cmp.summaries) + list(gemv_cmp.summaries))
    )

    print("\nPer-component SSP power (Figure 7):")
    print(comparative_report(comparison.to_rows()))

    print("\nTotal power, relative view:")
    print(render_bar_chart(comparison.series("total")))
    print("\nIOD power, relative view (note MB-8K-GEMV):")
    print(render_bar_chart(comparison.series("iod")))

    errors = summarize_errors(gemm_results + gemv_results, backend.power_sample_period_s)
    print("\nSSE-vs-SSP measurement error (guidance #1):")
    print(comparative_report(errors.to_rows()))

    proportionality = assess_proportionality(
        [*gemms, *gemvs], comparison.summaries, backend.device.spec
    )
    print("\nPower proportionality (takeaway #4):")
    print(comparative_report(proportionality.to_rows()))


if __name__ == "__main__":
    main()
