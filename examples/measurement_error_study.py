"""How large can the power/energy measurement error get without FinGraV?

Reproduces the paper's headline measurement-guidance numbers: profiling a
kernel without power-profile differentiation (reporting the SSE profile as
"the" power) errs by up to ~80 % for kernels much shorter than the logger's
averaging window, and the error shrinks as the kernel execution time grows
past that window.  Also shows the coarse-sampler baseline (challenge C1) and
the instantaneous-sampler ablation in which the SSE/SSP split collapses.

Usage::

    python examples/measurement_error_study.py [--runs N]
"""

from __future__ import annotations

import argparse

from repro.analysis.errors import summarize_errors
from repro.core.report import comparative_report
from repro.experiments.ablations import run_coarse_coverage, run_sampler_ablation
from repro.experiments.common import FAST_SCALE, make_backend, make_profiler
from repro.kernels.workloads import cb_gemms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=60)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    backend = make_backend(seed=args.seed)
    profiler = make_profiler(backend, seed=args.seed + 100)

    print("Profiling the three compute-bound GEMMs with and without "
          "power-profile differentiation...")
    results = [profiler.profile(kernel, runs=args.runs) for kernel in cb_gemms()]
    errors = summarize_errors(results, backend.power_sample_period_s)

    print("\nSSE-vs-SSP measurement error vs window fill "
          "(paper takeaway #1 / guidance #1):")
    print(comparative_report(errors.to_rows()))
    print(f"\nMaximum error without differentiation: {errors.max_error() * 100:.0f}%")

    print("\nAblation: what if the logger did not average over a 1 ms window?")
    ablation = run_sampler_ablation(scale=FAST_SCALE, runs=args.runs, seed=args.seed + 1)
    print(comparative_report([ablation.to_row()]))

    print("\nBaseline: how much does an amd-smi-like coarse sampler even see? (challenge C1)")
    coverage = run_coarse_coverage(seed=args.seed + 2)
    print(comparative_report([coverage.to_row()]))


if __name__ == "__main__":
    main()
