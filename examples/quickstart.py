"""Quickstart: profile one GEMM kernel with the FinGraV methodology.

Runs the full nine-step methodology (paper Section IV-B) against the simulated
MI300X backend for a compute-bound 4K GEMM, prints the profiling report, the
SSE-vs-SSP measurement error, and an ASCII rendering of the whole-run power
profile (the kind of view Figures 5/6/8 of the paper show).

Usage::

    python examples/quickstart.py [--runs N] [--size 2048|4096|8192]
"""

from __future__ import annotations

import argparse

from repro import FinGraVProfiler, ProfilerConfig, SimulatedDeviceBackend, cb_gemm
from repro.core.report import guidance_report, result_report
from repro.core.guidance import paper_guidance_table
from repro.viz.ascii import render_profile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=80,
                        help="number of instrumented runs (default: 80)")
    parser.add_argument("--size", type=int, default=4096, choices=(2048, 4096, 8192),
                        help="square GEMM size to profile")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("FinGraV profiling guidance (paper Table I):")
    print(guidance_report(paper_guidance_table()))
    print()

    backend = SimulatedDeviceBackend(seed=args.seed)
    profiler = FinGraVProfiler(backend, ProfilerConfig(seed=args.seed + 100))
    kernel = cb_gemm(args.size)

    print(f"Profiling {kernel.name} "
          f"(op:byte ratio {kernel.arithmetic_intensity():.0f}, "
          f"{'compute' if kernel.is_compute_bound() else 'memory'}-bound) ...")
    result = profiler.profile(kernel, runs=args.runs)

    print()
    print(result_report(result))
    print()
    print("Component breakdown of the SSP profile (mean watts):")
    for component, power in result.ssp_profile.component_summary().items():
        print(f"  {component:>5s}: {power:7.1f} W")
    print()
    print(render_profile(result.run_profile, component="total", time_unit="ms"))


if __name__ == "__main__":
    main()
