"""Kernel libraries: rocBLAS-like BLAS and RCCL-like collectives.

The paper executes GEMMs through rocBLAS and collectives through RCCL.  These
thin library facades mirror that structure: they own the tuning knobs (dtype,
platform) and hand out ready-to-profile kernels, so the examples and the
experiment drivers read like the corresponding host code would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..gpu.spec import PlatformSpec, mi300x_platform_spec
from .collectives import CollectiveKernel, all_gather, all_reduce
from .gemm import GemmKernel, GemvKernel, square_gemm


@dataclass(frozen=True)
class RocBLASLikeLibrary:
    """Hands out GEMM/GEMV kernels with a fixed datatype (rocBLAS-like)."""

    dtype_bytes: int = 2
    version: str = "4.2.0-sim"

    def gemm(self, m: int, n: int, k: int, name: str | None = None) -> GemmKernel:
        """General matrix-matrix multiplication: M x K times K x N."""
        return GemmKernel(m=m, n=n, k=k, dtype_bytes=self.dtype_bytes, name=name)

    def square_gemm(self, size: int, name: str | None = None) -> GemmKernel:
        """Square (M=N=K) GEMM, the compute-bound shapes of the paper."""
        return square_gemm(size, dtype_bytes=self.dtype_bytes, name=name)

    def gemv(self, size: int, name: str | None = None) -> GemvKernel:
        """Matrix-vector multiplication (M=K=size, N=1), the memory-bound shapes."""
        return GemvKernel(size, dtype_bytes=self.dtype_bytes, name=name)


@dataclass(frozen=True)
class RCCLLikeLibrary:
    """Hands out collective kernels bound to one platform (RCCL-like)."""

    platform: PlatformSpec = field(default_factory=mi300x_platform_spec)
    version: str = "2.20.5-sim"

    def all_gather(self, message_bytes: float, name: str | None = None) -> CollectiveKernel:
        return all_gather(message_bytes, platform=self.platform, name=name)

    def all_reduce(self, message_bytes: float, name: str | None = None) -> CollectiveKernel:
        return all_reduce(message_bytes, platform=self.platform, name=name)


__all__ = ["RocBLASLikeLibrary", "RCCLLikeLibrary"]
