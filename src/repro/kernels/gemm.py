"""GEMM and GEMV kernels (the rocBLAS-like operator substrate).

The paper profiles square compute-bound GEMMs (M=N=K in {8192, 4096, 2048})
and the corresponding memory-bound GEMVs (M=K, N=1) executed through rocBLAS.
Here the kernels are modelled from first principles:

* execution time from a roofline estimate with an empirical, size-dependent
  efficiency curve (large GEMMs get closer to peak; small GEMMs and GEMVs are
  dominated by launch/drain overhead and do not saturate bandwidth);
* per-component utilisation from the memory-traffic model: a GEMM whose
  working set exceeds the Infinity Cache keeps paying HBM traffic every
  execution, while cache-resident kernels only stress the IOD/LLC once warm;
* occupancy mode: GEMMs keep the matrix pipelines busy (large XCD power
  floor); GEMVs keep wavefronts resident but stalled on memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..gpu.activity import (
    KernelActivityDescriptor,
    PhaseSpec,
    VariationSpec,
    XCDOccupancyMode,
)
from ..gpu.spec import GPUSpec, mi300x_spec
from .base import AIKernel
from .memory_traffic import MemoryTrafficModel
from .roofline import MachineBalance


#: Empirical (size, efficiency) anchors of the rocBLAS-like GEMM efficiency
#: curve: ~0.42 of peak for a 2K square GEMM, ~0.64 for 4K, ~0.75 for 8K.
_EFFICIENCY_ANCHORS: tuple[tuple[float, float], ...] = (
    (10.236, 0.42),   # log10(2 * 2048**3)
    (11.139, 0.64),   # log10(2 * 4096**3)
    (12.042, 0.75),   # log10(2 * 8192**3)
)


def matrix_efficiency(flops: float) -> float:
    """Achieved fraction of peak matrix throughput for a GEMM of ``flops`` work.

    Empirical rocBLAS-like curve: piecewise-linear in the logarithm of the
    problem size through the anchors above (larger GEMMs amortise prologue
    and tile-quantisation losses better), clamped to a plausible range.
    """
    if flops <= 0:
        raise ValueError("flops must be positive")
    x = math.log10(flops)
    anchors = _EFFICIENCY_ANCHORS
    if x <= anchors[0][0]:
        slope = (anchors[1][1] - anchors[0][1]) / (anchors[1][0] - anchors[0][0])
        efficiency = anchors[0][1] + slope * (x - anchors[0][0])
    elif x >= anchors[-1][0]:
        efficiency = anchors[-1][1] + 0.02 * (x - anchors[-1][0])
    else:
        efficiency = anchors[0][1]
        for (x0, y0), (x1, y1) in zip(anchors, anchors[1:]):
            if x0 <= x <= x1:
                efficiency = y0 + (y1 - y0) * (x - x0) / (x1 - x0)
                break
    return min(max(efficiency, 0.22), 0.78)


def streaming_bandwidth_efficiency(bytes_moved: float) -> float:
    """Achieved fraction of peak cache bandwidth for a streaming kernel.

    Small transfers cannot hide launch/drain latency or fill all channels, so
    the achieved bandwidth fraction grows with the transfer size.
    """
    if bytes_moved < 0:
        raise ValueError("bytes cannot be negative")
    half_size = 24e6
    return 0.68 * bytes_moved / (bytes_moved + half_size) if bytes_moved > 0 else 0.05


#: Fixed wavefront launch/drain overhead of a kernel spanning all 304 CUs.
KERNEL_OVERHEAD_S = 5e-6

GEMM_PHASES: tuple[PhaseSpec, ...] = (
    PhaseSpec(duration_fraction=0.08, xcd_scale=0.78, iod_scale=1.30, hbm_scale=1.40),
    PhaseSpec(duration_fraction=0.84, xcd_scale=1.04, iod_scale=0.96, hbm_scale=0.93),
    PhaseSpec(duration_fraction=0.08, xcd_scale=0.80, iod_scale=1.02, hbm_scale=1.15),
)

GEMV_PHASES: tuple[PhaseSpec, ...] = (
    PhaseSpec(duration_fraction=0.15, xcd_scale=0.90, iod_scale=1.12, hbm_scale=1.20),
    PhaseSpec(duration_fraction=0.85, xcd_scale=1.018, iod_scale=0.979, hbm_scale=0.965),
)

GEMV_VARIATION = VariationSpec(
    run_cv=0.028, execution_cv=0.008, outlier_probability=0.05, outlier_scale=1.30
)


def gemm_variation(duration_s: float) -> VariationSpec:
    """Run-to-run variation of a GEMM as a function of its execution time.

    Allocation-induced variation has a roughly constant absolute magnitude
    (fractions of a microsecond of extra memory-system latency), so its
    *relative* effect shrinks as kernels grow -- short GEMMs vary by ~2 %
    while millisecond-scale GEMMs vary well below 1 %.
    """
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    run_cv = min(0.006 + 0.45e-6 / duration_s, 0.022)
    execution_cv = min(0.003 + 0.08e-6 / duration_s, 0.008)
    return VariationSpec(
        run_cv=run_cv, execution_cv=execution_cv,
        outlier_probability=0.04, outlier_scale=1.22,
    )


@dataclass(frozen=True)
class GemmShape:
    """Problem shape of a (possibly degenerate) GEMM: M x K times K x N."""

    m: int
    n: int
    k: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.k) <= 0:
            raise ValueError("GEMM dimensions must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype size must be positive")

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k

    @property
    def input_bytes(self) -> float:
        return (self.m * self.k + self.k * self.n) * self.dtype_bytes

    @property
    def output_bytes(self) -> float:
        return self.m * self.n * self.dtype_bytes

    @property
    def operand_bytes(self) -> float:
        return self.input_bytes + self.output_bytes

    @property
    def is_gemv(self) -> bool:
        return self.n == 1 or self.m == 1

    def describe(self) -> str:
        return f"{self.m}x{self.k} * {self.k}x{self.n}"


class GemmKernel(AIKernel):
    """A general matrix-matrix multiplication kernel (rocBLAS-like)."""

    def __init__(
        self,
        m: int,
        n: int,
        k: int,
        dtype_bytes: int = 2,
        name: str | None = None,
        efficiency: float | None = None,
    ) -> None:
        self._shape = GemmShape(m=m, n=n, k=k, dtype_bytes=dtype_bytes)
        self._name = name or f"gemm_m{m}_n{n}_k{k}"
        self._efficiency_override = efficiency

    @property
    def name(self) -> str:
        return self._name

    @property
    def shape(self) -> GemmShape:
        return self._shape

    def flops(self) -> float:
        return self._shape.flops

    def bytes_moved(self) -> float:
        return self._shape.operand_bytes

    def efficiency(self) -> float:
        if self._efficiency_override is not None:
            return self._efficiency_override
        return matrix_efficiency(self._shape.flops)

    # ------------------------------------------------------------------ #
    def activity_descriptor(self, spec: GPUSpec | None = None) -> KernelActivityDescriptor:
        spec = spec or mi300x_spec()
        if self._shape.is_gemv:
            return self._gemv_descriptor(spec)
        return self._gemm_descriptor(spec)

    def _gemm_descriptor(self, spec: GPUSpec) -> KernelActivityDescriptor:
        balance = MachineBalance.from_spec(spec)
        traffic_model = MemoryTrafficModel(spec)
        shape = self._shape
        efficiency = self.efficiency()
        duration = balance.compute_time_s(shape.flops, efficiency, matrix=True) + KERNEL_OVERHEAD_S
        traffic = traffic_model.estimate(
            operand_bytes=shape.operand_bytes, output_bytes=shape.output_bytes
        )
        llc_util = min(traffic.llc_bytes / duration / spec.peak_llc_bandwidth, 1.0)
        hbm_util = min(traffic.hbm_bytes_warm / duration / spec.peak_hbm_bandwidth, 1.0)
        cold_multiplier = 1.22
        hbm_util_cold = min(
            traffic.hbm_bytes_cold / (duration * cold_multiplier) / spec.peak_hbm_bandwidth, 1.0
        )
        # A GEMM whose working set spills out of the Infinity Cache is partially
        # limited by the memory system, so its execution time varies only weakly
        # with the core clock even though its power (~ f * V^2) varies strongly.
        cache_resident = traffic_model.fits_in_llc(shape.operand_bytes)
        frequency_sensitivity = 0.85 if cache_resident else 0.4
        return KernelActivityDescriptor(
            name=self._name,
            base_duration_s=duration,
            xcd_mode=XCDOccupancyMode.MATRIX,
            compute_utilization=efficiency,
            llc_utilization=llc_util,
            hbm_utilization=hbm_util,
            hbm_utilization_cold=max(hbm_util_cold, hbm_util),
            fabric_utilization=0.0,
            frequency_sensitivity=frequency_sensitivity,
            cold_duration_multiplier=cold_multiplier,
            cold_executions=3,
            phases=GEMM_PHASES,
            variation=gemm_variation(duration),
            metadata={
                "operator": "gemm",
                "shape": self._shape.describe(),
                "boundedness": self.boundedness(spec).value,
                "arithmetic_intensity": self.arithmetic_intensity(),
            },
        )

    def _gemv_descriptor(self, spec: GPUSpec) -> KernelActivityDescriptor:
        balance = MachineBalance.from_spec(spec)
        traffic_model = MemoryTrafficModel(spec)
        shape = self._shape
        operand = shape.operand_bytes
        bandwidth_efficiency = streaming_bandwidth_efficiency(operand)
        if traffic_model.fits_in_llc(operand):
            stream_time = balance.llc_time_s(operand, bandwidth_efficiency)
        else:
            stream_time = balance.hbm_time_s(operand, bandwidth_efficiency)
        duration = KERNEL_OVERHEAD_S + stream_time
        traffic = traffic_model.estimate(
            operand_bytes=operand, output_bytes=shape.output_bytes, llc_passes=1.0
        )
        llc_util = min(traffic.llc_bytes / duration / spec.peak_llc_bandwidth, 1.0)
        hbm_util = min(traffic.hbm_bytes_warm / duration / spec.peak_hbm_bandwidth, 1.0)
        cold_multiplier = 1.6
        hbm_util_cold = min(
            traffic.hbm_bytes_cold / (duration * cold_multiplier) / spec.peak_hbm_bandwidth, 1.0
        )
        compute_util = min(
            shape.flops / duration / spec.peak_vector_flops, 1.0
        )
        return KernelActivityDescriptor(
            name=self._name,
            base_duration_s=duration,
            xcd_mode=XCDOccupancyMode.STALLED,
            compute_utilization=compute_util,
            llc_utilization=llc_util,
            hbm_utilization=hbm_util,
            hbm_utilization_cold=max(hbm_util_cold, hbm_util),
            fabric_utilization=0.0,
            frequency_sensitivity=0.1,
            cold_duration_multiplier=cold_multiplier,
            cold_executions=3,
            phases=GEMV_PHASES,
            variation=GEMV_VARIATION,
            metadata={
                "operator": "gemv",
                "shape": self._shape.describe(),
                "boundedness": self.boundedness(spec).value,
                "arithmetic_intensity": self.arithmetic_intensity(),
            },
        )


class GemvKernel(GemmKernel):
    """A matrix-vector multiplication (GEMV): M x K times K x 1."""

    def __init__(self, size: int, dtype_bytes: int = 2, name: str | None = None) -> None:
        super().__init__(
            m=size, n=1, k=size, dtype_bytes=dtype_bytes,
            name=name or f"gemv_{size}",
        )

    @property
    def size(self) -> int:
        return self.shape.m


def square_gemm(size: int, dtype_bytes: int = 2, name: str | None = None) -> GemmKernel:
    """A square (M=N=K) GEMM, the compute-bound shapes of the paper."""
    return GemmKernel(m=size, n=size, k=size, dtype_bytes=dtype_bytes, name=name)


__all__ = [
    "GemmShape",
    "GemmKernel",
    "GemvKernel",
    "square_gemm",
    "matrix_efficiency",
    "streaming_bandwidth_efficiency",
    "KERNEL_OVERHEAD_S",
]
