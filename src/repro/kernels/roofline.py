"""Roofline arithmetic and kernel boundedness classification.

The paper classifies a kernel as *compute-bound* when its algorithmic
op-to-byte ratio exceeds the machine's op-to-byte ratio (peak compute divided
by peak memory throughput), and as *memory-bound* otherwise (Section V-A).
This module provides that classification plus the simple roofline time
estimates the operator substrate builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..gpu.spec import GPUSpec


class Boundedness(str, enum.Enum):
    """Which resource limits a kernel."""

    COMPUTE = "compute"
    MEMORY = "memory"


@dataclass(frozen=True)
class MachineBalance:
    """Peak throughputs of a GPU relevant to the roofline model."""

    peak_matrix_flops: float
    peak_vector_flops: float
    peak_hbm_bandwidth: float
    peak_llc_bandwidth: float

    @classmethod
    def from_spec(cls, spec: GPUSpec) -> "MachineBalance":
        return cls(
            peak_matrix_flops=spec.peak_matrix_flops,
            peak_vector_flops=spec.peak_vector_flops,
            peak_hbm_bandwidth=spec.peak_hbm_bandwidth,
            peak_llc_bandwidth=spec.peak_llc_bandwidth,
        )

    @property
    def op_to_byte(self) -> float:
        """Machine balance point: FLOPs per HBM byte at peak."""
        return self.peak_matrix_flops / self.peak_hbm_bandwidth

    def classify(self, flops: float, bytes_moved: float) -> Boundedness:
        """Compute- vs memory-bound classification of a kernel's algorithm."""
        intensity = arithmetic_intensity(flops, bytes_moved)
        return Boundedness.COMPUTE if intensity > self.op_to_byte else Boundedness.MEMORY

    def compute_time_s(self, flops: float, efficiency: float, matrix: bool = True) -> float:
        """Time to retire ``flops`` at a fraction of peak compute throughput."""
        if flops < 0:
            raise ValueError("flops cannot be negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        peak = self.peak_matrix_flops if matrix else self.peak_vector_flops
        return flops / (efficiency * peak)

    def hbm_time_s(self, bytes_moved: float, efficiency: float) -> float:
        """Time to move ``bytes_moved`` through HBM at a fraction of peak bandwidth."""
        if bytes_moved < 0:
            raise ValueError("bytes cannot be negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        return bytes_moved / (efficiency * self.peak_hbm_bandwidth)

    def llc_time_s(self, bytes_moved: float, efficiency: float) -> float:
        """Time to move ``bytes_moved`` through the Infinity Cache."""
        if bytes_moved < 0:
            raise ValueError("bytes cannot be negative")
        if not 0 < efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")
        return bytes_moved / (efficiency * self.peak_llc_bandwidth)

    def roofline_time_s(
        self,
        flops: float,
        bytes_moved: float,
        compute_efficiency: float = 1.0,
        memory_efficiency: float = 1.0,
        matrix: bool = True,
    ) -> float:
        """Classic roofline execution-time estimate: max of compute and memory time."""
        return max(
            self.compute_time_s(flops, compute_efficiency, matrix=matrix),
            self.hbm_time_s(bytes_moved, memory_efficiency),
        )


def arithmetic_intensity(flops: float, bytes_moved: float) -> float:
    """Algorithmic op-to-byte ratio of a kernel."""
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops and bytes must be non-negative")
    if bytes_moved == 0:
        return float("inf") if flops > 0 else 0.0
    return flops / bytes_moved


__all__ = ["Boundedness", "MachineBalance", "arithmetic_intensity"]
