"""Collective-communication kernels (the RCCL-like operator substrate).

The paper profiles all-gather (AG) and all-reduce (AR) collectives on the
8x MI300X Infinity Platform, in latency-bound (64 KB / 128 KB, relevant for
inference) and bandwidth-bound (512 MB / 1 GB, relevant for training)
regimes.  On the fully-connected topology each GPU exchanges its shard with
every peer over a dedicated link, so:

* ``all-gather``  moves one shard to each peer in a single phase;
* ``all-reduce``  is modelled as reduce-scatter followed by all-gather
  (two phases of shard exchange plus the on-GPU reduction math).

The power signature on the profiled GPU is communication-shaped: the compute
units mostly shuffle data (DMA-like occupancy), the IODs carry the Infinity
Fabric traffic, and HBM sources/sinks the payload -- which is what places
bandwidth-bound collectives between latency-bound collectives and
compute-bound GEMMs in total power (paper Figure 10).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..gpu.activity import (
    KernelActivityDescriptor,
    PhaseSpec,
    VariationSpec,
    XCDOccupancyMode,
)
from ..gpu.platform import InfinityPlatform
from ..gpu.spec import GPUSpec, PlatformSpec, mi300x_platform_spec
from .base import AIKernel


class CollectiveOp(str, enum.Enum):
    """Collective operations studied in the paper."""

    ALL_GATHER = "all_gather"
    ALL_REDUCE = "all_reduce"


class TransferRegime(str, enum.Enum):
    """Latency- vs bandwidth-bound classification of a collective size."""

    LATENCY_BOUND = "latency_bound"
    BANDWIDTH_BOUND = "bandwidth_bound"


COLLECTIVE_PHASES: tuple[PhaseSpec, ...] = (
    PhaseSpec(duration_fraction=0.12, xcd_scale=1.10, iod_scale=0.80, hbm_scale=0.85),
    PhaseSpec(duration_fraction=0.76, xcd_scale=0.97, iod_scale=1.05, hbm_scale=1.04),
    PhaseSpec(duration_fraction=0.12, xcd_scale=1.05, iod_scale=0.88, hbm_scale=0.90),
)

COLLECTIVE_VARIATION = VariationSpec(
    run_cv=0.025, execution_cv=0.01, outlier_probability=0.05, outlier_scale=1.35
)


@dataclass(frozen=True)
class CollectiveTiming:
    """Timing breakdown of one collective execution on the profiled GPU."""

    duration_s: float
    wire_time_s: float
    fixed_overhead_s: float
    phases: int

    @property
    def regime(self) -> TransferRegime:
        """Latency-bound when the payload time does not dominate the fixed cost.

        This mirrors the paper's operational definition: a size is
        latency-bound if the collective latency at/before that size does not
        increase commensurately with the data-transfer size.
        """
        if self.wire_time_s < self.fixed_overhead_s:
            return TransferRegime.LATENCY_BOUND
        return TransferRegime.BANDWIDTH_BOUND


class CollectiveKernel(AIKernel):
    """An all-gather or all-reduce over the Infinity Platform."""

    #: Bytes each element occupies (the paper's collectives move BF16/FP16 data).
    DTYPE_BYTES = 2

    def __init__(
        self,
        op: CollectiveOp,
        message_bytes: float,
        platform: PlatformSpec | None = None,
        name: str | None = None,
    ) -> None:
        if message_bytes <= 0:
            raise ValueError("collective message size must be positive")
        self._op = op
        self._message_bytes = float(message_bytes)
        self._platform_spec = platform or mi300x_platform_spec()
        self._name = name or f"{op.value}_{format_size(message_bytes)}"

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self._name

    @property
    def op(self) -> CollectiveOp:
        return self._op

    @property
    def message_bytes(self) -> float:
        return self._message_bytes

    @property
    def platform_spec(self) -> PlatformSpec:
        return self._platform_spec

    @property
    def shard_bytes(self) -> float:
        """Per-GPU shard of the payload."""
        return self._message_bytes / self._platform_spec.num_gpus

    @property
    def phases(self) -> int:
        """Number of shard-exchange phases (1 for AG, 2 for AR)."""
        return 1 if self._op is CollectiveOp.ALL_GATHER else 2

    # ------------------------------------------------------------------ #
    # Algorithmic quantities.
    # ------------------------------------------------------------------ #
    def flops(self) -> float:
        """Reduction math on the profiled GPU (zero for all-gather)."""
        if self._op is CollectiveOp.ALL_GATHER:
            return 0.0
        # Reduce-scatter sums num_gpus contributions of one shard of elements.
        elements = self.shard_bytes / self.DTYPE_BYTES
        return elements * (self._platform_spec.num_gpus - 1)

    def bytes_moved(self) -> float:
        """Local-memory traffic on the profiled GPU per execution."""
        # The GPU reads its own contribution and writes the gathered/reduced
        # result; all-reduce touches the data once more for the reduction.
        return self._message_bytes * (1.0 + 0.5 * (self.phases - 1))

    def fabric_bytes(self) -> float:
        """Bytes sent over the fabric by the profiled GPU per execution."""
        peers = self._platform_spec.num_gpus - 1
        return self.shard_bytes * peers * self.phases

    # ------------------------------------------------------------------ #
    # Timing.
    # ------------------------------------------------------------------ #
    def timing(self) -> CollectiveTiming:
        platform = InfinityPlatform(self._platform_spec)
        estimate = platform.parallel_peer_transfer(self.shard_bytes)
        fixed = (
            self._platform_spec.collective_launch_latency_s
            + self._platform_spec.link.latency_s
        ) * self.phases
        wire = (estimate.duration_s - fixed / self.phases) * self.phases
        wire = max(wire, 0.0)
        return CollectiveTiming(
            duration_s=fixed + wire,
            wire_time_s=wire,
            fixed_overhead_s=fixed,
            phases=self.phases,
        )

    def regime(self) -> TransferRegime:
        return self.timing().regime

    def is_latency_bound(self) -> bool:
        return self.regime() is TransferRegime.LATENCY_BOUND

    # ------------------------------------------------------------------ #
    # Device-facing description.
    # ------------------------------------------------------------------ #
    def activity_descriptor(self, spec: GPUSpec | None = None) -> KernelActivityDescriptor:
        spec = spec or self._platform_spec.gpu
        timing = self.timing()
        duration = timing.duration_s
        aggregate_fabric = (
            self._platform_spec.links_per_gpu * self._platform_spec.link.bandwidth_bytes_per_s
        )
        fabric_util = min(self.fabric_bytes() / duration / aggregate_fabric, 1.0)
        hbm_traffic = self.bytes_moved()
        hbm_util = min(hbm_traffic / duration / spec.peak_hbm_bandwidth, 1.0)
        llc_util = min(0.45 * hbm_util + 0.08 * fabric_util, 1.0)
        compute_util = min(self.flops() / duration / spec.peak_vector_flops, 1.0)
        return KernelActivityDescriptor(
            name=self._name,
            base_duration_s=duration,
            xcd_mode=XCDOccupancyMode.DMA,
            compute_utilization=compute_util,
            llc_utilization=llc_util,
            hbm_utilization=hbm_util,
            hbm_utilization_cold=min(hbm_util * 1.15, 1.0),
            fabric_utilization=fabric_util,
            frequency_sensitivity=0.05,
            cold_duration_multiplier=1.12,
            cold_executions=3,
            phases=COLLECTIVE_PHASES,
            variation=COLLECTIVE_VARIATION,
            metadata={
                "operator": self._op.value,
                "message_bytes": self._message_bytes,
                "regime": self.regime().value,
                "phases": self.phases,
            },
        )


def format_size(size_bytes: float) -> str:
    """Human-readable payload size (matches the paper's 64KB / 1GB labels)."""
    if size_bytes < 0:
        raise ValueError("size cannot be negative")
    units = [("GB", 1024 ** 3), ("MB", 1024 ** 2), ("KB", 1024)]
    for unit, scale in units:
        if size_bytes >= scale:
            value = size_bytes / scale
            return f"{value:g}{unit}"
    return f"{size_bytes:g}B"


def all_gather(message_bytes: float, platform: PlatformSpec | None = None,
               name: str | None = None) -> CollectiveKernel:
    return CollectiveKernel(CollectiveOp.ALL_GATHER, message_bytes, platform, name)


def all_reduce(message_bytes: float, platform: PlatformSpec | None = None,
               name: str | None = None) -> CollectiveKernel:
    return CollectiveKernel(CollectiveOp.ALL_REDUCE, message_bytes, platform, name)


__all__ = [
    "CollectiveOp",
    "TransferRegime",
    "CollectiveTiming",
    "CollectiveKernel",
    "all_gather",
    "all_reduce",
    "format_size",
]
