"""The paper's workload suite (Section V-A) with its naming conventions.

Six GEMM/GEMV kernels:

* compute-bound square GEMMs:  ``CB-8K-GEMM``, ``CB-4K-GEMM``, ``CB-2K-GEMM``
  (M = N = K in {8192, 4096, 2048}),
* memory-bound GEMVs:          ``MB-8K-GEMV``, ``MB-4K-GEMV``, ``MB-2K-GEMV``
  (M = K, N = 1 for the same sizes).

Eight communication kernels: all-gather (AG) and all-reduce (AR) at 64 KB and
128 KB (latency-bound, inference-like) and at 512 MB and 1 GB (bandwidth-
bound, training-like).

Plus the interleaving scenarios of Figure 9, expressed as (preceding kernels,
kernel of interest) pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import PlatformSpec, mi300x_platform_spec
from .base import AIKernel
from .collectives import CollectiveKernel
from .gemm import GemmKernel, GemvKernel
from .library import RCCLLikeLibrary, RocBLASLikeLibrary

#: The square sizes studied by the paper, largest first.
GEMM_SIZES: tuple[int, ...] = (8192, 4096, 2048)

#: Collective payload sizes: latency-bound then bandwidth-bound.
COLLECTIVE_SIZES_BYTES: tuple[int, ...] = (
    64 * 1024,
    128 * 1024,
    512 * 1024 ** 2,
    1024 ** 3,
)


def _size_tag(size: int) -> str:
    return f"{size // 1024}K"


def cb_gemm(size: int, dtype_bytes: int = 2) -> GemmKernel:
    """One compute-bound square GEMM with the paper's naming (e.g. CB-8K-GEMM)."""
    library = RocBLASLikeLibrary(dtype_bytes=dtype_bytes)
    return library.square_gemm(size, name=f"CB-{_size_tag(size)}-GEMM")


def mb_gemv(size: int, dtype_bytes: int = 2) -> GemvKernel:
    """One memory-bound GEMV with the paper's naming (e.g. MB-8K-GEMV)."""
    library = RocBLASLikeLibrary(dtype_bytes=dtype_bytes)
    return library.gemv(size, name=f"MB-{_size_tag(size)}-GEMV")


def cb_gemms(dtype_bytes: int = 2) -> list[GemmKernel]:
    """The three compute-bound GEMMs of the paper."""
    return [cb_gemm(size, dtype_bytes) for size in GEMM_SIZES]


def mb_gemvs(dtype_bytes: int = 2) -> list[GemvKernel]:
    """The three memory-bound GEMVs of the paper."""
    return [mb_gemv(size, dtype_bytes) for size in GEMM_SIZES]


def gemm_suite(dtype_bytes: int = 2) -> list[GemmKernel]:
    """All six GEMM/GEMV kernels (Figure 7's x-axis)."""
    return [*cb_gemms(dtype_bytes), *mb_gemvs(dtype_bytes)]


def collective_suite(platform: PlatformSpec | None = None) -> list[CollectiveKernel]:
    """All eight communication kernels (Figure 10's x-axis)."""
    platform = platform or mi300x_platform_spec()
    library = RCCLLikeLibrary(platform=platform)
    kernels: list[CollectiveKernel] = []
    for size in COLLECTIVE_SIZES_BYTES:
        kernels.append(library.all_gather(size, name=f"AG-{_format_payload(size)}"))
    for size in COLLECTIVE_SIZES_BYTES:
        kernels.append(library.all_reduce(size, name=f"AR-{_format_payload(size)}"))
    return kernels


def _format_payload(size_bytes: int) -> str:
    if size_bytes >= 1024 ** 3:
        return f"{size_bytes // 1024 ** 3}GB"
    if size_bytes >= 1024 ** 2:
        return f"{size_bytes // 1024 ** 2}MB"
    return f"{size_bytes // 1024}KB"


@dataclass(frozen=True)
class InterleavingScenario:
    """One interleaved-execution study of Figure 9.

    ``preceding`` lists (kernel, executions) pairs run immediately before a
    single execution of ``kernel_of_interest`` within the same run; ``label``
    matches the paper's series names (e.g. ``MB->2K``).
    """

    label: str
    kernel_of_interest: AIKernel
    preceding: tuple[tuple[AIKernel, int], ...]

    def describe(self) -> str:
        parts = [f"{kernel.name} x{count}" for kernel, count in self.preceding]
        return f"{self.label}: {' + '.join(parts)} -> {self.kernel_of_interest.name}"


def interleaving_scenarios(dtype_bytes: int = 2) -> list[InterleavingScenario]:
    """The five interleaving scenarios plotted in Figure 9."""
    gemm_8k = cb_gemm(8192, dtype_bytes)
    gemm_4k = cb_gemm(4096, dtype_bytes)
    gemm_2k = cb_gemm(2048, dtype_bytes)
    gemv_8k = mb_gemv(8192, dtype_bytes)
    gemv_4k = mb_gemv(4096, dtype_bytes)
    gemv_2k = mb_gemv(2048, dtype_bytes)
    return [
        # 60 compute-light GEMMs before the compute-heavy GEMM.
        InterleavingScenario(
            label="CB->8K",
            kernel_of_interest=gemm_8k,
            preceding=((gemm_2k, 60),),
        ),
        # 40 memory-bound GEMVs before the compute-light GEMM.
        InterleavingScenario(
            label="MB->2K",
            kernel_of_interest=gemm_2k,
            preceding=((gemv_4k, 40),),
        ),
        # Compute-heavy GEMMs before the compute-light GEMM.  Enough CB-4K
        # executions follow the CB-8K pair for the clock to recover from the
        # CB-8K-induced throttle, so the window preceding the CB-2K execution
        # reflects the compute-heavy kernels' steady power.
        InterleavingScenario(
            label="CB->2K",
            kernel_of_interest=gemm_2k,
            preceding=((gemm_8k, 2), (gemm_4k, 40)),
        ),
        # Other memory-bound GEMVs before MB-8K-GEMV.
        InterleavingScenario(
            label="MB->8K gemv",
            kernel_of_interest=gemv_8k,
            preceding=((gemv_4k, 20), (gemv_2k, 20)),
        ),
        # Compute-heavy GEMMs before MB-4K-GEMV.
        InterleavingScenario(
            label="CB->4K gemv",
            kernel_of_interest=gemv_4k,
            preceding=((gemm_8k, 2), (gemm_4k, 4)),
        ),
    ]


__all__ = [
    "GEMM_SIZES",
    "COLLECTIVE_SIZES_BYTES",
    "cb_gemm",
    "mb_gemv",
    "cb_gemms",
    "mb_gemvs",
    "gemm_suite",
    "collective_suite",
    "InterleavingScenario",
    "interleaving_scenarios",
]
