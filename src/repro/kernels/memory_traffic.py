"""Memory-hierarchy traffic model.

The paper's component-level observations hinge on *where* a kernel's data
movement is served from: repeated executions bias data movement toward the
on-chip caches (footnote 3), so memory-bound GEMVs stress the IOD (Infinity
Cache) rather than HBM, and only the largest GEMM -- whose working set
exceeds the 256 MB Infinity Cache -- keeps stressing HBM.  This module splits
a kernel's data movement between the L2s, the Infinity Cache (LLC) and HBM for
both cold (first-touch) and warm (steady repeated execution) conditions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import GPUSpec


@dataclass(frozen=True)
class TrafficEstimate:
    """Per-execution data movement at each level of the hierarchy (bytes)."""

    working_set_bytes: float
    l2_bytes: float
    llc_bytes: float
    hbm_bytes_warm: float
    hbm_bytes_cold: float

    def validate(self) -> None:
        for name in ("working_set_bytes", "l2_bytes", "llc_bytes",
                     "hbm_bytes_warm", "hbm_bytes_cold"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} cannot be negative")
        if self.hbm_bytes_cold + 1e-9 < self.hbm_bytes_warm:
            raise ValueError("cold executions cannot move less HBM data than warm ones")


class MemoryTrafficModel:
    """Splits kernel data movement across L2 / Infinity Cache / HBM."""

    #: Fraction of the kernel's output that is written through to HBM every
    #: execution even when the working set is cache resident.
    WRITE_THROUGH_FRACTION = 0.5
    #: Extra HBM traffic factor applied to the spilled portion of the working
    #: set (spilled data thrashes: it is read, written back and re-read as the
    #: blocked kernel cycles through tiles that no longer fit on chip).
    SPILL_TRAFFIC_FACTOR = 2.2
    #: How many times the operands stream through the Infinity Cache per
    #: execution for a blocked kernel (tile reloads).
    LLC_PASSES = 2.6

    def __init__(self, spec: GPUSpec) -> None:
        self._spec = spec

    @property
    def spec(self) -> GPUSpec:
        return self._spec

    def estimate(
        self,
        operand_bytes: float,
        output_bytes: float = 0.0,
        working_set_bytes: float | None = None,
        llc_passes: float | None = None,
    ) -> TrafficEstimate:
        """Estimate per-execution traffic for a kernel touching ``operand_bytes``.

        ``output_bytes`` is the portion of the operands that is written (its
        write-through keeps a trickle of HBM traffic even for cache-resident
        kernels).  ``working_set_bytes`` defaults to the operand footprint;
        ``llc_passes`` overrides the blocked-kernel tile-reload factor (a
        streaming kernel passes its data through the Infinity Cache once).
        """
        if operand_bytes < 0:
            raise ValueError("operand bytes cannot be negative")
        if output_bytes < 0 or output_bytes > operand_bytes:
            raise ValueError("output bytes must lie within [0, operand_bytes]")
        working_set = operand_bytes if working_set_bytes is None else working_set_bytes
        if working_set < 0:
            raise ValueError("working set cannot be negative")
        passes = self.LLC_PASSES if llc_passes is None else llc_passes
        if passes <= 0:
            raise ValueError("llc_passes must be positive")

        llc_capacity = self._spec.llc_capacity_bytes
        l2_capacity = self._spec.l2_capacity_bytes

        l2_resident = min(working_set, l2_capacity)
        llc_resident = min(max(working_set - l2_capacity, 0.0), llc_capacity)
        spilled = max(working_set - l2_capacity - llc_capacity, 0.0)

        write_through = self.WRITE_THROUGH_FRACTION * output_bytes
        # Cold executions stream the whole working set from HBM at least once.
        hbm_cold = working_set + write_through
        # Warm executions only go to HBM for the spilled portion plus write-through.
        hbm_warm = min(spilled * self.SPILL_TRAFFIC_FACTOR + write_through, hbm_cold)

        llc_bytes = (llc_resident + spilled) * passes + 0.3 * l2_resident
        l2_bytes = operand_bytes * passes

        estimate = TrafficEstimate(
            working_set_bytes=working_set,
            l2_bytes=l2_bytes,
            llc_bytes=llc_bytes,
            hbm_bytes_warm=hbm_warm,
            hbm_bytes_cold=hbm_cold,
        )
        estimate.validate()
        return estimate

    def fits_in_llc(self, working_set_bytes: float) -> bool:
        """Whether a working set is fully cache resident (L2 + Infinity Cache)."""
        return working_set_bytes <= self._spec.llc_capacity_bytes + self._spec.l2_capacity_bytes

    def fits_in_l2(self, working_set_bytes: float) -> bool:
        return working_set_bytes <= self._spec.l2_capacity_bytes


__all__ = ["TrafficEstimate", "MemoryTrafficModel"]
