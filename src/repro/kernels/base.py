"""Common abstraction over the AI operators profiled in the paper.

An :class:`AIKernel` knows its algorithmic work (FLOPs, minimum data movement)
and how to describe itself to the simulated GPU as a
:class:`~repro.gpu.activity.KernelActivityDescriptor`.  The FinGraV core never
sees these classes -- it receives descriptors through the opaque kernel handle
of the backend protocol -- but the analysis layer uses the algorithmic
quantities (op:byte ratio, achieved utilisation) for the power-proportionality
and boundedness discussions of paper Section V.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..gpu.activity import KernelActivityDescriptor
from ..gpu.spec import GPUSpec, mi300x_spec
from .roofline import Boundedness, MachineBalance, arithmetic_intensity


class AIKernel(abc.ABC):
    """An AI operator that can be executed on the simulated GPU."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Stable, human-readable kernel name (used for binning and reports)."""

    @abc.abstractmethod
    def flops(self) -> float:
        """Algorithmic floating-point operations per execution."""

    @abc.abstractmethod
    def bytes_moved(self) -> float:
        """Algorithmic minimum data movement per execution (bytes)."""

    @abc.abstractmethod
    def activity_descriptor(self, spec: GPUSpec | None = None) -> KernelActivityDescriptor:
        """Describe the kernel to the simulated device."""

    # ------------------------------------------------------------------ #
    # Derived quantities shared by all operators.
    # ------------------------------------------------------------------ #
    def arithmetic_intensity(self) -> float:
        """Algorithmic op-to-byte ratio."""
        return arithmetic_intensity(self.flops(), self.bytes_moved())

    def boundedness(self, spec: GPUSpec | None = None) -> Boundedness:
        """Compute- vs memory-bound classification against a machine balance."""
        balance = MachineBalance.from_spec(spec or mi300x_spec())
        return balance.classify(self.flops(), self.bytes_moved())

    def is_compute_bound(self, spec: GPUSpec | None = None) -> bool:
        return self.boundedness(spec) is Boundedness.COMPUTE

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"{type(self).__name__}({self.name!r})"


@dataclass(frozen=True)
class KernelSummary:
    """Algorithmic summary of a kernel, used by reports and insights."""

    name: str
    flops: float
    bytes_moved: float
    arithmetic_intensity: float
    boundedness: Boundedness
    base_duration_s: float
    compute_utilization: float

    @classmethod
    def from_kernel(cls, kernel: AIKernel, spec: GPUSpec | None = None) -> "KernelSummary":
        spec = spec or mi300x_spec()
        descriptor = kernel.activity_descriptor(spec)
        return cls(
            name=kernel.name,
            flops=kernel.flops(),
            bytes_moved=kernel.bytes_moved(),
            arithmetic_intensity=kernel.arithmetic_intensity(),
            boundedness=kernel.boundedness(spec),
            base_duration_s=descriptor.base_duration_s,
            compute_utilization=descriptor.compute_utilization,
        )


__all__ = ["AIKernel", "KernelSummary"]
