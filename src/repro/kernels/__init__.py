"""AI operator substrate: GEMM/GEMV kernels and communication collectives.

Mirrors the operator space of the paper (Section V-A): rocBLAS-like GEMMs and
GEMVs across compute-bound and memory-bound shapes, and RCCL-like all-gather /
all-reduce collectives across latency-bound and bandwidth-bound payloads.
"""

from .base import AIKernel, KernelSummary
from .collectives import (
    CollectiveKernel,
    CollectiveOp,
    CollectiveTiming,
    TransferRegime,
    all_gather,
    all_reduce,
)
from .gemm import (
    GemmKernel,
    GemmShape,
    GemvKernel,
    matrix_efficiency,
    square_gemm,
    streaming_bandwidth_efficiency,
)
from .library import RCCLLikeLibrary, RocBLASLikeLibrary
from .memory_traffic import MemoryTrafficModel, TrafficEstimate
from .roofline import Boundedness, MachineBalance, arithmetic_intensity
from .workloads import (
    COLLECTIVE_SIZES_BYTES,
    GEMM_SIZES,
    InterleavingScenario,
    cb_gemm,
    cb_gemms,
    collective_suite,
    gemm_suite,
    interleaving_scenarios,
    mb_gemv,
    mb_gemvs,
)

__all__ = [
    "AIKernel",
    "KernelSummary",
    "CollectiveKernel",
    "CollectiveOp",
    "CollectiveTiming",
    "TransferRegime",
    "all_gather",
    "all_reduce",
    "GemmKernel",
    "GemmShape",
    "GemvKernel",
    "matrix_efficiency",
    "square_gemm",
    "streaming_bandwidth_efficiency",
    "RCCLLikeLibrary",
    "RocBLASLikeLibrary",
    "MemoryTrafficModel",
    "TrafficEstimate",
    "Boundedness",
    "MachineBalance",
    "arithmetic_intensity",
    "COLLECTIVE_SIZES_BYTES",
    "GEMM_SIZES",
    "InterleavingScenario",
    "cb_gemm",
    "cb_gemms",
    "collective_suite",
    "gemm_suite",
    "interleaving_scenarios",
    "mb_gemv",
    "mb_gemvs",
]
