"""GPU power proportionality analysis (paper takeaway #4, recommendation #3).

The paper observes that CB-2K-GEMM achieves about half the compute utilisation
of CB-4K/8K-GEMM yet draws similar XCD power -- the GPU is far from
power proportional for compute-light kernels.  This module quantifies that:
for each kernel it relates the rate of useful work (achieved fraction of peak
compute, or of peak bandwidth for memory-bound kernels) to the power drawn by
the corresponding component, and derives a proportionality index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..gpu.spec import GPUSpec, mi300x_spec
from ..kernels.base import AIKernel
from .comparative import KernelComponentSummary


@dataclass(frozen=True)
class ProportionalityRecord:
    """Work rate vs component power for one kernel."""

    kernel_name: str
    compute_utilization: float
    xcd_power_w: float
    iod_power_w: float
    llc_utilization: float
    total_power_w: float

    @property
    def xcd_power_per_utilization(self) -> float:
        """XCD watts per unit of achieved compute utilisation (lower = more proportional)."""
        if self.compute_utilization <= 0:
            return float("inf")
        return self.xcd_power_w / self.compute_utilization


@dataclass(frozen=True)
class ProportionalityAssessment:
    """Proportionality comparison across a set of kernels."""

    records: tuple[ProportionalityRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("need at least one record")

    def record_for(self, kernel_name: str) -> ProportionalityRecord:
        for record in self.records:
            if record.kernel_name == kernel_name:
                return record
        raise KeyError(f"no proportionality record for {kernel_name!r}")

    def xcd_proportionality_gap(self, light_kernel: str, heavy_kernel: str) -> float:
        """How disproportionate the light kernel's XCD power is vs the heavy one.

        Returns the ratio of (XCD power ratio) to (compute-utilisation ratio);
        1.0 means perfectly proportional, larger means the compute-light kernel
        burns more XCD power than its work rate justifies.
        """
        light = self.record_for(light_kernel)
        heavy = self.record_for(heavy_kernel)
        if light.compute_utilization <= 0 or heavy.compute_utilization <= 0:
            raise ValueError("both kernels need a positive compute utilisation")
        power_ratio = light.xcd_power_w / heavy.xcd_power_w
        work_ratio = light.compute_utilization / heavy.compute_utilization
        return power_ratio / work_ratio

    def iod_tracks_llc_bandwidth(self) -> float:
        """Correlation between IOD power and LLC utilisation across kernels.

        The paper notes that, unlike XCD power, IOD power tracks LLC bandwidth
        well.  Returns the Pearson correlation (1.0 = perfect tracking); with
        fewer than three kernels the correlation is not meaningful and 0.0 is
        returned.
        """
        if len(self.records) < 3:
            return 0.0
        import numpy as np

        iod = np.asarray([record.iod_power_w for record in self.records])
        llc = np.asarray([record.llc_utilization for record in self.records])
        if np.std(iod) == 0 or np.std(llc) == 0:
            return 0.0
        return float(np.corrcoef(iod, llc)[0, 1])

    def to_rows(self) -> list[dict[str, object]]:
        rows = []
        for record in self.records:
            rows.append(
                {
                    "kernel": record.kernel_name,
                    "compute_utilization": round(record.compute_utilization, 3),
                    "xcd_w": round(record.xcd_power_w, 1),
                    "xcd_w_per_util": round(record.xcd_power_per_utilization, 1)
                    if record.compute_utilization > 0
                    else float("inf"),
                    "llc_utilization": round(record.llc_utilization, 3),
                    "iod_w": round(record.iod_power_w, 1),
                    "total_w": round(record.total_power_w, 1),
                }
            )
        return rows


def assess_proportionality(
    kernels: Sequence[AIKernel],
    summaries: Sequence[KernelComponentSummary],
    spec: GPUSpec | None = None,
) -> ProportionalityAssessment:
    """Join kernel work rates with measured component powers.

    ``kernels`` and ``summaries`` are matched by kernel name; kernels without
    a matching summary are skipped.
    """
    spec = spec or mi300x_spec()
    by_name = {summary.kernel_name: summary for summary in summaries}
    records: list[ProportionalityRecord] = []
    for kernel in kernels:
        summary = by_name.get(kernel.name)
        if summary is None:
            continue
        descriptor = kernel.activity_descriptor(spec)
        records.append(
            ProportionalityRecord(
                kernel_name=kernel.name,
                compute_utilization=descriptor.compute_utilization,
                xcd_power_w=summary.component("xcd"),
                iod_power_w=summary.component("iod"),
                llc_utilization=descriptor.llc_utilization,
                total_power_w=summary.component("total"),
            )
        )
    if not records:
        raise ValueError("no kernels matched the provided summaries")
    return ProportionalityAssessment(records=tuple(records))


__all__ = [
    "ProportionalityRecord",
    "ProportionalityAssessment",
    "assess_proportionality",
]
