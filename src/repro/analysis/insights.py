"""Programmatic derivation of the paper's Table II takeaways.

Table II condenses the evaluation into five takeaways, each paired with a
measurement guidance or a hardware/software recommendation.  This module
re-derives each takeaway from the reproduced data (component comparisons,
SSE-vs-SSP errors, interleaving measurements and the proportionality
assessment) and reports whether it holds, together with the numeric evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .comparative import ComponentComparison
from .errors import ErrorSummary
from .interleaving import InterleavedMeasurement
from .proportionality import ProportionalityAssessment


@dataclass(frozen=True)
class Takeaway:
    """One row of Table II, evaluated against the reproduced data."""

    number: int
    statement: str
    guidance: str
    holds: bool
    evidence: str

    def to_row(self) -> dict[str, object]:
        return {
            "#": self.number,
            "takeaway": self.statement,
            "guidance/recommendation": self.guidance,
            "holds": self.holds,
            "evidence": self.evidence,
        }


def takeaway_1_profile_differentiation(errors: ErrorSummary) -> Takeaway:
    """Similar execution times can manifest very different power profiles."""
    max_error = errors.max_error()
    shrinks = errors.error_shrinks_with_execution_time()
    evidence = (
        f"max SSE-vs-SSP error {max_error * 100:.0f}%; "
        f"error {'shrinks' if shrinks else 'does not shrink'} as execution time grows "
        "past the averaging window"
    )
    return Takeaway(
        number=1,
        statement=(
            "Similar kernel execution times can manifest very different power "
            "profiles depending on the kernel time vs the power-averaging window"
        ),
        guidance=(
            "Measurement guidance 1: power profile differentiation (SSE vs SSP) "
            "is crucial; skipping it can cause errors as high as 80%"
        ),
        holds=bool(max_error > 0.3 and shrinks),
        evidence=evidence,
    )


def takeaway_2_power_scales_with_work(comparison: ComponentComparison,
                                      cb_names: Sequence[str],
                                      mb_names: Sequence[str]) -> Takeaway:
    """Total power scales with work; components stressed per algorithm."""
    cb_totals = [comparison.summary_for(name).component("total") for name in cb_names]
    mb_totals = [comparison.summary_for(name).component("total") for name in mb_names]
    mb_iods = [comparison.summary_for(name).component("iod") for name in mb_names]
    cb_iods = [comparison.summary_for(name).component("iod") for name in cb_names]
    cb_above_mb = min(cb_totals) > max(mb_totals)
    mb_stress_iod = max(mb_iods) > max(cb_iods)
    evidence = (
        f"CB totals {min(cb_totals):.0f}-{max(cb_totals):.0f} W vs "
        f"MB totals {min(mb_totals):.0f}-{max(mb_totals):.0f} W; "
        f"max MB IOD {max(mb_iods):.0f} W vs max CB IOD {max(cb_iods):.0f} W"
    )
    return Takeaway(
        number=2,
        statement=(
            "Total power scales with work done and different GPU components get "
            "stressed based on the algorithmic nature of the computation"
        ),
        guidance=(
            "Recommendation 1: exploit complementary power profiles by executing "
            "such computations concurrently when power headroom allows"
        ),
        holds=bool(cb_above_mb and mb_stress_iod),
        evidence=evidence,
    )


def takeaway_3_xcd_dominates_compute(comparison: ComponentComparison,
                                     cb_names: Sequence[str]) -> Takeaway:
    """Compute-heavy kernels are dominated by XCD component power."""
    dominated = all(
        comparison.dominant_component(name) == "xcd" for name in cb_names
    )
    shares = []
    for name in cb_names:
        summary = comparison.summary_for(name)
        shares.append(summary.component("xcd") / summary.component("total"))
    evidence = (
        "XCD share of total for CB GEMMs: "
        + ", ".join(f"{share * 100:.0f}%" for share in shares)
    )
    return Takeaway(
        number=3,
        statement="Compute-heavy kernels are dominated by XCD component power",
        guidance=(
            "Recommendation 2: prioritise techniques that optimise XCD power to "
            "reduce total power of compute-heavy kernels"
        ),
        holds=bool(dominated and min(shares) > 0.6),
        evidence=evidence,
    )


def takeaway_4_power_proportionality(proportionality: ProportionalityAssessment,
                                     light_kernel: str,
                                     heavy_kernel: str) -> Takeaway:
    """Compute-light and compute-heavy kernels show similar XCD power."""
    light = proportionality.record_for(light_kernel)
    heavy = proportionality.record_for(heavy_kernel)
    xcd_ratio = light.xcd_power_w / heavy.xcd_power_w
    util_ratio = light.compute_utilization / heavy.compute_utilization
    gap = proportionality.xcd_proportionality_gap(light_kernel, heavy_kernel)
    evidence = (
        f"{light_kernel} has {util_ratio * 100:.0f}% of {heavy_kernel}'s compute "
        f"utilisation but {xcd_ratio * 100:.0f}% of its XCD power "
        f"(proportionality gap {gap:.2f}x)"
    )
    return Takeaway(
        number=4,
        statement="Compute-light and compute-heavy kernels show similar XCD component power",
        guidance=(
            "Recommendation 3: GPU power proportionality needs attention, "
            "especially for the XCD component of compute-light kernels"
        ),
        holds=bool(xcd_ratio > 0.75 and util_ratio < 0.75),
        evidence=evidence,
    )


def takeaway_5_interleaving(measurements: Sequence[InterleavedMeasurement],
                            unaffected_kernel: str) -> Takeaway:
    """Short kernels inherit the power of their predecessors; long ones do not."""
    affected = [m for m in measurements if m.kernel_name != unaffected_kernel]
    unaffected = [m for m in measurements if m.kernel_name == unaffected_kernel]
    short_affected = all(m.affected for m in affected) if affected else False
    long_unaffected = all(not m.affected for m in unaffected) if unaffected else False
    parts = [f"{m.label}: {m.ratio:.2f}x SSP ({m.direction()})" for m in measurements]
    return Takeaway(
        number=5,
        statement=(
            "Power of short kernels (memory-bound GEMVs, compute-light GEMMs) is "
            "affected by the kernels preceding them; compute-heavy GEMMs are not"
        ),
        guidance=(
            "Measurement guidance 2: use isolated executions to assess a kernel's "
            "power when its execution time is shorter than the averaging window"
        ),
        holds=bool(short_affected and long_unaffected),
        evidence="; ".join(parts),
    )


def derive_takeaways(
    comparison: ComponentComparison,
    errors: ErrorSummary,
    proportionality: ProportionalityAssessment,
    interleaving: Sequence[InterleavedMeasurement],
    cb_names: Sequence[str],
    mb_names: Sequence[str],
    light_kernel: str,
    heavy_kernel: str,
    unaffected_kernel: str,
) -> list[Takeaway]:
    """Derive all five Table II takeaways from the reproduced data."""
    return [
        takeaway_1_profile_differentiation(errors),
        takeaway_2_power_scales_with_work(comparison, cb_names, mb_names),
        takeaway_3_xcd_dominates_compute(comparison, cb_names),
        takeaway_4_power_proportionality(proportionality, light_kernel, heavy_kernel),
        takeaway_5_interleaving(interleaving, unaffected_kernel),
    ]


__all__ = [
    "Takeaway",
    "takeaway_1_profile_differentiation",
    "takeaway_2_power_scales_with_work",
    "takeaway_3_xcd_dominates_compute",
    "takeaway_4_power_proportionality",
    "takeaway_5_interleaving",
    "derive_takeaways",
]
