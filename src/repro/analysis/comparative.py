"""Component-level comparative analysis across kernels (paper Figs 7 and 10).

The paper compares the SSP power profiles of different kernels component by
component (total / XCD / IOD / HBM), in relative terms, to reason about which
GPU sub-component each class of computation stresses.  This module profiles a
set of kernels with the FinGraV methodology and assembles those comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..core.profile import FineGrainProfile
from ..core.profiler import FinGraVProfiler, FinGraVResult
from ..core.records import COMPONENT_KEYS


@dataclass(frozen=True)
class KernelComponentSummary:
    """Mean SSP power of one kernel, per component."""

    kernel_name: str
    execution_time_s: float
    power_w: Mapping[str, float]
    sse_vs_ssp_error: float | None = None
    metadata: Mapping[str, object] = field(default_factory=dict)

    def component(self, name: str) -> float:
        try:
            return float(self.power_w[name])
        except KeyError as exc:
            raise KeyError(f"summary has no component {name!r}") from exc

    def relative_to(self, reference: "KernelComponentSummary") -> dict[str, float]:
        """Component powers normalised to another kernel's (for relative plots)."""
        return {
            name: self.component(name) / reference.component(name)
            for name in self.power_w
            if name in reference.power_w and reference.component(name) > 0
        }


@dataclass(frozen=True)
class ComponentComparison:
    """The assembled comparison of several kernels."""

    summaries: tuple[KernelComponentSummary, ...]
    components: tuple[str, ...] = COMPONENT_KEYS

    def __post_init__(self) -> None:
        if not self.summaries:
            raise ValueError("a comparison needs at least one kernel")

    def kernel_names(self) -> list[str]:
        return [summary.kernel_name for summary in self.summaries]

    def summary_for(self, kernel_name: str) -> KernelComponentSummary:
        for summary in self.summaries:
            if summary.kernel_name == kernel_name:
                return summary
        raise KeyError(f"no summary for kernel {kernel_name!r}")

    def series(self, component: str) -> dict[str, float]:
        """Mapping kernel name -> mean power of one component."""
        return {s.kernel_name: s.component(component) for s in self.summaries}

    def normalized_series(self, component: str, reference_kernel: str | None = None) -> dict[str, float]:
        """Component series normalised to a reference kernel (default: the max)."""
        series = self.series(component)
        if reference_kernel is None:
            reference = max(series.values())
        else:
            reference = series[reference_kernel]
        if reference <= 0:
            raise ValueError("reference power must be positive")
        return {name: value / reference for name, value in series.items()}

    def ranking(self, component: str) -> list[str]:
        """Kernel names sorted by descending power of one component."""
        series = self.series(component)
        return sorted(series, key=series.get, reverse=True)

    def dominant_component(self, kernel_name: str) -> str:
        """The breakdown component (not 'total') drawing the most power."""
        summary = self.summary_for(kernel_name)
        breakdown = {name: summary.component(name) for name in summary.power_w if name != "total"}
        if not breakdown:
            raise ValueError("summary has no component breakdown")
        return max(breakdown, key=breakdown.get)

    def to_rows(self) -> list[dict[str, object]]:
        rows = []
        for summary in self.summaries:
            row: dict[str, object] = {
                "kernel": summary.kernel_name,
                "execution_time_s": summary.execution_time_s,
            }
            for component in self.components:
                if component in summary.power_w:
                    row[f"{component}_w"] = round(summary.component(component), 1)
            if summary.sse_vs_ssp_error is not None:
                row["sse_vs_ssp_error"] = round(summary.sse_vs_ssp_error, 3)
            rows.append(row)
        return rows


def summary_from_result(result: FinGraVResult) -> KernelComponentSummary:
    """Summarise one FinGraV result into its component means."""
    profile = result.ssp_profile
    if profile.is_empty:
        raise ValueError(f"result for {result.kernel_name} has an empty SSP profile")
    error: float | None
    try:
        error = result.sse_vs_ssp_error()
    except ValueError:
        error = None
    return KernelComponentSummary(
        kernel_name=result.kernel_name,
        execution_time_s=result.execution_time_s,
        power_w=profile.component_summary(),
        sse_vs_ssp_error=error,
        metadata=dict(result.metadata),
    )


def summary_from_profile(profile: FineGrainProfile) -> KernelComponentSummary:
    """Summarise a stand-alone profile (used by the interleaving analysis)."""
    if profile.is_empty:
        raise ValueError(f"profile for {profile.kernel_name} is empty")
    return KernelComponentSummary(
        kernel_name=profile.kernel_name,
        execution_time_s=profile.execution_time_s,
        power_w=profile.component_summary(),
        metadata=dict(profile.metadata),
    )


def comparison_from_results(results: Sequence[FinGraVResult]) -> ComponentComparison:
    """Assemble a comparison from already-produced results (sweep-engine path)."""
    return ComponentComparison(
        summaries=tuple(summary_from_result(result) for result in results)
    )


def compare_kernels(
    profiler: FinGraVProfiler,
    kernels: Sequence[object],
    runs: int | None = None,
) -> tuple[ComponentComparison, list[FinGraVResult]]:
    """Profile each kernel with the FinGraV methodology and compare components.

    Kernels share the profiler (and its backend) sequentially; the experiment
    drivers instead fan independent per-kernel jobs out through
    :mod:`repro.experiments.sweep` and use :func:`comparison_from_results`.
    """
    if not kernels:
        raise ValueError("need at least one kernel to compare")
    results = [profiler.profile(kernel, runs=runs) for kernel in kernels]
    return comparison_from_results(results), results


__all__ = [
    "KernelComponentSummary",
    "ComponentComparison",
    "summary_from_result",
    "summary_from_profile",
    "comparison_from_results",
    "compare_kernels",
]
