"""Trend fitting and series helpers used by the figure reproductions.

The paper overlays linear-regression trend lines on its component comparison
figures and uses a degree-4 polynomial fit to show that ~50 runs already
recover the overall power trend (Figure 5).  These helpers provide the fits
and the goodness-of-fit measure used to compare a reduced-run profile against
the full-run reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.profile import FineGrainProfile


@dataclass(frozen=True)
class TrendFit:
    """A polynomial trend fitted to a profile."""

    degree: int
    coefficients: tuple[float, ...]
    times_s: tuple[float, ...]
    fitted_w: tuple[float, ...]

    def evaluate(self, times_s: np.ndarray) -> np.ndarray:
        return np.polyval(np.asarray(self.coefficients), np.asarray(times_s, dtype=float))

    @property
    def mean_w(self) -> float:
        return float(np.mean(self.fitted_w))


def fit_trend(
    profile: FineGrainProfile,
    component: str = "total",
    degree: int = 4,
    num_points: int = 100,
) -> TrendFit:
    """Polynomial trend of a profile (paper Figure 5 dashed line)."""
    if profile.is_empty:
        raise ValueError("cannot fit a trend to an empty profile")
    # Masked access: points lacking the component are dropped, not NaN-filled.
    times, powers = profile.component_points(component)
    effective_degree = min(degree, max(len(times) - 1, 0))
    grid = np.linspace(float(times.min()), float(times.max()), num_points)
    if effective_degree == 0 or float(times.max()) == float(times.min()):
        coefficients = np.asarray([float(np.mean(powers))])
    else:
        coefficients = np.polyfit(times, powers, deg=effective_degree)
    fitted = np.polyval(coefficients, grid)
    return TrendFit(
        degree=effective_degree,
        coefficients=tuple(float(c) for c in coefficients),
        times_s=tuple(float(t) for t in grid),
        fitted_w=tuple(float(p) for p in fitted),
    )


def linear_trend(profile: FineGrainProfile, component: str = "total") -> TrendFit:
    """Linear regression line (the overlays of Figures 7 and 10)."""
    return fit_trend(profile, component=component, degree=1)


def trend_agreement(reference: TrendFit, candidate: TrendFit) -> float:
    """How well a candidate trend matches a reference trend, in [0, 1].

    Both trends are evaluated on the reference grid; the score is
    ``1 - mean(|difference|) / mean(reference)``, clamped to [0, 1].  The
    Figure-5 resiliency claim is that a 50-run degree-4 trend still agrees
    closely with the 200-run profile.
    """
    grid = np.asarray(reference.times_s)
    ref_values = reference.evaluate(grid)
    cand_values = candidate.evaluate(grid)
    ref_mean = float(np.mean(np.abs(ref_values)))
    if ref_mean == 0:
        return 1.0 if np.allclose(ref_values, cand_values) else 0.0
    score = 1.0 - float(np.mean(np.abs(ref_values - cand_values))) / ref_mean
    return float(min(max(score, 0.0), 1.0))


def profile_spread(profile: FineGrainProfile, component: str = "total") -> float:
    """Residual spread of profile points around their own degree-4 trend.

    Used to show that execution-time binning tightens the profile: the golden
    runs' points scatter less around the trend than the full, unbinned cloud.
    """
    if len(profile) < 3:
        return 0.0
    trend = fit_trend(profile, component=component)
    times, powers = profile.component_points(component)
    residuals = powers - trend.evaluate(times)
    mean_power = float(np.mean(powers))
    if mean_power == 0:
        return 0.0
    return float(np.std(residuals) / mean_power)


__all__ = ["TrendFit", "fit_trend", "linear_trend", "trend_agreement", "profile_spread"]
