"""Analyses built on top of FinGraV profiles.

Comparative component analysis (Figs 7/10), interleaved-kernel studies
(Fig 9), power-proportionality assessment, SSE-vs-SSP measurement-error
summaries, trend fitting, and the programmatic Table II takeaway derivation.
"""

from .comparative import (
    ComponentComparison,
    KernelComponentSummary,
    compare_kernels,
    summary_from_profile,
    summary_from_result,
)
from .energy import ApplicationEnergyModel, EnergyBreakdown, KernelInvocation
from .errors import ErrorRecord, ErrorSummary, error_record_from_result, summarize_errors
from .insights import Takeaway, derive_takeaways
from .outliers import OutlierStudy, profile_outlier_executions
from .interleaving import InterleavedMeasurement, InterleavingStudy
from .proportionality import (
    ProportionalityAssessment,
    ProportionalityRecord,
    assess_proportionality,
)
from .trends import TrendFit, fit_trend, linear_trend, profile_spread, trend_agreement

__all__ = [
    "ApplicationEnergyModel",
    "EnergyBreakdown",
    "KernelInvocation",
    "OutlierStudy",
    "profile_outlier_executions",
    "ComponentComparison",
    "KernelComponentSummary",
    "compare_kernels",
    "summary_from_profile",
    "summary_from_result",
    "ErrorRecord",
    "ErrorSummary",
    "error_record_from_result",
    "summarize_errors",
    "Takeaway",
    "derive_takeaways",
    "InterleavedMeasurement",
    "InterleavingStudy",
    "ProportionalityAssessment",
    "ProportionalityRecord",
    "assess_proportionality",
    "TrendFit",
    "fit_trend",
    "linear_trend",
    "profile_spread",
    "trend_agreement",
]
