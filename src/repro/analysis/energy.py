"""Application-level energy accounting on top of FinGraV profiles.

The paper motivates accurate kernel-level power profiles partly through
energy: applications are sequences of kernels, energy is power integrated over
time, and per-kernel power errors propagate directly into application-level
energy estimates (Section I).  This module composes per-kernel FinGraV results
into an application energy estimate and quantifies the error made by skipping
power-profile differentiation (using SSE instead of SSP profiles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.profiler import FinGraVResult


@dataclass(frozen=True)
class KernelInvocation:
    """One step of an application-level kernel sequence."""

    kernel_name: str
    calls: int = 1

    def __post_init__(self) -> None:
        if self.calls <= 0:
            raise ValueError("a kernel invocation needs a positive call count")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy estimate of an application-level kernel sequence."""

    total_energy_j: float
    total_time_s: float
    per_kernel_energy_j: Mapping[str, float]

    @property
    def average_power_w(self) -> float:
        if self.total_time_s <= 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    def share_of(self, kernel_name: str) -> float:
        """Fraction of total energy attributed to one kernel."""
        if self.total_energy_j <= 0:
            return 0.0
        return self.per_kernel_energy_j.get(kernel_name, 0.0) / self.total_energy_j

    def dominant_kernel(self) -> str:
        if not self.per_kernel_energy_j:
            raise ValueError("breakdown is empty")
        return max(self.per_kernel_energy_j, key=self.per_kernel_energy_j.get)


class ApplicationEnergyModel:
    """Estimates application energy from per-kernel FinGraV results."""

    def __init__(self, results: Sequence[FinGraVResult]) -> None:
        if not results:
            raise ValueError("need at least one profiling result")
        self._results = {result.kernel_name: result for result in results}

    @property
    def kernel_names(self) -> list[str]:
        return sorted(self._results)

    def result_for(self, kernel_name: str) -> FinGraVResult:
        try:
            return self._results[kernel_name]
        except KeyError as exc:
            raise KeyError(f"no profiling result for kernel {kernel_name!r}") from exc

    def _energy_of(self, kernel_name: str, use_ssp: bool) -> tuple[float, float]:
        result = self.result_for(kernel_name)
        profile = result.ssp_profile if use_ssp else result.sse_profile
        if profile.is_empty:
            raise ValueError(
                f"{'SSP' if use_ssp else 'SSE'} profile of {kernel_name} is empty"
            )
        return profile.energy_j("total"), result.execution_time_s

    def estimate(
        self, sequence: Sequence[KernelInvocation], use_ssp: bool = True
    ) -> EnergyBreakdown:
        """Energy of a kernel sequence using SSP (default) or SSE profiles."""
        if not sequence:
            raise ValueError("the kernel sequence is empty")
        per_kernel: dict[str, float] = {}
        total_energy = 0.0
        total_time = 0.0
        for invocation in sequence:
            energy, execution_time = self._energy_of(invocation.kernel_name, use_ssp)
            contribution = energy * invocation.calls
            per_kernel[invocation.kernel_name] = (
                per_kernel.get(invocation.kernel_name, 0.0) + contribution
            )
            total_energy += contribution
            total_time += execution_time * invocation.calls
        return EnergyBreakdown(
            total_energy_j=total_energy,
            total_time_s=total_time,
            per_kernel_energy_j=per_kernel,
        )

    def differentiation_energy_error(self, sequence: Sequence[KernelInvocation]) -> float:
        """Relative application-energy error of using SSE instead of SSP profiles.

        This is the application-level consequence of skipping power-profile
        differentiation (paper guidance #1): per-kernel power errors of up to
        ~80 % translate directly into energy errors of the same magnitude.
        """
        ssp = self.estimate(sequence, use_ssp=True)
        sse = self.estimate(sequence, use_ssp=False)
        if ssp.total_energy_j <= 0:
            raise ValueError("SSP energy estimate must be positive")
        return abs(ssp.total_energy_j - sse.total_energy_j) / ssp.total_energy_j


__all__ = ["KernelInvocation", "EnergyBreakdown", "ApplicationEnergyModel"]
