"""Outlier-execution profiling (paper Section VI, "Outlier Executions").

FinGraV's common-case profiles discard runs whose execution time falls outside
the most populated bin.  The paper notes that the *outlier* executions are
also worth studying and sketches how: apply the same methodology but focus the
binning on a specific outlier execution time (changing step 6), accepting that
more runs are needed to populate that bin.  This module implements that
variant on top of an existing set of runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.binning import BinningResult, ExecutionTimeBinner
from ..core.profile import FineGrainProfile
from ..core.profiler import FinGraVResult
from ..core.stitching import ProfileStitcher


@dataclass(frozen=True)
class OutlierStudy:
    """Common-case vs outlier-bin profiles built from the same runs."""

    kernel_name: str
    common_profile: FineGrainProfile
    outlier_profile: FineGrainProfile
    common_execution_time_s: float
    outlier_execution_time_s: float
    outlier_runs: int

    @property
    def slowdown(self) -> float:
        """How much slower the outlier executions are than the common case."""
        if self.common_execution_time_s <= 0:
            return 0.0
        return self.outlier_execution_time_s / self.common_execution_time_s

    def power_ratio(self, component: str = "total") -> float:
        """Outlier power relative to the common-case power (same component)."""
        if self.common_profile.is_empty or self.outlier_profile.is_empty:
            raise ValueError("both profiles need points to compare power")
        return self.outlier_profile.mean_power_w(component) / self.common_profile.mean_power_w(
            component
        )

    def to_row(self) -> dict[str, object]:
        row: dict[str, object] = {
            "kernel": self.kernel_name,
            "outlier_runs": self.outlier_runs,
            "slowdown": round(self.slowdown, 3),
        }
        if not self.outlier_profile.is_empty and not self.common_profile.is_empty:
            row["power_ratio"] = round(self.power_ratio(), 3)
        return row


def profile_outlier_executions(
    result: FinGraVResult,
    margin: float | None = None,
    target_execution_time_s: float | None = None,
) -> OutlierStudy:
    """Build an outlier-bin SSP profile from an existing profiling result.

    ``target_execution_time_s`` selects which outlier population to study; by
    default the median execution time of the runs *excluded* by the original
    golden-run selection is used.  Returns the common-case profile alongside
    the outlier profile so they can be compared directly.
    """
    if result.binning is None:
        raise ValueError("the result was produced without binning; no outliers to study")
    margin = margin or result.binning.margin
    durations = [run.ssp_execution.duration_s for run in result.runs]
    run_indices = [run.run_index for run in result.runs]

    outlier_positions = list(result.binning.outlier_indices)
    if not outlier_positions:
        raise ValueError("no outlier runs were recorded for this result")
    if target_execution_time_s is None:
        target_execution_time_s = float(
            np.median([durations[i] for i in outlier_positions])
        )

    binner = ExecutionTimeBinner(margin)
    outlier_bin: BinningResult = binner.bin_around(durations, target_execution_time_s)
    outlier_runs = [run_indices[i] for i in outlier_bin.selected_indices]
    if not outlier_runs:
        raise ValueError(
            "no runs fall within the margin of the requested outlier execution time"
        )

    stitcher = ProfileStitcher(calibration=result.calibration)
    series = stitcher.collect(list(result.runs))
    outlier_profile = stitcher.ssp_profile(
        series, outlier_runs, min_execution_index=result.plan.ssp_index,
        metadata={"outlier_bin": True, "target_execution_time_s": target_execution_time_s},
    )
    outlier_time = float(np.mean([durations[i] for i in outlier_bin.selected_indices]))
    return OutlierStudy(
        kernel_name=result.kernel_name,
        common_profile=result.ssp_profile,
        outlier_profile=outlier_profile,
        common_execution_time_s=result.ssp_profile.execution_time_s,
        outlier_execution_time_s=outlier_time,
        outlier_runs=len(outlier_runs),
    )


__all__ = ["OutlierStudy", "profile_outlier_executions"]
