"""Power / energy measurement-error quantification (paper guidance #1).

The headline cost of skipping FinGraV's power-profile differentiation is a
power -- and therefore energy -- measurement error of up to 80 % for kernels
much shorter than the logger's averaging window.  This module aggregates those
errors across kernels and relates them to the ratio between kernel execution
time and the averaging window, which is the paper's explanation for why the
error shrinks as kernels grow (takeaway #1).

Beyond the post-hoc figures, the module also provides the *live* form of the
same analysis: :class:`StreamingCIEstimator` (a mergeable mean/variance
accumulator) and :func:`evaluate_profile_convergence`, which bins a profile
section's samples over the time-of-interest axis and decides whether its
confidence intervals have shrunk below a tolerance.  The adaptive profiler
session (:mod:`repro.core.session`) uses that verdict as its stopping rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # imported for annotations only; breaks the runtime cycle
    from ..core.profiler import FinGraVResult


@dataclass(frozen=True)
class ErrorRecord:
    """SSE-vs-SSP measurement error of one kernel."""

    kernel_name: str
    execution_time_s: float
    averaging_window_s: float
    sse_power_w: float
    ssp_power_w: float

    @property
    def power_error(self) -> float:
        """Relative power error of reporting SSE instead of SSP."""
        if self.ssp_power_w <= 0:
            raise ValueError("SSP power must be positive")
        return abs(self.ssp_power_w - self.sse_power_w) / self.ssp_power_w

    @property
    def energy_error(self) -> float:
        """Relative energy error (same execution time, so equal to the power error)."""
        return self.power_error

    @property
    def window_fill_ratio(self) -> float:
        """Kernel execution time relative to the averaging window."""
        if self.averaging_window_s <= 0:
            return float("inf")
        return self.execution_time_s / self.averaging_window_s


@dataclass(frozen=True)
class ErrorSummary:
    """Measurement errors across a set of kernels."""

    records: tuple[ErrorRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("need at least one error record")

    def max_error(self) -> float:
        return max(record.power_error for record in self.records)

    def record_for(self, kernel_name: str) -> ErrorRecord:
        for record in self.records:
            if record.kernel_name == kernel_name:
                return record
        raise KeyError(f"no error record for {kernel_name!r}")

    def error_shrinks_with_execution_time(self) -> bool:
        """Paper takeaway #1: longer kernels (relative to the window) err less.

        Checked as: the kernel with the largest window-fill ratio has a smaller
        error than the kernel with the smallest window-fill ratio.
        """
        ordered = sorted(self.records, key=lambda record: record.window_fill_ratio)
        return ordered[-1].power_error < ordered[0].power_error

    def to_rows(self) -> list[dict[str, object]]:
        rows = []
        for record in sorted(self.records, key=lambda r: r.window_fill_ratio):
            rows.append(
                {
                    "kernel": record.kernel_name,
                    "execution_time_us": round(record.execution_time_s * 1e6, 1),
                    "window_fill": round(record.window_fill_ratio, 3),
                    "sse_w": round(record.sse_power_w, 1),
                    "ssp_w": round(record.ssp_power_w, 1),
                    "error_pct": round(record.power_error * 100.0, 1),
                }
            )
        return rows


def error_record_from_result(result: FinGraVResult, averaging_window_s: float) -> ErrorRecord:
    """Build an error record from a FinGraV profiling result."""
    if result.sse_profile.is_empty or result.ssp_profile.is_empty:
        raise ValueError(f"result for {result.kernel_name} lacks SSE or SSP points")
    return ErrorRecord(
        kernel_name=result.kernel_name,
        execution_time_s=result.execution_time_s,
        averaging_window_s=averaging_window_s,
        sse_power_w=result.sse_profile.mean_power_w("total"),
        ssp_power_w=result.ssp_profile.mean_power_w("total"),
    )


def summarize_errors(
    results: Sequence[FinGraVResult], averaging_window_s: float
) -> ErrorSummary:
    """Aggregate SSE-vs-SSP errors over several profiling results."""
    records = tuple(
        error_record_from_result(result, averaging_window_s)
        for result in results
        if not result.sse_profile.is_empty and not result.ssp_profile.is_empty
    )
    return ErrorSummary(records=records)


#: Two-sided 95 % normal quantile used for every confidence interval here.
CI_Z_SCORE: float = 1.96

#: Number of time-of-interest bins the convergence rule evaluates per section.
CONVERGENCE_BINS: int = 4


class StreamingCIEstimator:
    """Streaming mean/variance accumulator with confidence-interval views.

    Batches are merged with Chan's parallel update, so feeding one array or
    the same values split across many :meth:`update` calls yields identical
    state (a single-batch update reduces to the direct two-pass computation).
    The adaptive session recomputes its estimators from the full columnar
    arrays at every checkpoint -- golden-run selection can *remove* runs
    between checkpoints, which no purely additive stream can express -- but
    the estimator itself stays mergeable for callers that do stream.
    """

    __slots__ = ("_count", "_mean", "_m2")

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_values(cls, values: np.ndarray) -> "StreamingCIEstimator":
        estimator = cls()
        estimator.update(values)
        return estimator

    def update(self, values: np.ndarray) -> None:
        """Merge a batch of samples (Chan's parallel mean/M2 update)."""
        values = np.asarray(values, dtype=float)
        batch = int(values.size)
        if batch == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(((values - batch_mean) ** 2).sum())
        if self._count == 0:
            self._count, self._mean, self._m2 = batch, batch_mean, batch_m2
            return
        total = self._count + batch
        delta = batch_mean - self._mean
        self._mean += delta * batch / total
        self._m2 += batch_m2 + delta * delta * self._count * batch / total
        self._count = total

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Sample (Bessel-corrected) variance; 0 below two samples."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std_error(self) -> float:
        if self._count < 2:
            return float("inf")
        return float(np.sqrt(self.variance / self._count))

    @property
    def half_width(self) -> float:
        """Half-width of the two-sided 95 % CI on the mean."""
        if self._count < 2:
            return float("inf")
        return CI_Z_SCORE * self.std_error

    def relative_half_width(self, reference: float | None = None) -> float:
        """CI half-width relative to ``reference`` (default: the mean)."""
        scale = abs(self._mean if reference is None else reference)
        if scale <= 0.0:
            return float("inf")
        return self.half_width / scale


@dataclass(frozen=True)
class ConvergenceDiagnostics:
    """Per-section convergence verdict of one adaptive checkpoint.

    All fields are JSON-friendly scalars/tuples so the diagnostics can ride
    result summaries and the sweep manifest unchanged.
    """

    section: str
    converged: bool
    sample_count: int
    mean: float
    #: Overall 95 % CI half-width relative to the section mean.
    relative_half_width: float
    #: Samples per TOI bin (populated bins only carry the convergence gate).
    bin_counts: tuple[int, ...]
    #: Per-bin CI half-widths relative to the *section* mean (inf when a
    #: populated bin has fewer than two samples).
    bin_relative_half_widths: tuple[float, ...]
    rtol: float

    @property
    def worst_relative_half_width(self) -> float:
        populated = [
            width for width, count in zip(self.bin_relative_half_widths, self.bin_counts)
            if count > 0
        ]
        return max(populated, default=float("inf"))

    def to_dict(self) -> dict[str, object]:
        worst = self.worst_relative_half_width
        return {
            "section": self.section,
            "converged": self.converged,
            "samples": self.sample_count,
            "mean": self.mean,
            "relative_half_width": _json_float(self.relative_half_width),
            "worst_bin_relative_half_width": _json_float(worst),
            "bin_counts": list(self.bin_counts),
            "rtol": self.rtol,
        }


def _json_float(value: float) -> float | None:
    """Map non-finite widths (no CI yet) to None for JSON payloads."""
    return float(value) if np.isfinite(value) else None


def evaluate_profile_convergence(
    section: str,
    values: np.ndarray,
    times: np.ndarray,
    span_s: float,
    rtol: float,
    bins: int = CONVERGENCE_BINS,
    min_samples: int = 2,
) -> ConvergenceDiagnostics:
    """Decide whether one profile section's estimate has converged.

    ``values`` are the section's total-power samples and ``times`` their
    times of interest; both come straight from the stitched series' columnar
    views.  The samples are split into ``bins`` equal TOI bins over
    ``[0, span_s]``; the section converges when it holds at least
    ``min_samples`` samples and the overall 95 % CI *and* the CI of every
    populated bin are within ``rtol`` of the section mean, with every
    populated bin holding at least two samples.  Sample-starved sections
    (e.g. SSE, which draws a single execution per run) should pass
    ``bins=1`` so only the overall CI gates, with ``min_samples`` carrying
    the methodology's own LOI floor.  An empty section never converges
    (its half-widths are infinite).
    """
    if rtol <= 0.0:
        raise ValueError("convergence rtol must be positive")
    if bins <= 0:
        raise ValueError("need at least one convergence bin")
    if min_samples < 2:
        raise ValueError("need at least two samples for a confidence interval")
    values = np.asarray(values, dtype=float)
    times = np.asarray(times, dtype=float)
    overall = StreamingCIEstimator.from_values(values)
    span = max(float(span_s), 1e-12)
    if values.size:
        bin_index = np.clip(
            np.floor(times / span * bins).astype(np.int64), 0, bins - 1
        )
    else:
        bin_index = np.zeros(0, dtype=np.int64)
    bin_counts: list[int] = []
    bin_widths: list[float] = []
    reference = overall.mean
    for index in range(bins):
        members = values[bin_index == index]
        bin_counts.append(int(members.size))
        if members.size == 0:
            bin_widths.append(float("inf"))
            continue
        estimator = StreamingCIEstimator.from_values(members)
        bin_widths.append(estimator.relative_half_width(reference))
    overall_width = overall.relative_half_width()
    populated = [
        width for width, count in zip(bin_widths, bin_counts) if count > 0
    ]
    converged = bool(
        overall.count >= min_samples
        and populated
        and overall_width <= rtol
        and all(width <= rtol for width in populated)
    )
    return ConvergenceDiagnostics(
        section=section,
        converged=converged,
        sample_count=overall.count,
        mean=overall.mean,
        relative_half_width=overall_width,
        bin_counts=tuple(bin_counts),
        bin_relative_half_widths=tuple(bin_widths),
        rtol=rtol,
    )


__all__ = [
    "ErrorRecord",
    "ErrorSummary",
    "error_record_from_result",
    "summarize_errors",
    "CI_Z_SCORE",
    "CONVERGENCE_BINS",
    "StreamingCIEstimator",
    "ConvergenceDiagnostics",
    "evaluate_profile_convergence",
]
