"""Power / energy measurement-error quantification (paper guidance #1).

The headline cost of skipping FinGraV's power-profile differentiation is a
power -- and therefore energy -- measurement error of up to 80 % for kernels
much shorter than the logger's averaging window.  This module aggregates those
errors across kernels and relates them to the ratio between kernel execution
time and the averaging window, which is the paper's explanation for why the
error shrinks as kernels grow (takeaway #1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.profiler import FinGraVResult


@dataclass(frozen=True)
class ErrorRecord:
    """SSE-vs-SSP measurement error of one kernel."""

    kernel_name: str
    execution_time_s: float
    averaging_window_s: float
    sse_power_w: float
    ssp_power_w: float

    @property
    def power_error(self) -> float:
        """Relative power error of reporting SSE instead of SSP."""
        if self.ssp_power_w <= 0:
            raise ValueError("SSP power must be positive")
        return abs(self.ssp_power_w - self.sse_power_w) / self.ssp_power_w

    @property
    def energy_error(self) -> float:
        """Relative energy error (same execution time, so equal to the power error)."""
        return self.power_error

    @property
    def window_fill_ratio(self) -> float:
        """Kernel execution time relative to the averaging window."""
        if self.averaging_window_s <= 0:
            return float("inf")
        return self.execution_time_s / self.averaging_window_s


@dataclass(frozen=True)
class ErrorSummary:
    """Measurement errors across a set of kernels."""

    records: tuple[ErrorRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("need at least one error record")

    def max_error(self) -> float:
        return max(record.power_error for record in self.records)

    def record_for(self, kernel_name: str) -> ErrorRecord:
        for record in self.records:
            if record.kernel_name == kernel_name:
                return record
        raise KeyError(f"no error record for {kernel_name!r}")

    def error_shrinks_with_execution_time(self) -> bool:
        """Paper takeaway #1: longer kernels (relative to the window) err less.

        Checked as: the kernel with the largest window-fill ratio has a smaller
        error than the kernel with the smallest window-fill ratio.
        """
        ordered = sorted(self.records, key=lambda record: record.window_fill_ratio)
        return ordered[-1].power_error < ordered[0].power_error

    def to_rows(self) -> list[dict[str, object]]:
        rows = []
        for record in sorted(self.records, key=lambda r: r.window_fill_ratio):
            rows.append(
                {
                    "kernel": record.kernel_name,
                    "execution_time_us": round(record.execution_time_s * 1e6, 1),
                    "window_fill": round(record.window_fill_ratio, 3),
                    "sse_w": round(record.sse_power_w, 1),
                    "ssp_w": round(record.ssp_power_w, 1),
                    "error_pct": round(record.power_error * 100.0, 1),
                }
            )
        return rows


def error_record_from_result(result: FinGraVResult, averaging_window_s: float) -> ErrorRecord:
    """Build an error record from a FinGraV profiling result."""
    if result.sse_profile.is_empty or result.ssp_profile.is_empty:
        raise ValueError(f"result for {result.kernel_name} lacks SSE or SSP points")
    return ErrorRecord(
        kernel_name=result.kernel_name,
        execution_time_s=result.execution_time_s,
        averaging_window_s=averaging_window_s,
        sse_power_w=result.sse_profile.mean_power_w("total"),
        ssp_power_w=result.ssp_profile.mean_power_w("total"),
    )


def summarize_errors(
    results: Sequence[FinGraVResult], averaging_window_s: float
) -> ErrorSummary:
    """Aggregate SSE-vs-SSP errors over several profiling results."""
    records = tuple(
        error_record_from_result(result, averaging_window_s)
        for result in results
        if not result.sse_profile.is_empty and not result.ssp_profile.is_empty
    )
    return ErrorSummary(records=records)


__all__ = ["ErrorRecord", "ErrorSummary", "error_record_from_result", "summarize_errors"]
