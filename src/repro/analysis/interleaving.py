"""Interleaved-kernel power studies (paper Section V-C3, Figure 9).

The paper compares a kernel's power profile in isolation (its SSP profile)
against its measured power when other kernels execute immediately before it.
Because the power logger averages over a trailing window, the measured power
of a kernel shorter than that window is contaminated by whatever preceded it:
memory-bound GEMVs and compute-light GEMMs inherit the power level of their
predecessors, while a compute-heavy GEMM longer than the window is unaffected.

:class:`InterleavingStudy` reproduces that experiment: for each scenario it
runs many instrumented runs in which the preceding kernels execute first and a
*single* execution of the kernel of interest follows, extracts the logs of
interest for that execution, and compares their mean power to the isolated
SSP profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..core.backend import ProfilingBackend
from ..core.profile import FineGrainProfile, ProfileKind, profile_from_lois
from ..core.profiler import FinGraVProfiler
from ..core.records import COMPONENT_KEYS, LogOfInterest
from ..core.stitching import ProfileStitcher
from ..kernels.workloads import InterleavingScenario


@dataclass(frozen=True)
class InterleavedMeasurement:
    """Outcome of one interleaving scenario."""

    label: str
    kernel_name: str
    isolated_ssp_w: float
    interleaved_w: float
    preceding_description: tuple[str, ...]
    lois: int
    interleaved_profile: FineGrainProfile

    @property
    def ratio(self) -> float:
        """Interleaved measured power relative to the isolated SSP power."""
        if self.isolated_ssp_w <= 0:
            raise ValueError("isolated SSP power must be positive")
        return self.interleaved_w / self.isolated_ssp_w

    @property
    def affected(self) -> bool:
        """Whether interleaving changed the measured power appreciably (>5 %)."""
        return abs(self.ratio - 1.0) > 0.05

    def direction(self) -> str:
        """'higher', 'lower' or 'unchanged' relative to the isolated profile."""
        if not self.affected:
            return "unchanged"
        return "higher" if self.ratio > 1.0 else "lower"


class InterleavingStudy:
    """Runs the Figure-9 interleaving experiment."""

    def __init__(
        self,
        backend: ProfilingBackend,
        profiler: FinGraVProfiler | None = None,
        runs: int = 60,
        components: Sequence[str] = COMPONENT_KEYS,
        seed: int = 77,
    ) -> None:
        if runs <= 0:
            raise ValueError("need at least one run")
        self._backend = backend
        self._profiler = profiler or FinGraVProfiler(backend)
        self._runs = runs
        self._components = tuple(components)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    def isolated_ssp(self, kernel: object, runs: int | None = None) -> FineGrainProfile:
        """The kernel's SSP profile in isolation (the Figure-9 reference)."""
        result = self._profiler.profile(kernel, runs=runs)
        return result.ssp_profile

    def interleaved_profile(
        self,
        kernel: object,
        preceding: Sequence[tuple[object, int]],
        runs: int | None = None,
        min_lois: int = 5,
        max_runs: int | None = None,
    ) -> FineGrainProfile:
        """Measured profile of a single execution of ``kernel`` after ``preceding``.

        Because the kernel of interest executes only once per run, a short
        kernel yields a log of interest only in a small fraction of runs; runs
        are therefore collected in batches until at least ``min_lois`` LOIs are
        available (bounded by ``max_runs``), mirroring methodology step 8.
        """
        runs = runs or self._runs
        max_runs = max_runs or max(runs * 10, 400)
        period = self._backend.power_sample_period_s
        stitcher = ProfileStitcher(components=self._components)
        series = None
        durations: list[float] = []
        run_index = 0

        def loi_count() -> int:
            return series.count_last_execution_lois() if series is not None else 0

        while run_index < runs or (loi_count() < min_lois and run_index < max_runs):
            pre_delay = float(self._rng.uniform(0.0, 2.0 * period))
            record = self._backend.run(
                kernel,
                executions=1,
                pre_delay_s=pre_delay,
                run_index=run_index,
                preceding=tuple(preceding),
            )
            durations.append(record.last_execution.duration_s)
            if series is None:
                series = stitcher.collect([record])
            else:
                stitcher.extend(series, [record])
            run_index += 1
        lois: list[LogOfInterest] = (
            series.lois_for_last_execution() if series is not None else []
        )
        execution_time = float(np.mean(durations)) if durations else 0.0
        return profile_from_lois(
            kernel_name=self._backend.kernel_name(kernel),
            kind=ProfileKind.CUSTOM,
            lois=lois,
            execution_time_s=execution_time,
            components=self._components,
            metadata={"interleaved": True, "runs": runs},
        )

    def measure_scenario(
        self,
        scenario: InterleavingScenario,
        isolated: Mapping[str, FineGrainProfile] | None = None,
        runs: int | None = None,
    ) -> InterleavedMeasurement:
        """Measure one Figure-9 scenario.

        ``isolated`` optionally supplies already-profiled SSP references keyed
        by kernel name, so the expensive isolated profiles can be shared
        between scenarios that target the same kernel.
        """
        kernel = scenario.kernel_of_interest
        kernel_name = self._backend.kernel_name(kernel)
        if isolated is not None and kernel_name in isolated:
            reference = isolated[kernel_name]
        else:
            reference = self.isolated_ssp(kernel)
        interleaved = self.interleaved_profile(kernel, scenario.preceding, runs=runs)
        if interleaved.is_empty:
            raise ValueError(
                f"scenario {scenario.label}: no logs of interest were captured; "
                "increase the number of runs"
            )
        return InterleavedMeasurement(
            label=scenario.label,
            kernel_name=kernel_name,
            isolated_ssp_w=reference.mean_power_w("total"),
            interleaved_w=interleaved.mean_power_w("total"),
            preceding_description=tuple(
                f"{self._backend.kernel_name(k)} x{count}" for k, count in scenario.preceding
            ),
            lois=len(interleaved),
            interleaved_profile=interleaved,
        )

    def run_scenarios(
        self,
        scenarios: Sequence[InterleavingScenario],
        isolated: Mapping[str, FineGrainProfile] | None = None,
        runs: int | None = None,
    ) -> list[InterleavedMeasurement]:
        """Measure a batch of scenarios, reusing isolated references where given."""
        return [self.measure_scenario(s, isolated=isolated, runs=runs) for s in scenarios]


__all__ = ["InterleavedMeasurement", "InterleavingStudy"]
