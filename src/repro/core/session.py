"""Resumable profiling sessions: streaming, convergence-driven collection.

:class:`ProfileSession` decomposes the monolithic nine-step ``profile()`` into
an explicit state machine.  Construction runs the setup phase eagerly (steps
1-4: kernel timing, guidance lookup, read-delay calibration and the
differentiation plan); run collection then advances batch by batch through
:meth:`ProfileSession.step`, feeding every batch through the incremental
:class:`~repro.core.stitching.ProfileStitcher` /
:class:`~repro.core.binning.ExecutionTimeBinner` machinery and re-evaluating
per-bin confidence intervals on the golden-run SSP/SSE estimates at each
checkpoint (:func:`repro.analysis.errors.evaluate_profile_convergence`).

Two collection policies share the machine:

* ``adaptive=False`` (the default) reproduces the paper's fixed-count
  methodology exactly -- one batch of the planned runs, then the step-8
  yield-scaled top-up loop -- and is pinned bit-identical to the pre-session
  monolithic ``profile()`` by ``tests/test_profile_session.py``.
* ``adaptive=True`` collects in ``checkpoint_every``-run batches and stops
  early once every section's 95 % confidence intervals (overall and per TOI
  bin) fall within ``convergence_rtol`` of the section mean, converting
  worst-case run counts into expected-case ones.

:meth:`ProfileSession.iter_profiles` streams one :class:`ProfileSnapshot` per
batch -- progressively refined SSP/SSE profiles plus the convergence
diagnostics backing the stopping decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..analysis.errors import (
    CONVERGENCE_BINS,
    ConvergenceDiagnostics,
    evaluate_profile_convergence,
)
from .backend import PrecedingWork
from .binning import BinningResult, ExecutionTimeBinner
from .differentiation import build_plan
from .profile import FineGrainProfile
from .profiler import (
    PROFILE_SECTIONS,
    FinGraVResult,
    SlimFinGraVResult,
    normalize_profile_sections,
)
from .records import RunRecord
from .stitching import ProfileStitcher, StitchedRunSeries

if TYPE_CHECKING:
    from .profiler import FinGraVProfiler

#: Stop reasons a finished session can report.
STOP_REASONS: tuple[str, ...] = ("converged", "target", "budget")


@dataclass(frozen=True)
class ProfileSnapshot:
    """One checkpoint's view of a session: partial profiles + diagnostics."""

    #: 0-based index of the collection batch this snapshot follows.
    index: int
    runs_collected: int
    planned_runs: int
    #: Whether every evaluated section met the convergence rule here.
    converged: bool
    #: Set on the final snapshot only (one of :data:`STOP_REASONS`).
    stop_reason: str | None
    #: True when collection is finished and this is the last snapshot.
    final: bool
    #: SSP/SSE profiles stitched from the runs collected so far.
    profiles: Mapping[str, FineGrainProfile]
    #: Per-section convergence diagnostics backing ``converged``.
    diagnostics: tuple[ConvergenceDiagnostics, ...]

    @property
    def ssp_profile(self) -> FineGrainProfile:
        return self.profiles["ssp"]

    @property
    def sse_profile(self) -> FineGrainProfile:
        return self.profiles["sse"]


class ProfileSession:
    """Resumable collection state for one kernel's fine-grain profiles."""

    def __init__(
        self,
        profiler: "FinGraVProfiler",
        kernel: object,
        runs: int | None = None,
        preceding: Sequence[PrecedingWork] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        self._profiler = profiler
        self._backend = profiler.backend
        self._config = config = profiler.config
        self._kernel = kernel
        self._preceding = tuple(preceding)

        # ------------------------------------------------------------------
        # Setup phase (steps 1-4).
        # ------------------------------------------------------------------
        # Step 1: execution time and guidance.
        self._execution_time = profiler.time_kernel(kernel)
        self._guidance = profiler.guidance_table.lookup(self._execution_time)
        self._planned_runs = runs if runs is not None else (
            config.runs if config.runs is not None else self._guidance.runs
        )
        if self._planned_runs <= 0:
            raise ValueError("run count must be positive")
        self._margin = (
            config.binning_margin if config.binning_margin is not None
            else self._guidance.binning_margin
        )

        # Step 2: instrumentation calibration.
        self._calibration = self._backend.calibrate_read_delay(
            config.calibration_samples
        )

        # Steps 3-4: differentiation plan (warm-ups, SSE, SSP executions).
        self._plan = build_plan(
            self._backend,
            kernel,
            self._execution_time,
            warmup_tolerance=config.warmup_tolerance,
            refine_with_power_search=(
                config.differentiate and config.refine_ssp_with_power_search
            ),
        )
        if config.differentiate:
            window_fill = (
                self._backend.power_sample_period_s / max(self._execution_time, 1e-9)
            )
            tail = int(np.ceil(window_fill * config.ssp_tail_fraction))
            tail = min(
                max(tail, config.min_ssp_tail_executions),
                config.max_ssp_tail_executions,
            )
            self._executions_per_run = self._plan.ssp_executions + tail
        else:
            self._executions_per_run = self._plan.sse_executions

        # Step-8 targets: recommended SSP LOIs plus an SSE floor for the
        # SSE/SSP comparison (the SSE profile draws one execution per run).
        self._target_lois = self._guidance.recommended_lois(self._execution_time)
        self._sse_target = min(4, self._target_lois) if config.differentiate else 0
        self._extra_budget = config.max_additional_runs
        self._ssp_start = (
            profiler._ssp_start_index(self._plan) if config.differentiate else None
        )

        # ------------------------------------------------------------------
        # Collection state (steps 5-8, advanced by step()).
        # ------------------------------------------------------------------
        self._records: tuple[RunRecord, ...] = ()
        self._binner = ExecutionTimeBinner(self._margin) if config.apply_binning else None
        self._binning: BinningResult | None = None
        self._golden_indices: list[int] | None = None
        self._stitcher = ProfileStitcher(
            components=config.components,
            calibration=self._calibration if config.synchronize else None,
            synchronize=config.synchronize,
            vectorized=config.vectorized,
            columnar=config.columnar,
        )
        self._series: StitchedRunSeries | None = None
        self._base_metadata = dict(metadata or {})
        self._base_metadata.setdefault(
            "preceding", [profiler._describe_preceding(p) for p in self._preceding]
        )
        self._batches = 0
        self._checkpoints = 0
        self._stop_reason: str | None = None
        self._diagnostics: tuple[ConvergenceDiagnostics, ...] = ()
        self._diagnostics_at = -1
        self._result: FinGraVResult | SlimFinGraVResult | None = None

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def config(self):
        return self._config

    @property
    def kernel(self) -> object:
        return self._kernel

    @property
    def execution_time_s(self) -> float:
        return self._execution_time

    @property
    def guidance(self):
        return self._guidance

    @property
    def plan(self):
        return self._plan

    @property
    def planned_runs(self) -> int:
        return self._planned_runs

    @property
    def runs_collected(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[RunRecord, ...]:
        return self._records

    @property
    def series(self) -> StitchedRunSeries | None:
        return self._series

    @property
    def golden_run_indices(self) -> tuple[int, ...] | None:
        if self._golden_indices is None:
            return None
        return tuple(self._golden_indices)

    @property
    def finished(self) -> bool:
        return self._stop_reason is not None

    @property
    def stop_reason(self) -> str | None:
        return self._stop_reason

    @property
    def diagnostics(self) -> tuple[ConvergenceDiagnostics, ...]:
        return self._diagnostics

    # ------------------------------------------------------------------ #
    # Collection (steps 5-8).
    # ------------------------------------------------------------------ #
    def step(self) -> bool:
        """Advance collection by one batch.

        Returns True while the session keeps collecting; False once it has
        finished (the stopping decision is recorded in :attr:`stop_reason`).
        Calling :meth:`step` on a finished session is a no-op returning False.
        """
        if self.finished:
            return False
        config = self._config
        if len(self._records) < self._planned_runs:
            # Step 5: the planned runs -- one batch in fixed mode, exactly as
            # the monolithic profile() collected them; checkpoint-sized
            # batches in adaptive mode so convergence can stop collection
            # before the plan completes.
            if config.adaptive:
                batch = min(
                    config.checkpoint_every, self._planned_runs - len(self._records)
                )
            else:
                batch = self._planned_runs - len(self._records)
            self._ingest(self._collect(batch))
            if config.adaptive and self._check_convergence():
                self._finish("converged")
                return False
            return True
        # Step 8: top up runs until the LOI target is met.  The batch size is
        # scaled to the observed LOI yield per run so that short kernels
        # (which yield an LOI only every few dozen runs) converge in few
        # batches.
        if self._shortfall() > 0 and self._extra_budget > 0:
            missing = self._shortfall()
            have_total = max(self._ssp_have(), 1)
            observed_yield = max(have_total / max(len(self._records), 1), 0.01)
            needed = int(np.ceil(missing / observed_yield))
            batch = min(max(needed, 16), self._extra_budget)
            if config.adaptive:
                # Cap top-up batches so convergence checkpoints happen while
                # topping up -- short kernels converge well before the full
                # yield-scaled batch completes.
                batch = min(batch, max(2 * config.checkpoint_every, 16))
            self._ingest(self._collect(batch))
            self._extra_budget -= batch
            if config.adaptive and self._check_convergence():
                self._finish("converged")
                return False
            return True
        self._finish("target" if self._shortfall() <= 0 else "budget")
        return False

    def run_to_completion(self) -> "ProfileSession":
        """Collect until the session's stopping rule fires."""
        while self.step():
            pass
        return self

    def iter_profiles(self) -> Iterator[ProfileSnapshot]:
        """Yield a :class:`ProfileSnapshot` after every collection batch.

        The last yielded snapshot has ``final=True`` and carries the stopping
        decision; :meth:`result` is then ready.  Iterating a finished session
        yields its final snapshot once.
        """
        if self.finished:
            yield self.snapshot()
            return
        while True:
            live = self.step()
            yield self.snapshot()
            if not live:
                return

    def snapshot(self) -> ProfileSnapshot:
        """Profiles and diagnostics for the runs collected so far."""
        if self._series is None:
            raise ValueError("no runs collected yet; call step() first")
        profiles = self._stitcher.section_profiles(
            self._series,
            ("ssp", "sse"),
            golden_runs=self._golden_indices,
            sse_index=self._plan.sse_index,
            min_execution_index=self._profiler._ssp_start_index(self._plan),
            metadata=self._base_metadata,
        )
        diagnostics = self._evaluate_diagnostics()
        return ProfileSnapshot(
            index=self._batches - 1,
            runs_collected=len(self._records),
            planned_runs=self._planned_runs,
            converged=bool(diagnostics) and all(d.converged for d in diagnostics),
            stop_reason=self._stop_reason,
            final=self.finished,
            profiles=profiles,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------ #
    # Result assembly (step 9).
    # ------------------------------------------------------------------ #
    def result(self) -> FinGraVResult | SlimFinGraVResult:
        """The final profiling result (step 9).

        SSP and SSE are always built (the summary snapshot needs their means
        and the SSE-vs-SSP error); the whole-run profile -- typically the
        bulk of a payload -- is only stitched when the result actually
        carries it: full mode, or a slim section declaration that includes
        ``"run"``.  The collection audit (stop reason, runs saved, final CI)
        rides ``result.metadata["collection"]`` and the summary.
        """
        if not self.finished:
            raise ValueError(
                "session still collecting; call run_to_completion() "
                "or drain iter_profiles() before result()"
            )
        if self._result is not None:
            return self._result
        config = self._config
        assert self._series is not None
        sections = PROFILE_SECTIONS
        if config.result_mode == "slim":
            sections = normalize_profile_sections(config.profile_sections)
        build = tuple(
            name for name in PROFILE_SECTIONS
            if name in ("ssp", "sse") or name in sections
        )
        built = self._stitcher.section_profiles(
            self._series,
            build,
            golden_runs=self._golden_indices,
            sse_index=self._plan.sse_index,
            min_execution_index=self._profiler._ssp_start_index(self._plan),
            metadata=self._base_metadata,
        )
        result_metadata = dict(self._base_metadata)
        result_metadata["collection"] = self.collection_audit()
        result = FinGraVResult(
            kernel_name=self._backend.kernel_name(self._kernel),
            execution_time_s=self._execution_time,
            guidance=self._guidance,
            plan=self._plan,
            calibration=self._calibration,
            runs=self._records,
            binning=self._binning,
            ssp_profile=built["ssp"],
            sse_profile=built["sse"],
            run_profile=built.get("run"),
            config=config,
            metadata=result_metadata,
        )
        if config.result_mode == "slim":
            self._result = result.slim(sections)
        else:
            self._result = result
        return self._result

    def collection_audit(self) -> dict[str, object]:
        """JSON-friendly record of the stopping decision (summary/manifest)."""
        diagnostics = self._evaluate_diagnostics()
        widths = [
            d.relative_half_width for d in diagnostics
            if np.isfinite(d.relative_half_width)
        ]
        return {
            "adaptive": self._config.adaptive,
            "stop_reason": self._stop_reason,
            "runs_collected": len(self._records),
            "runs_planned": self._planned_runs,
            "runs_saved": max(self._planned_runs - len(self._records), 0),
            "extra_budget_left": self._extra_budget,
            "batches": self._batches,
            "checkpoints": self._checkpoints,
            "converged": bool(diagnostics) and all(d.converged for d in diagnostics),
            "final_relative_ci": max(widths) if widths else None,
            "sections": [d.to_dict() for d in diagnostics],
        }

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _collect(self, count: int) -> tuple[RunRecord, ...]:
        return self._profiler._collect_runs(
            self._kernel,
            count,
            self._executions_per_run,
            self._preceding,
            start_index=len(self._records),
        )

    def _ingest(self, new_records: tuple[RunRecord, ...]) -> None:
        """Step 6-7 for one batch: re-bin golden runs, stitch the new LOIs.

        On the vectorized path the binner keeps its sorted state and the
        stitcher extracts only the new records (ExecutionTimeBinner.extend /
        ProfileStitcher.extend); the legacy path re-bins and re-extracts the
        full record list every batch, exactly as the pre-session profiler
        did.
        """
        config = self._config
        self._records = self._records + new_records
        self._batches += 1
        if self._binner is not None and new_records:
            if config.vectorized:
                self._binning = self._binner.extend(
                    record.ssp_execution.duration_s for record in new_records
                )
            else:
                # Legacy behaviour: rebuild the binner and the duration list
                # from scratch every batch.
                self._binner = ExecutionTimeBinner(self._margin)
                self._binning = self._binner.bin(
                    [record.ssp_execution.duration_s for record in self._records]
                )
            self._golden_indices = [
                self._records[i].run_index for i in self._binning.selected_indices
            ]
        if config.vectorized:
            if self._series is None:
                self._series = self._stitcher.collect(self._records)
            else:
                self._series = self._stitcher.extend(self._series, new_records)
        else:
            # Legacy behaviour: re-extract the entire record list.
            self._series = self._stitcher.collect(self._records)

    def _ssp_have(self) -> int:
        config = self._config
        series = self._series
        assert series is not None
        if config.vectorized:
            if self._ssp_start is None:
                return series.count_last_execution_lois(self._golden_indices)
            return series.count_lois(
                min_execution_index=self._ssp_start, golden_runs=self._golden_indices
            )
        # Legacy (pre-vectorization) behaviour: materialise the LOI lists.
        if self._ssp_start is None:
            lois = series.lois_for_last_execution()
        else:
            lois = [
                loi for loi in series.all_lois()
                if loi.execution_index >= self._ssp_start
            ]
        return self._profiler._count_golden(lois, self._golden_indices)

    def _shortfall(self) -> int:
        config = self._config
        series = self._series
        assert series is not None
        if config.vectorized:
            sse_have = series.count_lois(
                execution_index=self._plan.sse_index, golden_runs=self._golden_indices
            )
        else:
            sse_have = self._profiler._count_golden(
                series.lois_for_execution(self._plan.sse_index), self._golden_indices
            )
        return max(self._target_lois - self._ssp_have(), self._sse_target - sse_have)

    def _section_samples(self, section: str) -> tuple[np.ndarray, np.ndarray]:
        """(total-power values, TOIs) of one section's golden LOIs."""
        series = self._series
        assert series is not None
        run_idx, exec_idx = series.loi_index_arrays()
        column = series.loi_power_column("total")
        if column is None:
            empty = np.zeros(0, dtype=float)
            return empty, empty
        values, presence = column
        if section == "ssp":
            if self._ssp_start is None:
                mask = exec_idx == series.loi_last_execution_array()
            else:
                mask = exec_idx >= self._ssp_start
        else:
            mask = exec_idx == self._plan.sse_index
        if self._golden_indices is not None:
            wanted = np.fromiter(
                (int(i) for i in self._golden_indices), dtype=np.int64
            )
            mask = mask & np.isin(run_idx, wanted)
        if presence is not None:
            mask = mask & presence
        return values[mask], series.loi_toi_array()[mask]

    def _evaluate_diagnostics(self) -> tuple[ConvergenceDiagnostics, ...]:
        """Per-section convergence diagnostics for the current record set.

        Recomputed from the full columnar arrays (not accumulated) because
        golden-run re-selection can remove previously counted runs between
        checkpoints; cached per record count so repeated snapshot/audit
        calls cost one evaluation.
        """
        if self._series is None:
            return ()
        if self._diagnostics_at == len(self._records):
            return self._diagnostics
        sections = ("ssp", "sse") if self._config.differentiate else ("ssp",)
        diagnostics = []
        for section in sections:
            values, times = self._section_samples(section)
            # SSE draws a single execution per run, so per-TOI-bin CIs are
            # unattainable at realistic budgets: gate it on the overall CI
            # plus the methodology's own SSE LOI floor instead.
            bins = CONVERGENCE_BINS if section == "ssp" else 1
            min_samples = 2 if section == "ssp" else max(2, self._sse_target)
            diagnostics.append(
                evaluate_profile_convergence(
                    section,
                    values,
                    times,
                    self._execution_time,
                    self._config.convergence_rtol,
                    bins=bins,
                    min_samples=min_samples,
                )
            )
        self._diagnostics = tuple(diagnostics)
        self._diagnostics_at = len(self._records)
        return self._diagnostics

    def _check_convergence(self) -> bool:
        """The adaptive stopping rule, evaluated at one checkpoint."""
        self._checkpoints += 1
        if len(self._records) < self._config.min_runs:
            return False
        diagnostics = self._evaluate_diagnostics()
        return bool(diagnostics) and all(d.converged for d in diagnostics)

    def _finish(self, reason: str) -> None:
        self._stop_reason = reason


__all__ = ["ProfileSession", "ProfileSnapshot", "STOP_REASONS"]
