"""The FinGraV profiler: the nine-step methodology of paper Section IV-B.

:class:`FinGraVProfiler` drives a :class:`~repro.core.backend.ProfilingBackend`
through the full methodology:

1.  Time the kernel a few times and look up the guidance table (Table I) for
    the recommended #runs, binning margin and LOI target.
2.  Calibrate the GPU-timestamp read delay (the CPU-side instrumentation).
3.  Deduce the warm-up count empirically; SSE needs warm-ups + 1 executions.
4.  Compute the SSP execution count with ``max(ceil(window / exec), SSE)``,
    refining with a binary search when throttling is detected.
5.  Execute the runs, each with a random delay before the executions so the
    power-logger windows land at different times of interest.
6.  Discard all but the golden runs via execution-time binning.
7.  Synchronise CPU and GPU time per run and identify the LOIs/TOIs.
8.  Execute additional runs if fewer LOIs than recommended were obtained.
9.  Stitch the LOIs into the SSE/SSP/run fine-grain profiles.

Baseline behaviours (no sync, no binning, SSE-only, coarse sampler) are
expressed as configuration flags so that the methodology-evaluation figures
compare like for like; see :mod:`repro.core.baselines` for ready-made presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from .backend import PrecedingWork, ProfilingBackend
from .binning import BinningResult, ExecutionTimeBinner
from .differentiation import DifferentiationPlan, build_plan
from .guidance import GuidanceEntry, GuidanceTable, paper_guidance_table
from .profile import FineGrainProfile, measurement_error
from .records import COMPONENT_KEYS, DelayCalibration, RunRecord
from .stitching import ProfileStitcher


@dataclass(frozen=True)
class ProfilerConfig:
    """Knobs of the FinGraV profiler.

    The defaults implement the full methodology; the baseline profilers in
    :mod:`repro.core.baselines` flip individual switches off to show what each
    ingredient contributes (paper Section V-B).
    """

    #: Override the guidance table's #runs (None = follow Table I).
    runs: int | None = None
    #: Override the guidance table's binning margin (None = follow Table I).
    binning_margin: float | None = None
    #: Apply CPU-GPU time synchronisation when placing power logs.
    synchronize: bool = True
    #: Apply execution-time binning / golden-run selection.
    apply_binning: bool = True
    #: Differentiate SSE and SSP profiles (False = SSE-only, the naive view).
    differentiate: bool = True
    #: Upper bound on the random pre-execution delay, in power-logger periods.
    max_random_delay_periods: float = 2.0
    #: Number of timestamp reads used for delay calibration.
    calibration_samples: int = 32
    #: How many times step 1 times the kernel.
    timing_executions: int = 5
    #: Cap on additional runs collected by step 8.
    max_additional_runs: int = 600
    #: Components to carry through to the stitched profiles.
    components: tuple[str, ...] = COMPONENT_KEYS
    #: Seed of the profiler's own randomness (random delays).
    seed: int = 2024
    #: Tolerance used when deducing warm-ups from execution times.
    warmup_tolerance: float = 0.05
    #: Refine the SSP execution count with the power-stability binary search.
    refine_ssp_with_power_search: bool = True
    #: Extra executions appended after the SSP execution in every run.  Power
    #: is stable from the SSP execution onward (that is its definition), so
    #: LOIs from any of these tail executions belong to the SSP profile; the
    #: tail multiplies the LOI yield of kernels much shorter than the
    #: averaging window.  Sized as a fraction of the window-fill count.
    ssp_tail_fraction: float = 0.25
    min_ssp_tail_executions: int = 2
    max_ssp_tail_executions: int = 12
    #: Use the vectorized, incremental stitching engine.  ``False`` selects the
    #: legacy pipeline (pure-Python LOI extraction, full re-collect of every
    #: record each top-up batch), retained as the reference implementation for
    #: equivalence tests and the scaling benchmark.
    vectorized: bool = True
    #: Build profiles columnar (arrays straight from the stitched series, lazy
    #: point materialisation).  ``False`` selects the retained object-based
    #: construction (one frozen ProfilePoint per LOI), pinned bit-identical by
    #: the equivalence tests.
    columnar: bool = True
    #: What :meth:`FinGraVProfiler.profile` returns.  ``"full"`` is the
    #: complete :class:`FinGraVResult` (raw run records included);
    #: ``"slim"`` is its :class:`SlimFinGraVResult` projection -- bit-identical
    #: profiles plus the summary/golden-run metadata, but no raw runs -- which
    #: shrinks worker-IPC and cache payloads for consumers that never
    #: re-stitch the runs.
    result_mode: str = "full"
    #: Which profile sections a slim result retains, declared by the consumer
    #: (the experiment drivers): any subset of ``("ssp", "sse", "run")``, or
    #: ``None`` for all three.  The summary snapshot is captured regardless,
    #: so summary-only consumers can declare ``()``.  When ``"run"`` is
    #: excluded the whole-run profile is never even stitched.  Ignored with
    #: ``result_mode="full"`` (e.g. when ``FINGRAV_RESULT_MODE=full``
    #: overrides a driver's default at job-construction time).
    profile_sections: tuple[str, ...] | None = None

    def with_overrides(self, **kwargs: object) -> "ProfilerConfig":
        return replace(self, **kwargs)


#: The three profile sections a result can carry, in canonical order.
PROFILE_SECTIONS: tuple[str, ...] = ("ssp", "sse", "run")


def normalize_profile_sections(sections: Sequence[str] | None) -> tuple[str, ...]:
    """Validate and canonicalise a profile-section declaration.

    ``None`` means every section; anything else is deduplicated and reordered
    to :data:`PROFILE_SECTIONS` order.  Unknown names raise ``ValueError``.
    """
    if sections is None:
        return PROFILE_SECTIONS
    requested = {str(section) for section in sections}
    unknown = requested - set(PROFILE_SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown profile sections {sorted(unknown)}; pick from {PROFILE_SECTIONS}"
        )
    return tuple(name for name in PROFILE_SECTIONS if name in requested)


@dataclass(frozen=True)
class FinGraVResult:
    """Everything the profiler produced for one kernel."""

    kernel_name: str
    execution_time_s: float
    guidance: GuidanceEntry
    plan: DifferentiationPlan
    calibration: DelayCalibration | None
    runs: tuple[RunRecord, ...]
    binning: BinningResult | None
    ssp_profile: FineGrainProfile
    sse_profile: FineGrainProfile
    #: ``None`` only transiently, inside the profiler, when a slim section
    #: subset excludes ``"run"`` (the result is projected before it escapes);
    #: a full result handed to callers always carries it.
    run_profile: FineGrainProfile | None
    config: ProfilerConfig
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def golden_run_indices(self) -> tuple[int, ...]:
        if self.binning is None:
            return tuple(run.run_index for run in self.runs)
        ordered = [run.run_index for run in self.runs]
        return tuple(ordered[i] for i in self.binning.selected_indices)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def num_golden_runs(self) -> int:
        return len(self.golden_run_indices)

    @property
    def ssp_loi_count(self) -> int:
        return len(self.ssp_profile)

    @property
    def executions_per_run(self) -> int:
        """Kernel executions in each run (1 when no runs were recorded)."""
        return self.runs[0].num_executions if self.runs else 1

    @property
    def is_slim(self) -> bool:
        return False

    def sse_vs_ssp_error(self, component: str = "total") -> float:
        """Relative measurement error of reporting SSE instead of SSP power."""
        if self.sse_profile.is_empty or self.ssp_profile.is_empty:
            raise ValueError("both SSE and SSP profiles are needed for the error")
        return measurement_error(self.sse_profile, self.ssp_profile, component)

    def summary(self) -> dict[str, object]:
        """Compact summary used by reports and the experiment drivers."""
        return _result_summary(self)

    def slim(self, sections: Sequence[str] | None = None) -> "SlimFinGraVResult":
        """Project this result to its slim form (no raw run records).

        ``sections`` declares which profiles to retain (any subset of
        :data:`PROFILE_SECTIONS`; ``None`` keeps all three).  Retained
        profiles are carried over as-is (bit-identical); the summary is
        snapshotted at projection time, so it -- including the SSE-vs-SSP
        error -- stays available for any subset, even ``()``.  Use it to cut
        serialisation cost wherever the consumer never re-stitches the raw
        runs (worker IPC, the sweep's on-disk cache).
        """
        sections = normalize_profile_sections(sections)
        profiles: dict[str, FineGrainProfile] = {}
        for name in sections:
            profile = getattr(self, f"{name}_profile")
            if profile is None:
                raise ValueError(f"cannot retain section {name!r}: it was never built")
            profiles[name] = profile
        return SlimFinGraVResult(
            kernel_name=self.kernel_name,
            execution_time_s=self.execution_time_s,
            guidance=self.guidance,
            plan=self.plan,
            calibration=self.calibration,
            num_runs=self.num_runs,
            golden_run_indices=self.golden_run_indices,
            executions_per_run=self.executions_per_run,
            ssp_loi_count=self.ssp_loi_count,
            sections=sections,
            profiles=profiles,
            summary_data=_result_summary(self),
            config=self.config,
            metadata=dict(self.metadata),
        )


@dataclass(frozen=True)
class SlimFinGraVResult:
    """A :class:`FinGraVResult` without the raw run records.

    Everything a consumer needs *unless* it re-stitches the raw runs: the
    retained profile ``sections`` (the same objects the full result holds --
    bit-identical), the summary snapshot captured at projection time, the
    plan/guidance/calibration, and the run bookkeeping (total run count,
    golden-run indices, executions per run, SSP LOI count) that the full
    result derives from ``runs``/``binning``.  Accessing ``runs`` or
    ``binning`` raises with a pointer at ``result_mode="full"``; accessing a
    profile section that was not declared raises with a pointer at
    ``ProfilerConfig(profile_sections=...)``.
    """

    kernel_name: str
    execution_time_s: float
    guidance: GuidanceEntry
    plan: DifferentiationPlan
    calibration: DelayCalibration | None
    num_runs: int
    golden_run_indices: tuple[int, ...]
    executions_per_run: int
    ssp_loi_count: int
    #: Which profile sections this result retains (canonical order).
    sections: tuple[str, ...]
    #: The retained profiles, keyed by section name.
    profiles: Mapping[str, FineGrainProfile]
    #: Summary snapshot captured at projection time; keeps ``summary()`` and
    #: the total-power SSE-vs-SSP error available for any section subset.
    summary_data: Mapping[str, object]
    config: ProfilerConfig
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_golden_runs(self) -> int:
        return len(self.golden_run_indices)

    @property
    def is_slim(self) -> bool:
        return True

    def _section(self, name: str) -> FineGrainProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise AttributeError(
                f"slim result retains profile sections {self.sections!r}, not "
                f"{name!r}; declare it via ProfilerConfig(profile_sections=...) "
                "or profile with result_mode='full'"
            ) from None

    @property
    def ssp_profile(self) -> FineGrainProfile:
        return self._section("ssp")

    @property
    def sse_profile(self) -> FineGrainProfile:
        return self._section("sse")

    @property
    def run_profile(self) -> FineGrainProfile:
        return self._section("run")

    @property
    def runs(self) -> tuple[RunRecord, ...]:
        raise AttributeError(
            "slim results carry no raw runs; profile with "
            "ProfilerConfig(result_mode='full') to re-stitch run records"
        )

    @property
    def binning(self) -> BinningResult:
        raise AttributeError(
            "slim results carry no binning detail; profile with "
            "ProfilerConfig(result_mode='full') for the full BinningResult"
        )

    def sse_vs_ssp_error(self, component: str = "total") -> float:
        """Relative measurement error of reporting SSE instead of SSP power.

        Computed live when both profiles are retained; otherwise answered
        from the summary snapshot (total power only).  Raises ``ValueError``
        -- never ``AttributeError`` -- when the error is unavailable, so
        consumers that tolerate missing errors keep working on any subset.
        """
        ssp = self.profiles.get("ssp")
        sse = self.profiles.get("sse")
        if ssp is not None and sse is not None:
            if sse.is_empty or ssp.is_empty:
                raise ValueError("both SSE and SSP profiles are needed for the error")
            return measurement_error(sse, ssp, component)
        if component == "total" and "sse_vs_ssp_error" in self.summary_data:
            return float(self.summary_data["sse_vs_ssp_error"])
        raise ValueError(
            f"sections {self.sections!r} retain no SSE/SSP profiles and the "
            f"summary snapshot carries no {component!r} error"
        )

    def summary(self) -> dict[str, object]:
        """Compact summary -- the snapshot captured at projection time."""
        return dict(self.summary_data)

    def slim(self, sections: Sequence[str] | None = None) -> "SlimFinGraVResult":
        """This result, optionally narrowed to fewer sections."""
        if sections is None:
            return self
        sections = normalize_profile_sections(sections)
        missing = [name for name in sections if name not in self.profiles]
        if missing:
            raise ValueError(
                f"cannot narrow to sections {sections!r}: {missing} were already "
                f"dropped (retained: {self.sections!r})"
            )
        return replace(
            self,
            sections=sections,
            profiles={name: self.profiles[name] for name in sections},
        )


def _result_summary(result: "FinGraVResult | SlimFinGraVResult") -> dict[str, object]:
    """The summary dictionary shared by the full and slim result forms."""
    summary: dict[str, object] = {
        "kernel": result.kernel_name,
        "execution_time_s": result.execution_time_s,
        "runs": result.num_runs,
        "golden_runs": result.num_golden_runs,
        "warmup_executions": result.plan.warmup_executions,
        "sse_executions": result.plan.sse_executions,
        "ssp_executions": result.plan.ssp_executions,
        "throttling_detected": result.plan.throttling_detected,
        "ssp_lois": result.ssp_loi_count,
    }
    if not result.ssp_profile.is_empty:
        summary["ssp_mean_total_w"] = result.ssp_profile.mean_power_w("total")
    if not result.sse_profile.is_empty:
        summary["sse_mean_total_w"] = result.sse_profile.mean_power_w("total")
    if not result.ssp_profile.is_empty and not result.sse_profile.is_empty:
        summary["sse_vs_ssp_error"] = result.sse_vs_ssp_error()
    return summary


class FinGraVProfiler:
    """Drives a profiling backend through the FinGraV methodology."""

    def __init__(
        self,
        backend: ProfilingBackend,
        config: ProfilerConfig | None = None,
        guidance: GuidanceTable | None = None,
    ) -> None:
        self._backend = backend
        self._config = config or ProfilerConfig()
        if self._config.result_mode not in ("full", "slim"):
            raise ValueError(
                f"unknown result_mode {self._config.result_mode!r}; "
                "pick 'full' or 'slim'"
            )
        # Fail fast on typos in the section declaration, even though the
        # declaration only takes effect in slim mode.
        normalize_profile_sections(self._config.profile_sections)
        self._guidance = guidance or paper_guidance_table()
        self._rng = np.random.default_rng(self._config.seed)

    @property
    def backend(self) -> ProfilingBackend:
        return self._backend

    @property
    def config(self) -> ProfilerConfig:
        return self._config

    @property
    def guidance_table(self) -> GuidanceTable:
        return self._guidance

    # ------------------------------------------------------------------ #
    # Step 1: kernel timing and guidance lookup.
    # ------------------------------------------------------------------ #
    def time_kernel(self, kernel: object) -> float:
        """Median steady execution time from a short timing probe."""
        durations = self._backend.time_kernel(kernel, self._config.timing_executions)
        if not durations:
            raise ValueError("backend returned no timing samples")
        steady = durations[len(durations) // 2:]
        return float(np.median(steady))

    # ------------------------------------------------------------------ #
    # The full methodology.
    # ------------------------------------------------------------------ #
    def profile(
        self,
        kernel: object,
        runs: int | None = None,
        preceding: Sequence[PrecedingWork] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> "FinGraVResult | SlimFinGraVResult":
        """Collect the fine-grain power profiles of ``kernel``.

        ``preceding`` optionally schedules other kernels inside every run just
        before the kernel of interest (the interleaved-execution studies of
        paper Section V-C3).  With ``config.result_mode == "slim"`` the
        returned result is the slim projection (same profiles, no raw runs).
        """
        config = self._config

        # Step 1: execution time and guidance.
        execution_time = self.time_kernel(kernel)
        guidance = self._guidance.lookup(execution_time)
        planned_runs = runs if runs is not None else (
            config.runs if config.runs is not None else guidance.runs
        )
        margin = (
            config.binning_margin if config.binning_margin is not None
            else guidance.binning_margin
        )

        # Step 2: instrumentation calibration.
        calibration = self._backend.calibrate_read_delay(config.calibration_samples)

        # Steps 3-4: differentiation plan (warm-ups, SSE, SSP executions).
        plan = build_plan(
            self._backend,
            kernel,
            execution_time,
            warmup_tolerance=config.warmup_tolerance,
            refine_with_power_search=(
                config.differentiate and config.refine_ssp_with_power_search
            ),
        )
        if config.differentiate:
            window_fill = self._backend.power_sample_period_s / max(execution_time, 1e-9)
            tail = int(np.ceil(window_fill * config.ssp_tail_fraction))
            tail = min(max(tail, config.min_ssp_tail_executions), config.max_ssp_tail_executions)
            executions_per_run = plan.ssp_executions + tail
        else:
            executions_per_run = plan.sse_executions

        # Step 5: execute the runs with random delays.
        records = self._collect_runs(kernel, planned_runs, executions_per_run, preceding, 0)

        # Step 6: golden-run selection by execution-time binning.  The binner
        # is built once; on the vectorized path it maintains its sorted state
        # across top-up batches (ExecutionTimeBinner.extend), so each re-bin
        # costs O(batch) searches instead of a Python re-scan of every run.
        binning: BinningResult | None = None
        golden_indices: Sequence[int] | None = None
        binner = ExecutionTimeBinner(margin) if config.apply_binning else None
        ssp_durations = [record.ssp_execution.duration_s for record in records]
        if binner is not None:
            if config.vectorized:
                binning = binner.extend(ssp_durations)
            else:
                binning = binner.bin(ssp_durations)
            golden_indices = [records[i].run_index for i in binning.selected_indices]

        # Step 7: sync and LOI extraction (via the stitcher).
        stitcher = ProfileStitcher(
            components=config.components,
            calibration=calibration if config.synchronize else None,
            synchronize=config.synchronize,
            vectorized=config.vectorized,
            columnar=config.columnar,
        )
        series = stitcher.collect(records)

        # Step 8: top up runs until the LOI target is met.  The batch size is
        # scaled to the observed LOI yield per run so that short kernels (which
        # yield an LOI only every few dozen runs) converge in few batches.
        target_lois = guidance.recommended_lois(execution_time)
        # The SSE profile draws from a single execution per run, so it needs a
        # minimum number of LOIs of its own for the SSE/SSP comparison.
        sse_target = min(4, target_lois) if config.differentiate else 0
        extra_budget = config.max_additional_runs
        ssp_start = self._ssp_start_index(plan) if config.differentiate else None

        def ssp_have() -> int:
            if config.vectorized:
                if ssp_start is None:
                    return series.count_last_execution_lois(golden_indices)
                return series.count_lois(
                    min_execution_index=ssp_start, golden_runs=golden_indices
                )
            # Legacy (pre-vectorization) behaviour: materialise the LOI lists.
            if ssp_start is None:
                lois = series.lois_for_last_execution()
            else:
                lois = [
                    loi for loi in series.all_lois() if loi.execution_index >= ssp_start
                ]
            return self._count_golden(lois, golden_indices)

        def shortfall() -> int:
            if config.vectorized:
                sse_have = series.count_lois(
                    execution_index=plan.sse_index, golden_runs=golden_indices
                )
            else:
                sse_have = self._count_golden(
                    series.lois_for_execution(plan.sse_index), golden_indices
                )
            return max(target_lois - ssp_have(), sse_target - sse_have)

        while shortfall() > 0 and extra_budget > 0:
            missing = shortfall()
            have_total = max(ssp_have(), 1)
            observed_yield = max(have_total / max(len(records), 1), 0.01)
            needed = int(np.ceil(missing / observed_yield))
            batch = min(max(needed, 16), extra_budget)
            extra_records = self._collect_runs(
                kernel, batch, executions_per_run, preceding, start_index=len(records)
            )
            records = records + extra_records
            extra_budget -= batch
            if binner is not None and extra_records:
                if config.vectorized:
                    binning = binner.extend(
                        record.ssp_execution.duration_s for record in extra_records
                    )
                else:
                    # Legacy behaviour: rebuild the binner and the duration
                    # list from scratch every batch.
                    binner = ExecutionTimeBinner(margin)
                    ssp_durations = [
                        record.ssp_execution.duration_s for record in records
                    ]
                    binning = binner.bin(ssp_durations)
                golden_indices = [records[i].run_index for i in binning.selected_indices]
            if config.vectorized:
                series = stitcher.extend(series, extra_records)
            else:
                # Legacy behaviour: re-extract the entire record list.
                series = stitcher.collect(records)

        # Step 9: stitch the profiles.  SSP and SSE are always built (the
        # summary snapshot needs their means and the SSE-vs-SSP error); the
        # whole-run profile -- typically the bulk of a payload -- is only
        # stitched when the result actually carries it: full mode, or a slim
        # section declaration that includes "run".
        base_metadata = dict(metadata or {})
        base_metadata.setdefault("preceding", [self._describe_preceding(p) for p in preceding])
        sections = PROFILE_SECTIONS
        if config.result_mode == "slim":
            sections = normalize_profile_sections(config.profile_sections)
        build = tuple(
            name for name in PROFILE_SECTIONS
            if name in ("ssp", "sse") or name in sections
        )
        built = stitcher.section_profiles(
            series,
            build,
            golden_runs=golden_indices,
            sse_index=plan.sse_index,
            min_execution_index=self._ssp_start_index(plan),
            metadata=base_metadata,
        )

        result = FinGraVResult(
            kernel_name=self._backend.kernel_name(kernel),
            execution_time_s=execution_time,
            guidance=guidance,
            plan=plan,
            calibration=calibration,
            runs=tuple(records),
            binning=binning,
            ssp_profile=built["ssp"],
            sse_profile=built["sse"],
            run_profile=built.get("run"),
            config=config,
            metadata=base_metadata,
        )
        if config.result_mode == "slim":
            return result.slim(sections)
        return result

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _collect_runs(
        self,
        kernel: object,
        count: int,
        executions_per_run: int,
        preceding: Sequence[PrecedingWork],
        start_index: int,
    ) -> tuple[RunRecord, ...]:
        if count <= 0:
            raise ValueError("run count must be positive")
        period = self._backend.power_sample_period_s
        max_delay = self._config.max_random_delay_periods * period
        # One batched draw is stream-identical to per-run scalar draws.
        pre_delays = self._rng.uniform(0.0, max_delay, size=count)
        records: list[RunRecord] = []
        for offset in range(count):
            records.append(
                self._backend.run(
                    kernel,
                    executions=executions_per_run,
                    pre_delay_s=float(pre_delays[offset]),
                    run_index=start_index + offset,
                    preceding=preceding,
                )
            )
        return tuple(records)

    def _ssp_start_index(self, plan: DifferentiationPlan) -> int:
        """First execution index whose LOIs belong to the SSP profile."""
        return plan.ssp_index if self._config.differentiate else plan.sse_index

    @staticmethod
    def _count_golden(lois: Sequence[object], golden_indices: Sequence[int] | None) -> int:
        if golden_indices is None:
            return len(lois)
        wanted = set(golden_indices)
        return sum(1 for loi in lois if loi.run_index in wanted)

    def _describe_preceding(self, work: PrecedingWork) -> str:
        kernel, executions = work
        return f"{self._backend.kernel_name(kernel)} x{executions}"


__all__ = [
    "ProfilerConfig",
    "PROFILE_SECTIONS",
    "normalize_profile_sections",
    "FinGraVResult",
    "SlimFinGraVResult",
    "FinGraVProfiler",
]
