"""The FinGraV profiler: the nine-step methodology of paper Section IV-B.

:class:`FinGraVProfiler` drives a :class:`~repro.core.backend.ProfilingBackend`
through the full methodology:

1.  Time the kernel a few times and look up the guidance table (Table I) for
    the recommended #runs, binning margin and LOI target.
2.  Calibrate the GPU-timestamp read delay (the CPU-side instrumentation).
3.  Deduce the warm-up count empirically; SSE needs warm-ups + 1 executions.
4.  Compute the SSP execution count with ``max(ceil(window / exec), SSE)``,
    refining with a binary search when throttling is detected.
5.  Execute the runs, each with a random delay before the executions so the
    power-logger windows land at different times of interest.
6.  Discard all but the golden runs via execution-time binning.
7.  Synchronise CPU and GPU time per run and identify the LOIs/TOIs.
8.  Execute additional runs if fewer LOIs than recommended were obtained.
9.  Stitch the LOIs into the SSE/SSP/run fine-grain profiles.

Baseline behaviours (no sync, no binning, SSE-only, coarse sampler) are
expressed as configuration flags so that the methodology-evaluation figures
compare like for like; see :mod:`repro.core.baselines` for ready-made presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from .backend import PrecedingWork, ProfilingBackend
from .binning import BinningResult
from .differentiation import DifferentiationPlan
from .guidance import GuidanceEntry, GuidanceTable, paper_guidance_table
from .profile import FineGrainProfile, measurement_error
from .records import COMPONENT_KEYS, DelayCalibration, RunRecord


@dataclass(frozen=True)
class ProfilerConfig:
    """Knobs of the FinGraV profiler.

    The defaults implement the full methodology; the baseline profilers in
    :mod:`repro.core.baselines` flip individual switches off to show what each
    ingredient contributes (paper Section V-B).
    """

    #: Override the guidance table's #runs (None = follow Table I).
    runs: int | None = None
    #: Override the guidance table's binning margin (None = follow Table I).
    binning_margin: float | None = None
    #: Apply CPU-GPU time synchronisation when placing power logs.
    synchronize: bool = True
    #: Apply execution-time binning / golden-run selection.
    apply_binning: bool = True
    #: Differentiate SSE and SSP profiles (False = SSE-only, the naive view).
    differentiate: bool = True
    #: Upper bound on the random pre-execution delay, in power-logger periods.
    max_random_delay_periods: float = 2.0
    #: Number of timestamp reads used for delay calibration.
    calibration_samples: int = 32
    #: How many times step 1 times the kernel.
    timing_executions: int = 5
    #: Cap on additional runs collected by step 8.
    max_additional_runs: int = 600
    #: Components to carry through to the stitched profiles.
    components: tuple[str, ...] = COMPONENT_KEYS
    #: Seed of the profiler's own randomness (random delays).
    seed: int = 2024
    #: Tolerance used when deducing warm-ups from execution times.
    warmup_tolerance: float = 0.05
    #: Refine the SSP execution count with the power-stability binary search.
    refine_ssp_with_power_search: bool = True
    #: Extra executions appended after the SSP execution in every run.  Power
    #: is stable from the SSP execution onward (that is its definition), so
    #: LOIs from any of these tail executions belong to the SSP profile; the
    #: tail multiplies the LOI yield of kernels much shorter than the
    #: averaging window.  Sized as a fraction of the window-fill count.
    ssp_tail_fraction: float = 0.25
    min_ssp_tail_executions: int = 2
    max_ssp_tail_executions: int = 12
    #: Use the vectorized, incremental stitching engine.  ``False`` selects the
    #: legacy pipeline (pure-Python LOI extraction, full re-collect of every
    #: record each top-up batch), retained as the reference implementation for
    #: equivalence tests and the scaling benchmark.
    vectorized: bool = True
    #: Build profiles columnar (arrays straight from the stitched series, lazy
    #: point materialisation).  ``False`` selects the retained object-based
    #: construction (one frozen ProfilePoint per LOI), pinned bit-identical by
    #: the equivalence tests.
    columnar: bool = True
    #: What :meth:`FinGraVProfiler.profile` returns.  ``"full"`` is the
    #: complete :class:`FinGraVResult` (raw run records included);
    #: ``"slim"`` is its :class:`SlimFinGraVResult` projection -- bit-identical
    #: profiles plus the summary/golden-run metadata, but no raw runs -- which
    #: shrinks worker-IPC and cache payloads for consumers that never
    #: re-stitch the runs.
    result_mode: str = "full"
    #: Which profile sections a slim result retains, declared by the consumer
    #: (the experiment drivers): any subset of ``("ssp", "sse", "run")``, or
    #: ``None`` for all three.  The summary snapshot is captured regardless,
    #: so summary-only consumers can declare ``()``.  When ``"run"`` is
    #: excluded the whole-run profile is never even stitched.  Ignored with
    #: ``result_mode="full"`` (e.g. when ``FINGRAV_RESULT_MODE=full``
    #: overrides a driver's default at job-construction time).
    profile_sections: tuple[str, ...] | None = None
    #: Stop run collection early once the golden-run SSP/SSE estimates have
    #: converged (per-bin 95 % confidence intervals within
    #: ``convergence_rtol`` of the section mean).  ``False`` reproduces the
    #: paper's fixed-count collection exactly -- the session path is pinned
    #: bit-identical to the pre-session ``profile()``.
    adaptive: bool = False
    #: Relative CI half-width below which a profile section counts as
    #: converged (adaptive mode only).
    convergence_rtol: float = 0.05
    #: Never stop adaptively before this many runs were collected.
    min_runs: int = 12
    #: Runs collected between convergence checkpoints in adaptive mode.
    checkpoint_every: int = 8

    def __post_init__(self) -> None:
        if self.runs is not None and self.runs <= 0:
            raise ValueError(f"runs must be positive, got {self.runs}")
        if self.max_additional_runs < 0:
            raise ValueError(
                f"max_additional_runs must be non-negative, got {self.max_additional_runs}"
            )
        if self.calibration_samples <= 0:
            raise ValueError(
                f"calibration_samples must be positive, got {self.calibration_samples}"
            )
        if self.timing_executions <= 0:
            raise ValueError(
                f"timing_executions must be positive, got {self.timing_executions}"
            )
        if self.convergence_rtol <= 0.0:
            raise ValueError(
                f"convergence_rtol must be positive, got {self.convergence_rtol}"
            )
        if self.min_runs <= 0:
            raise ValueError(f"min_runs must be positive, got {self.min_runs}")
        if self.checkpoint_every <= 0:
            raise ValueError(
                f"checkpoint_every must be positive, got {self.checkpoint_every}"
            )

    def with_overrides(self, **kwargs: object) -> "ProfilerConfig":
        return replace(self, **kwargs)


#: The three profile sections a result can carry, in canonical order.
PROFILE_SECTIONS: tuple[str, ...] = ("ssp", "sse", "run")


def normalize_profile_sections(sections: Sequence[str] | None) -> tuple[str, ...]:
    """Validate and canonicalise a profile-section declaration.

    ``None`` means every section; anything else is deduplicated and reordered
    to :data:`PROFILE_SECTIONS` order.  Unknown names raise ``ValueError``.
    """
    if sections is None:
        return PROFILE_SECTIONS
    requested = {str(section) for section in sections}
    unknown = requested - set(PROFILE_SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown profile sections {sorted(unknown)}; pick from {PROFILE_SECTIONS}"
        )
    return tuple(name for name in PROFILE_SECTIONS if name in requested)


@dataclass(frozen=True)
class FinGraVResult:
    """Everything the profiler produced for one kernel."""

    kernel_name: str
    execution_time_s: float
    guidance: GuidanceEntry
    plan: DifferentiationPlan
    calibration: DelayCalibration | None
    runs: tuple[RunRecord, ...]
    binning: BinningResult | None
    ssp_profile: FineGrainProfile
    sse_profile: FineGrainProfile
    #: ``None`` only transiently, inside the profiler, when a slim section
    #: subset excludes ``"run"`` (the result is projected before it escapes);
    #: a full result handed to callers always carries it.
    run_profile: FineGrainProfile | None
    config: ProfilerConfig
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def golden_run_indices(self) -> tuple[int, ...]:
        if self.binning is None:
            return tuple(run.run_index for run in self.runs)
        ordered = [run.run_index for run in self.runs]
        return tuple(ordered[i] for i in self.binning.selected_indices)

    @property
    def num_runs(self) -> int:
        return len(self.runs)

    @property
    def num_golden_runs(self) -> int:
        return len(self.golden_run_indices)

    @property
    def ssp_loi_count(self) -> int:
        return len(self.ssp_profile)

    @property
    def executions_per_run(self) -> int:
        """Kernel executions in each run (1 when no runs were recorded)."""
        return self.runs[0].num_executions if self.runs else 1

    @property
    def is_slim(self) -> bool:
        return False

    def sse_vs_ssp_error(self, component: str = "total") -> float:
        """Relative measurement error of reporting SSE instead of SSP power."""
        if self.sse_profile.is_empty or self.ssp_profile.is_empty:
            raise ValueError("both SSE and SSP profiles are needed for the error")
        return measurement_error(self.sse_profile, self.ssp_profile, component)

    def summary(self) -> dict[str, object]:
        """Compact summary used by reports and the experiment drivers."""
        return _result_summary(self)

    def slim(self, sections: Sequence[str] | None = None) -> "SlimFinGraVResult":
        """Project this result to its slim form (no raw run records).

        ``sections`` declares which profiles to retain (any subset of
        :data:`PROFILE_SECTIONS`; ``None`` keeps all three).  Retained
        profiles are carried over as-is (bit-identical); the summary is
        snapshotted at projection time, so it -- including the SSE-vs-SSP
        error -- stays available for any subset, even ``()``.  Use it to cut
        serialisation cost wherever the consumer never re-stitches the raw
        runs (worker IPC, the sweep's on-disk cache).
        """
        sections = normalize_profile_sections(sections)
        profiles: dict[str, FineGrainProfile] = {}
        for name in sections:
            profile = getattr(self, f"{name}_profile")
            if profile is None:
                raise ValueError(f"cannot retain section {name!r}: it was never built")
            profiles[name] = profile
        return SlimFinGraVResult(
            kernel_name=self.kernel_name,
            execution_time_s=self.execution_time_s,
            guidance=self.guidance,
            plan=self.plan,
            calibration=self.calibration,
            num_runs=self.num_runs,
            golden_run_indices=self.golden_run_indices,
            executions_per_run=self.executions_per_run,
            ssp_loi_count=self.ssp_loi_count,
            sections=sections,
            profiles=profiles,
            summary_data=_result_summary(self),
            config=self.config,
            metadata=dict(self.metadata),
        )


@dataclass(frozen=True)
class SlimFinGraVResult:
    """A :class:`FinGraVResult` without the raw run records.

    Everything a consumer needs *unless* it re-stitches the raw runs: the
    retained profile ``sections`` (the same objects the full result holds --
    bit-identical), the summary snapshot captured at projection time, the
    plan/guidance/calibration, and the run bookkeeping (total run count,
    golden-run indices, executions per run, SSP LOI count) that the full
    result derives from ``runs``/``binning``.  Accessing ``runs`` or
    ``binning`` raises with a pointer at ``result_mode="full"``; accessing a
    profile section that was not declared raises with a pointer at
    ``ProfilerConfig(profile_sections=...)``.
    """

    kernel_name: str
    execution_time_s: float
    guidance: GuidanceEntry
    plan: DifferentiationPlan
    calibration: DelayCalibration | None
    num_runs: int
    golden_run_indices: tuple[int, ...]
    executions_per_run: int
    ssp_loi_count: int
    #: Which profile sections this result retains (canonical order).
    sections: tuple[str, ...]
    #: The retained profiles, keyed by section name.
    profiles: Mapping[str, FineGrainProfile]
    #: Summary snapshot captured at projection time; keeps ``summary()`` and
    #: the total-power SSE-vs-SSP error available for any section subset.
    summary_data: Mapping[str, object]
    config: ProfilerConfig
    metadata: Mapping[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def num_golden_runs(self) -> int:
        return len(self.golden_run_indices)

    @property
    def is_slim(self) -> bool:
        return True

    def _section(self, name: str) -> FineGrainProfile:
        try:
            return self.profiles[name]
        except KeyError:
            raise AttributeError(
                f"slim result retains profile sections {self.sections!r}, not "
                f"{name!r}; declare it via ProfilerConfig(profile_sections=...) "
                "or profile with result_mode='full'"
            ) from None

    @property
    def ssp_profile(self) -> FineGrainProfile:
        return self._section("ssp")

    @property
    def sse_profile(self) -> FineGrainProfile:
        return self._section("sse")

    @property
    def run_profile(self) -> FineGrainProfile:
        return self._section("run")

    @property
    def runs(self) -> tuple[RunRecord, ...]:
        raise AttributeError(
            "slim results carry no raw runs; profile with "
            "ProfilerConfig(result_mode='full') to re-stitch run records"
        )

    @property
    def binning(self) -> BinningResult:
        raise AttributeError(
            "slim results carry no binning detail; profile with "
            "ProfilerConfig(result_mode='full') for the full BinningResult"
        )

    def sse_vs_ssp_error(self, component: str = "total") -> float:
        """Relative measurement error of reporting SSE instead of SSP power.

        Computed live when both profiles are retained; otherwise answered
        from the summary snapshot (total power only).  Raises ``ValueError``
        -- never ``AttributeError`` -- when the error is unavailable, so
        consumers that tolerate missing errors keep working on any subset.
        """
        ssp = self.profiles.get("ssp")
        sse = self.profiles.get("sse")
        if ssp is not None and sse is not None:
            if sse.is_empty or ssp.is_empty:
                raise ValueError("both SSE and SSP profiles are needed for the error")
            return measurement_error(sse, ssp, component)
        if component == "total" and "sse_vs_ssp_error" in self.summary_data:
            return float(self.summary_data["sse_vs_ssp_error"])
        raise ValueError(
            f"sections {self.sections!r} retain no SSE/SSP profiles and the "
            f"summary snapshot carries no {component!r} error"
        )

    def summary(self) -> dict[str, object]:
        """Compact summary -- the snapshot captured at projection time."""
        return dict(self.summary_data)

    def slim(self, sections: Sequence[str] | None = None) -> "SlimFinGraVResult":
        """This result, optionally narrowed to fewer sections."""
        if sections is None:
            return self
        sections = normalize_profile_sections(sections)
        missing = [name for name in sections if name not in self.profiles]
        if missing:
            raise ValueError(
                f"cannot narrow to sections {sections!r}: {missing} were already "
                f"dropped (retained: {self.sections!r})"
            )
        return replace(
            self,
            sections=sections,
            profiles={name: self.profiles[name] for name in sections},
        )


def _result_summary(result: "FinGraVResult | SlimFinGraVResult") -> dict[str, object]:
    """The summary dictionary shared by the full and slim result forms."""
    summary: dict[str, object] = {
        "kernel": result.kernel_name,
        "execution_time_s": result.execution_time_s,
        "runs": result.num_runs,
        "golden_runs": result.num_golden_runs,
        "warmup_executions": result.plan.warmup_executions,
        "sse_executions": result.plan.sse_executions,
        "ssp_executions": result.plan.ssp_executions,
        "throttling_detected": result.plan.throttling_detected,
        "ssp_lois": result.ssp_loi_count,
    }
    if not result.ssp_profile.is_empty:
        summary["ssp_mean_total_w"] = result.ssp_profile.mean_power_w("total")
    if not result.sse_profile.is_empty:
        summary["sse_mean_total_w"] = result.sse_profile.mean_power_w("total")
    if not result.ssp_profile.is_empty and not result.sse_profile.is_empty:
        summary["sse_vs_ssp_error"] = result.sse_vs_ssp_error()
    collection = result.metadata.get("collection")
    if collection is not None:
        summary["collection"] = dict(collection)
    return summary


class FinGraVProfiler:
    """Drives a profiling backend through the FinGraV methodology."""

    def __init__(
        self,
        backend: ProfilingBackend,
        config: ProfilerConfig | None = None,
        guidance: GuidanceTable | None = None,
    ) -> None:
        self._backend = backend
        self._config = config or ProfilerConfig()
        if self._config.result_mode not in ("full", "slim"):
            raise ValueError(
                f"unknown result_mode {self._config.result_mode!r}; "
                "pick 'full' or 'slim'"
            )
        # Fail fast on typos in the section declaration, even though the
        # declaration only takes effect in slim mode.
        normalize_profile_sections(self._config.profile_sections)
        self._guidance = guidance or paper_guidance_table()
        self._rng = np.random.default_rng(self._config.seed)

    @property
    def backend(self) -> ProfilingBackend:
        return self._backend

    @property
    def config(self) -> ProfilerConfig:
        return self._config

    @property
    def guidance_table(self) -> GuidanceTable:
        return self._guidance

    # ------------------------------------------------------------------ #
    # Step 1: kernel timing and guidance lookup.
    # ------------------------------------------------------------------ #
    def time_kernel(self, kernel: object) -> float:
        """Median steady execution time from a short timing probe."""
        durations = self._backend.time_kernel(kernel, self._config.timing_executions)
        if not durations:
            raise ValueError("backend returned no timing samples")
        steady = durations[len(durations) // 2:]
        return float(np.median(steady))

    # ------------------------------------------------------------------ #
    # The full methodology.
    # ------------------------------------------------------------------ #
    def profile(
        self,
        kernel: object,
        runs: int | None = None,
        preceding: Sequence[PrecedingWork] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> "FinGraVResult | SlimFinGraVResult":
        """Collect the fine-grain power profiles of ``kernel``.

        ``preceding`` optionally schedules other kernels inside every run just
        before the kernel of interest (the interleaved-execution studies of
        paper Section V-C3).  With ``config.result_mode == "slim"`` the
        returned result is the slim projection (same profiles, no raw runs).

        This is a thin driver over :class:`~repro.core.session.ProfileSession`:
        the session is set up (steps 1-4), collected to completion (steps 5-8,
        fixed-count or adaptive per ``config.adaptive``), and its final result
        (step 9) returned.  With ``adaptive=False`` the output is bit-identical
        to the pre-session monolithic implementation.
        """
        session = self.session(kernel, runs=runs, preceding=preceding, metadata=metadata)
        session.run_to_completion()
        return session.result()

    def session(
        self,
        kernel: object,
        runs: int | None = None,
        preceding: Sequence[PrecedingWork] = (),
        metadata: Mapping[str, object] | None = None,
    ) -> "ProfileSession":
        """Open a resumable profiling session for ``kernel``.

        The setup phase (steps 1-4: timing, guidance, calibration and the
        differentiation plan) runs eagerly; run collection is then advanced
        batch by batch via :meth:`~repro.core.session.ProfileSession.step`,
        :meth:`~repro.core.session.ProfileSession.iter_profiles` or
        :meth:`~repro.core.session.ProfileSession.run_to_completion`.
        """
        from .session import ProfileSession

        return ProfileSession(
            self, kernel, runs=runs, preceding=preceding, metadata=metadata
        )

    def iter_profiles(
        self,
        kernel: object,
        runs: int | None = None,
        preceding: Sequence[PrecedingWork] = (),
        metadata: Mapping[str, object] | None = None,
    ):
        """Stream progressively refined profile snapshots for ``kernel``.

        Yields one :class:`~repro.core.session.ProfileSnapshot` per collection
        batch -- each carrying the SSP/SSE profiles stitched from the runs so
        far plus convergence diagnostics -- ending with the final snapshot
        (``snapshot.final`` is True).  Equivalent to iterating
        ``self.session(...).iter_profiles()``.
        """
        return self.session(
            kernel, runs=runs, preceding=preceding, metadata=metadata
        ).iter_profiles()

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _collect_runs(
        self,
        kernel: object,
        count: int,
        executions_per_run: int,
        preceding: Sequence[PrecedingWork],
        start_index: int,
    ) -> tuple[RunRecord, ...]:
        if count <= 0:
            raise ValueError("run count must be positive")
        period = self._backend.power_sample_period_s
        max_delay = self._config.max_random_delay_periods * period
        # One batched draw is stream-identical to per-run scalar draws.
        pre_delays = self._rng.uniform(0.0, max_delay, size=count)
        records: list[RunRecord] = []
        for offset in range(count):
            records.append(
                self._backend.run(
                    kernel,
                    executions=executions_per_run,
                    pre_delay_s=float(pre_delays[offset]),
                    run_index=start_index + offset,
                    preceding=preceding,
                )
            )
        return tuple(records)

    def _ssp_start_index(self, plan: DifferentiationPlan) -> int:
        """First execution index whose LOIs belong to the SSP profile."""
        return plan.ssp_index if self._config.differentiate else plan.sse_index

    @staticmethod
    def _count_golden(lois: Sequence[object], golden_indices: Sequence[int] | None) -> int:
        if golden_indices is None:
            return len(lois)
        wanted = set(golden_indices)
        return sum(1 for loi in lois if loi.run_index in wanted)

    def _describe_preceding(self, work: PrecedingWork) -> str:
        kernel, executions = work
        return f"{self._backend.kernel_name(kernel)} x{executions}"


__all__ = [
    "ProfilerConfig",
    "PROFILE_SECTIONS",
    "normalize_profile_sections",
    "FinGraVResult",
    "SlimFinGraVResult",
    "FinGraVProfiler",
]
