"""Stitching logs of interest from many runs into fine-grain profiles (step 9).

With a 1 ms averaging logger and sub-millisecond kernels, each run contributes
at best a single power log for the execution of interest.  The fine-grain view
only appears when the logs of interest of many runs -- each taken at a
different time of interest thanks to the per-run random delays -- are plotted
together.  This module performs that stitching for the SSP/SSE profiles (TOI
on the x-axis) and for the whole-run profiles used by the methodology figures
(time since the first execution of the run on the x-axis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .profile import FineGrainProfile, ProfileKind, ProfilePoint, profile_from_lois
from .records import COMPONENT_KEYS, DelayCalibration, LogOfInterest, RunRecord, mean_duration
from .timesync import ClockSynchronizer, extract_lois, extract_lois_unsynchronized, synchronizer_for_run


@dataclass(frozen=True)
class StitchedRunSeries:
    """All per-run LOI collections needed to assemble the standard profiles."""

    kernel_name: str
    lois_by_run: Mapping[int, tuple[LogOfInterest, ...]]
    runs: Mapping[int, RunRecord]

    def all_lois(self) -> list[LogOfInterest]:
        result: list[LogOfInterest] = []
        for lois in self.lois_by_run.values():
            result.extend(lois)
        return result

    def lois_for_execution(self, execution_index: int) -> list[LogOfInterest]:
        return [loi for loi in self.all_lois() if loi.execution_index == execution_index]

    def lois_for_last_execution(self) -> list[LogOfInterest]:
        result: list[LogOfInterest] = []
        for run_index, lois in self.lois_by_run.items():
            run = self.runs[run_index]
            last_index = run.last_execution.index
            result.extend(loi for loi in lois if loi.execution_index == last_index)
        return result


class ProfileStitcher:
    """Builds fine-grain profiles from run records."""

    def __init__(
        self,
        components: Sequence[str] = COMPONENT_KEYS,
        calibration: DelayCalibration | None = None,
        synchronize: bool = True,
    ) -> None:
        self._components = tuple(components)
        self._calibration = calibration
        self._synchronize = synchronize

    @property
    def synchronize(self) -> bool:
        return self._synchronize

    # ------------------------------------------------------------------ #
    # LOI extraction across runs.
    # ------------------------------------------------------------------ #
    def collect(self, runs: Sequence[RunRecord]) -> StitchedRunSeries:
        """Extract LOIs for every execution of every run."""
        if not runs:
            raise ValueError("need at least one run to stitch")
        lois_by_run: dict[int, tuple[LogOfInterest, ...]] = {}
        runs_by_index: dict[int, RunRecord] = {}
        for run in runs:
            lois_by_run[run.run_index] = tuple(self._extract(run))
            runs_by_index[run.run_index] = run
        return StitchedRunSeries(
            kernel_name=runs[0].kernel_name,
            lois_by_run=lois_by_run,
            runs=runs_by_index,
        )

    def _extract(self, run: RunRecord) -> list[LogOfInterest]:
        if self._synchronize:
            synchronizer = synchronizer_for_run(run, self._calibration)
            return extract_lois(run, synchronizer)
        logger_start = float(run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s))
        return extract_lois_unsynchronized(run, logger_start)

    # ------------------------------------------------------------------ #
    # Execution-level (SSP/SSE) profiles.
    # ------------------------------------------------------------------ #
    def ssp_profile(
        self,
        series: StitchedRunSeries,
        golden_runs: Sequence[int] | None = None,
        min_execution_index: int | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Profile of the steady-state-power executions across the selected runs.

        By default only the last execution of each run contributes.  When
        ``min_execution_index`` is given, every execution at or past that index
        contributes -- power is stable from the SSP execution onward, so the
        extra (tail) executions legitimately belong to the same profile and
        multiply the LOI yield of very short kernels.
        """
        if min_execution_index is None:
            lois = series.lois_for_last_execution()
            which: int | str = "last"
        else:
            lois = [
                loi for loi in series.all_lois()
                if loi.execution_index >= min_execution_index
            ]
            which = min_execution_index
        lois = self._filtered(lois, golden_runs)
        execution_time = self._execution_time(series, golden_runs, which=which)
        return profile_from_lois(
            series.kernel_name, ProfileKind.SSP, lois, execution_time,
            components=self._components, metadata=metadata,
        )

    def sse_profile(
        self,
        series: StitchedRunSeries,
        sse_index: int,
        golden_runs: Sequence[int] | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Profile of the SSE execution (first post-warm-up) across runs."""
        lois = self._filtered(series.lois_for_execution(sse_index), golden_runs)
        execution_time = self._execution_time(series, golden_runs, which=sse_index)
        return profile_from_lois(
            series.kernel_name, ProfileKind.SSE, lois, execution_time,
            components=self._components, metadata=metadata,
        )

    def execution_profile(
        self,
        series: StitchedRunSeries,
        execution_index: int,
        golden_runs: Sequence[int] | None = None,
    ) -> FineGrainProfile:
        """Profile of an arbitrary execution index (used for outlier studies)."""
        lois = self._filtered(series.lois_for_execution(execution_index), golden_runs)
        execution_time = self._execution_time(series, golden_runs, which=execution_index)
        return profile_from_lois(
            series.kernel_name, ProfileKind.CUSTOM, lois, execution_time,
            components=self._components,
        )

    # ------------------------------------------------------------------ #
    # Whole-run profile (Figures 5, 6 and 8).
    # ------------------------------------------------------------------ #
    def run_profile(
        self,
        series: StitchedRunSeries,
        golden_runs: Sequence[int] | None = None,
        include_non_execution_readings: bool = True,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Power over the whole run, time measured from the first execution start.

        Readings that do not overlap any execution (idle lead-in / the random
        delay) are included by default so the warm-up ramp from idle is
        visible, exactly as in the paper's figures.
        """
        selected = set(golden_runs) if golden_runs is not None else None
        points: list[ProfilePoint] = []
        durations: list[float] = []
        for run_index, run in series.runs.items():
            if selected is not None and run_index not in selected:
                continue
            if not run.executions:
                continue
            origin = run.first_execution.cpu_start_s
            durations.append(run.last_execution.cpu_end_s - origin)
            points.extend(self._run_points(run, origin, include_non_execution_readings))
        execution_time = mean_duration_or_zero(durations)
        return FineGrainProfile(
            kernel_name=series.kernel_name,
            kind=ProfileKind.RUN,
            points=tuple(points),
            execution_time_s=execution_time,
            metadata=dict(metadata or {}),
        )

    def _run_points(
        self, run: RunRecord, origin_cpu_s: float, include_idle: bool
    ) -> list[ProfilePoint]:
        points: list[ProfilePoint] = []
        if self._synchronize:
            synchronizer = synchronizer_for_run(run, self._calibration)
            times = [
                synchronizer.cpu_time_of(reading.gpu_timestamp_ticks) for reading in run.readings
            ]
        else:
            logger_start = float(
                run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s)
            )
            times = [
                logger_start + (i + 1) * run.logger_period_s for i in range(len(run.readings))
            ]
        span_start = run.first_execution.cpu_start_s
        span_end = run.last_execution.cpu_end_s
        for reading, window_end in zip(run.readings, times):
            inside = span_start <= window_end <= span_end
            if not inside and not include_idle:
                continue
            powers = {}
            for component in self._components:
                if reading.has_component(component):
                    powers[component] = reading.component(component)
            execution_index = -1
            for execution in run.executions:
                if execution.contains(window_end):
                    execution_index = execution.index
                    break
            points.append(
                ProfilePoint(
                    time_s=window_end - origin_cpu_s,
                    powers_w=powers,
                    run_index=run.run_index,
                    execution_index=execution_index,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # Helpers.
    # ------------------------------------------------------------------ #
    @staticmethod
    def _filtered(
        lois: Sequence[LogOfInterest], golden_runs: Sequence[int] | None
    ) -> list[LogOfInterest]:
        if golden_runs is None:
            return list(lois)
        wanted = set(golden_runs)
        return [loi for loi in lois if loi.run_index in wanted]

    @staticmethod
    def _execution_time(
        series: StitchedRunSeries, golden_runs: Sequence[int] | None, which: int | str
    ) -> float:
        selected = set(golden_runs) if golden_runs is not None else None
        durations: list[float] = []
        for run_index, run in series.runs.items():
            if selected is not None and run_index not in selected:
                continue
            if not run.executions:
                continue
            if which == "last":
                durations.append(run.last_execution.duration_s)
            else:
                try:
                    durations.append(run.execution(int(which)).duration_s)
                except KeyError:
                    continue
        return mean_duration_or_zero(durations)


def mean_duration_or_zero(durations: Sequence[float]) -> float:
    if not durations:
        return 0.0
    return float(sum(durations) / len(durations))


__all__ = ["StitchedRunSeries", "ProfileStitcher", "mean_duration_or_zero"]
