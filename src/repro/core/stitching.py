"""Stitching logs of interest from many runs into fine-grain profiles (step 9).

With a 1 ms averaging logger and sub-millisecond kernels, each run contributes
at best a single power log for the execution of interest.  The fine-grain view
only appears when the logs of interest of many runs -- each taken at a
different time of interest thanks to the per-run random delays -- are plotted
together.  This module performs that stitching for the SSP/SSE profiles (TOI
on the x-axis) and for the whole-run profiles used by the methodology figures
(time since the first execution of the run on the x-axis).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .profile import (
    FineGrainProfile,
    ProfileColumns,
    ProfileKind,
    ProfilePoint,
    component_column,
    profile_from_lois_reference,
)
from .records import (
    COMPONENT_KEYS,
    DelayCalibration,
    ExecutionTimings,
    LogOfInterest,
    PowerReading,
    RunRecord,
)
from .timesync import (
    extract_lois,
    extract_lois_batch,
    extract_lois_reference,
    extract_lois_unsynchronized,
    extract_lois_unsynchronized_reference,
    match_execution_positions,
    synchronizer_for_run,
)


class StitchedRunSeries:
    """All per-run LOI collections needed to assemble the standard profiles.

    The series grows incrementally: :meth:`ProfileStitcher.extend` adds the
    LOIs of newly collected runs without touching previously extracted ones.
    Flat and per-execution views are maintained as runs are added, and a
    columnar (run-index / execution-index array) view backs the O(1)-ish LOI
    counting the profiler's top-up loop performs after every batch.
    """

    def __init__(
        self,
        kernel_name: str,
        lois_by_run: Mapping[int, tuple[LogOfInterest, ...]] | None = None,
        runs: Mapping[int, RunRecord] | None = None,
    ) -> None:
        self.kernel_name = kernel_name
        self._lois_by_run: dict[int, tuple[LogOfInterest, ...]] = {}
        self._runs: dict[int, RunRecord] = {}
        self._flat: list[LogOfInterest] = []
        self._by_execution: dict[int, list[LogOfInterest]] = {}
        self._last_execution: list[LogOfInterest] = []
        self._reading_match: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Plain-int mirrors of the LOIs' run/execution indices, appended as
        # runs are added so the count arrays rebuild via a C-speed conversion
        # instead of re-reading attributes of every LOI object.
        self._run_index_list: list[int] = []
        self._exec_index_list: list[int] = []
        self._run_index_arr: np.ndarray | None = None
        self._exec_index_arr: np.ndarray | None = None
        # Columnar LOI storage backing the array-native profile builds: TOI
        # per LOI, the reading behind each LOI, and the owning run's last
        # execution index (so "SSP = last execution" masks are one compare).
        self._toi_list: list[float] = []
        self._flat_readings: list[PowerReading] = []
        self._last_exec_list: list[int] = []
        self._toi_arr: np.ndarray | None = None
        self._last_exec_arr: np.ndarray | None = None
        self._power_columns: dict[str, tuple[np.ndarray, np.ndarray | None] | None] = {}
        for run_index, run in dict(runs or {}).items():
            self.add_run(run, (lois_by_run or {}).get(run_index, ()))

    # ------------------------------------------------------------------ #
    # Mapping-style views (kept for API compatibility).
    # ------------------------------------------------------------------ #
    @property
    def lois_by_run(self) -> Mapping[int, tuple[LogOfInterest, ...]]:
        return self._lois_by_run

    @property
    def runs(self) -> Mapping[int, RunRecord]:
        return self._runs

    @property
    def num_lois(self) -> int:
        return len(self._flat)

    # ------------------------------------------------------------------ #
    # Incremental growth.
    # ------------------------------------------------------------------ #
    def add_run(
        self,
        run: RunRecord,
        lois: Iterable[LogOfInterest],
        reading_match: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Record one run's LOIs, updating every cached view incrementally.

        ``reading_match`` optionally carries the (window-end times, matched
        execution positions) arrays produced by the batched extractor, which
        profile builders reuse instead of re-matching every reading.
        """
        if run.run_index in self._runs:
            raise ValueError(f"run {run.run_index} already stitched into this series")
        lois = tuple(lois)
        self._runs[run.run_index] = run
        self._lois_by_run[run.run_index] = lois
        if reading_match is not None:
            self._reading_match[run.run_index] = reading_match
        self._flat.extend(lois)
        last_index = run.last_execution.index if run.executions else None
        for loi in lois:
            self._run_index_list.append(loi.run_index)
            self._exec_index_list.append(loi.execution_index)
            self._toi_list.append(loi.toi_s)
            self._flat_readings.append(loi.reading)
            self._last_exec_list.append(last_index if last_index is not None else -1)
            self._by_execution.setdefault(loi.execution_index, []).append(loi)
            if last_index is not None and loi.execution_index == last_index:
                self._last_execution.append(loi)
        if lois:
            self._run_index_arr = None
            self._exec_index_arr = None
            self._toi_arr = None
            self._last_exec_arr = None
            self._power_columns.clear()

    def reading_match(self, run_index: int) -> tuple[np.ndarray, np.ndarray] | None:
        """Cached (window-end times, execution positions) for one run, if any."""
        return self._reading_match.get(run_index)

    # ------------------------------------------------------------------ #
    # LOI views.
    # ------------------------------------------------------------------ #
    def all_lois(self) -> list[LogOfInterest]:
        return list(self._flat)

    def lois_for_execution(self, execution_index: int) -> list[LogOfInterest]:
        return list(self._by_execution.get(execution_index, ()))

    def lois_for_last_execution(self) -> list[LogOfInterest]:
        return list(self._last_execution)

    def lois_from_execution(self, min_execution_index: int) -> list[LogOfInterest]:
        """All LOIs whose execution index is at or past ``min_execution_index``."""
        return [loi for loi in self._flat if loi.execution_index >= min_execution_index]

    # ------------------------------------------------------------------ #
    # Columnar counting (the profiler's shortfall checks).
    # ------------------------------------------------------------------ #
    def _loi_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._run_index_arr is None or self._exec_index_arr is None:
            self._run_index_arr = np.asarray(self._run_index_list, dtype=np.int64)
            self._exec_index_arr = np.asarray(self._exec_index_list, dtype=np.int64)
        return self._run_index_arr, self._exec_index_arr

    def loi_index_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(run_index, execution_index) arrays over all LOIs, in stitch order."""
        return self._loi_arrays()

    def loi_toi_array(self) -> np.ndarray:
        """Times of interest over all LOIs, in stitch order."""
        if self._toi_arr is None:
            self._toi_arr = np.asarray(self._toi_list, dtype=float)
        return self._toi_arr

    def loi_last_execution_array(self) -> np.ndarray:
        """Per-LOI last-execution index of the LOI's own run, in stitch order."""
        if self._last_exec_arr is None:
            self._last_exec_arr = np.asarray(self._last_exec_list, dtype=np.int64)
        return self._last_exec_arr

    def loi_power_column(
        self, component: str
    ) -> tuple[np.ndarray, np.ndarray | None] | None:
        """(values, presence-mask) of one component across all LOIs.

        The mask is ``None`` when the component is present in every LOI's
        reading; the whole return is ``None`` when it is present in none.
        Columns are built once per component and invalidated when runs are
        added, so repeated profile builds over the same series are array
        slices, not per-LOI attribute walks.
        """
        if component in self._power_columns:
            return self._power_columns[component]
        column = component_column(self._flat_readings, component)
        self._power_columns[component] = column
        return column

    def count_lois(
        self,
        min_execution_index: int | None = None,
        execution_index: int | None = None,
        golden_runs: Iterable[int] | None = None,
    ) -> int:
        """Count LOIs matching the given execution/run filters without
        materialising intermediate lists."""
        run_idx, exec_idx = self._loi_arrays()
        mask = np.ones(run_idx.shape, dtype=bool)
        if min_execution_index is not None:
            mask &= exec_idx >= min_execution_index
        if execution_index is not None:
            mask &= exec_idx == execution_index
        if golden_runs is not None:
            wanted = np.fromiter((int(i) for i in golden_runs), dtype=np.int64)
            mask &= np.isin(run_idx, wanted)
        return int(np.count_nonzero(mask))

    def count_last_execution_lois(self, golden_runs: Iterable[int] | None = None) -> int:
        """Count LOIs of each run's last execution, optionally golden-only."""
        if golden_runs is None:
            return len(self._last_execution)
        wanted = set(golden_runs)
        return sum(1 for loi in self._last_execution if loi.run_index in wanted)


class ProfileStitcher:
    """Builds fine-grain profiles from run records.

    ``columnar=True`` (the default) assembles profiles directly from the
    series' columnar LOI views -- one boolean mask plus array slices per
    profile, no intermediate :class:`ProfilePoint` objects.  ``columnar=False``
    retains the object-based construction; equivalence tests pin the two
    bit-identical.
    """

    def __init__(
        self,
        components: Sequence[str] = COMPONENT_KEYS,
        calibration: DelayCalibration | None = None,
        synchronize: bool = True,
        vectorized: bool = True,
        columnar: bool = True,
    ) -> None:
        self._components = tuple(components)
        self._calibration = calibration
        self._synchronize = synchronize
        self._vectorized = vectorized
        self._columnar = columnar

    @property
    def synchronize(self) -> bool:
        return self._synchronize

    @property
    def vectorized(self) -> bool:
        return self._vectorized

    @property
    def columnar(self) -> bool:
        return self._columnar

    # ------------------------------------------------------------------ #
    # LOI extraction across runs.
    # ------------------------------------------------------------------ #
    def collect(self, runs: Sequence[RunRecord]) -> StitchedRunSeries:
        """Extract LOIs for every execution of every run."""
        if not runs:
            raise ValueError("need at least one run to stitch")
        series = StitchedRunSeries(kernel_name=runs[0].kernel_name)
        self._stitch_into(series, runs)
        return series

    def extend(
        self, series: StitchedRunSeries, new_records: Sequence[RunRecord]
    ) -> StitchedRunSeries:
        """Stitch newly collected runs into an existing series.

        Only the new records are extracted; everything already in the series
        is reused untouched.  This keeps the profiler's step-8 top-up loop
        linear in the total number of runs instead of re-extracting the whole
        record list every batch.
        """
        self._stitch_into(series, new_records)
        return series

    def _stitch_into(self, series: StitchedRunSeries, runs: Sequence[RunRecord]) -> None:
        if self._vectorized:
            batch = extract_lois_batch(
                list(runs),
                calibration=self._calibration if self._synchronize else None,
                synchronize=self._synchronize,
            )
            if batch is not None:
                for run, (lois, match) in zip(runs, batch):
                    series.add_run(run, lois, reading_match=match)
                return
        for run in runs:
            series.add_run(run, self._extract(run))

    def _extract(self, run: RunRecord) -> list[LogOfInterest]:
        if self._synchronize:
            synchronizer = synchronizer_for_run(run, self._calibration)
            if self._vectorized:
                return extract_lois(run, synchronizer)
            return extract_lois_reference(run, synchronizer)
        logger_start = float(run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s))
        if self._vectorized:
            return extract_lois_unsynchronized(run, logger_start)
        return extract_lois_unsynchronized_reference(run, logger_start)

    # ------------------------------------------------------------------ #
    # Execution-level (SSP/SSE) profiles.
    # ------------------------------------------------------------------ #
    def ssp_profile(
        self,
        series: StitchedRunSeries,
        golden_runs: Sequence[int] | None = None,
        min_execution_index: int | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Profile of the steady-state-power executions across the selected runs.

        By default only the last execution of each run contributes.  When
        ``min_execution_index`` is given, every execution at or past that index
        contributes -- power is stable from the SSP execution onward, so the
        extra (tail) executions legitimately belong to the same profile and
        multiply the LOI yield of very short kernels.
        """
        which: int | str = "last" if min_execution_index is None else min_execution_index
        execution_time = self._execution_time(series, golden_runs, which=which)
        if self._columnar:
            run_idx, exec_idx = series.loi_index_arrays()
            if min_execution_index is None:
                mask = exec_idx == series.loi_last_execution_array()
            else:
                mask = exec_idx >= min_execution_index
            return self._profile_from_series(
                series, self._golden_mask(mask, run_idx, golden_runs),
                ProfileKind.SSP, execution_time, metadata,
            )
        if min_execution_index is None:
            lois = series.lois_for_last_execution()
        else:
            lois = series.lois_from_execution(min_execution_index)
        lois = self._filtered(lois, golden_runs)
        return profile_from_lois_reference(
            series.kernel_name, ProfileKind.SSP, lois, execution_time,
            components=self._components, metadata=metadata,
        )

    def sse_profile(
        self,
        series: StitchedRunSeries,
        sse_index: int,
        golden_runs: Sequence[int] | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Profile of the SSE execution (first post-warm-up) across runs."""
        execution_time = self._execution_time(series, golden_runs, which=sse_index)
        if self._columnar:
            run_idx, exec_idx = series.loi_index_arrays()
            mask = self._golden_mask(exec_idx == sse_index, run_idx, golden_runs)
            return self._profile_from_series(
                series, mask, ProfileKind.SSE, execution_time, metadata
            )
        lois = self._filtered(series.lois_for_execution(sse_index), golden_runs)
        return profile_from_lois_reference(
            series.kernel_name, ProfileKind.SSE, lois, execution_time,
            components=self._components, metadata=metadata,
        )

    def execution_profile(
        self,
        series: StitchedRunSeries,
        execution_index: int,
        golden_runs: Sequence[int] | None = None,
    ) -> FineGrainProfile:
        """Profile of an arbitrary execution index (used for outlier studies)."""
        execution_time = self._execution_time(series, golden_runs, which=execution_index)
        if self._columnar:
            run_idx, exec_idx = series.loi_index_arrays()
            mask = self._golden_mask(exec_idx == execution_index, run_idx, golden_runs)
            return self._profile_from_series(
                series, mask, ProfileKind.CUSTOM, execution_time, None
            )
        lois = self._filtered(series.lois_for_execution(execution_index), golden_runs)
        return profile_from_lois_reference(
            series.kernel_name, ProfileKind.CUSTOM, lois, execution_time,
            components=self._components,
        )

    # ------------------------------------------------------------------ #
    # Whole-run profile (Figures 5, 6 and 8).
    # ------------------------------------------------------------------ #
    def run_profile(
        self,
        series: StitchedRunSeries,
        golden_runs: Sequence[int] | None = None,
        include_non_execution_readings: bool = True,
        metadata: Mapping[str, object] | None = None,
    ) -> FineGrainProfile:
        """Power over the whole run, time measured from the first execution start.

        Readings that do not overlap any execution (idle lead-in / the random
        delay) are included by default so the warm-up ramp from idle is
        visible, exactly as in the paper's figures.
        """
        selected = set(golden_runs) if golden_runs is not None else None
        durations: list[float] = []
        if self._columnar:
            chunks: list[ProfileColumns] = []
            for run_index, run in series.runs.items():
                if selected is not None and run_index not in selected:
                    continue
                if not run.executions:
                    continue
                origin = run.first_execution.cpu_start_s
                durations.append(run.last_execution.cpu_end_s - origin)
                chunks.append(
                    self._run_columns(
                        run,
                        origin,
                        include_non_execution_readings,
                        cached_match=series.reading_match(run_index),
                    )
                )
            return FineGrainProfile(
                kernel_name=series.kernel_name,
                kind=ProfileKind.RUN,
                execution_time_s=mean_duration_or_zero(durations),
                metadata=dict(metadata or {}),
                columns=ProfileColumns.concatenate(chunks),
            )
        points: list[ProfilePoint] = []
        for run_index, run in series.runs.items():
            if selected is not None and run_index not in selected:
                continue
            if not run.executions:
                continue
            origin = run.first_execution.cpu_start_s
            durations.append(run.last_execution.cpu_end_s - origin)
            points.extend(
                self._run_points(
                    run,
                    origin,
                    include_non_execution_readings,
                    cached_match=series.reading_match(run_index),
                )
            )
        execution_time = mean_duration_or_zero(durations)
        return FineGrainProfile(
            kernel_name=series.kernel_name,
            kind=ProfileKind.RUN,
            points=tuple(points),
            execution_time_s=execution_time,
            metadata=dict(metadata or {}),
        )

    def section_profiles(
        self,
        series: StitchedRunSeries,
        sections: Sequence[str],
        *,
        golden_runs: Sequence[int] | None = None,
        sse_index: int = 0,
        min_execution_index: int | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> dict[str, FineGrainProfile]:
        """Build only the requested profile sections in one call.

        ``sections`` is any subset of ``("ssp", "sse", "run")``; the profiler
        uses this to skip stitching the whole-run profile entirely when a
        driver-declared subset excludes it (the run profile is the bulk of a
        long kernel's payload and the costliest section to assemble).
        """
        profiles: dict[str, FineGrainProfile] = {}
        for section in sections:
            if section == "ssp":
                profiles[section] = self.ssp_profile(
                    series,
                    golden_runs,
                    min_execution_index=min_execution_index,
                    metadata=metadata,
                )
            elif section == "sse":
                profiles[section] = self.sse_profile(
                    series, sse_index, golden_runs, metadata=metadata
                )
            elif section == "run":
                profiles[section] = self.run_profile(
                    series, golden_runs, metadata=metadata
                )
            else:
                raise ValueError(
                    f"unknown profile section {section!r}; pick from ('ssp', 'sse', 'run')"
                )
        return profiles

    def _run_columns(
        self,
        run: RunRecord,
        origin_cpu_s: float,
        include_idle: bool,
        cached_match: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> ProfileColumns:
        """One run's whole-run profile rows as a column bundle (no points)."""
        reading_columns = run.reading_columns()
        if not reading_columns.uniform_components:
            # Readings disagree on their component sets; per-reading presence
            # needs the scalar path.  Columnise its points.
            return ProfileColumns.from_points(
                self._run_points(run, origin_cpu_s, include_idle, cached_match)
            )
        if cached_match is not None:
            times, positions = cached_match
        else:
            times = self._window_end_times(run)
            positions = match_execution_positions(run, times)
        times = np.asarray(times, dtype=float)
        if include_idle:
            keep = np.arange(times.shape[0])
        else:
            span_start = run.first_execution.cpu_start_s
            span_end = run.last_execution.cpu_end_s
            keep = np.nonzero((times >= span_start) & (times <= span_end))[0]
        available = reading_columns.powers_w
        powers = {
            component: available[component][keep]
            for component in self._components
            if component in available
        }
        if isinstance(run.executions, ExecutionTimings):
            exec_index_by_pos = run.executions.indices
        else:
            exec_index_by_pos = np.fromiter(
                (execution.index for execution in run.executions),
                dtype=np.int64,
                count=len(run.executions),
            )
        kept_positions = np.asarray(positions, dtype=np.int64)[keep]
        execution_index = np.where(
            kept_positions >= 0,
            exec_index_by_pos[np.clip(kept_positions, 0, None)],
            -1,
        )
        return ProfileColumns(
            time_s=times[keep] - origin_cpu_s,
            run_index=np.full(keep.shape[0], run.run_index, dtype=np.int64),
            execution_index=execution_index,
            powers_w=powers,
        )

    def _window_end_times(self, run: RunRecord) -> np.ndarray:
        if self._synchronize:
            synchronizer = synchronizer_for_run(run, self._calibration)
            return synchronizer.cpu_times_of(run.reading_columns().gpu_timestamp_ticks)
        logger_start = float(
            run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s)
        )
        return logger_start + np.arange(1, len(run.readings) + 1) * run.logger_period_s

    def _run_points(
        self,
        run: RunRecord,
        origin_cpu_s: float,
        include_idle: bool,
        cached_match: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> list[ProfilePoint]:
        if cached_match is not None:
            # Window-end times and execution matches were already computed by
            # the batched extractor; reuse them.
            times, positions = cached_match
        elif self._vectorized:
            times = self._window_end_times(run)
            positions = match_execution_positions(run, times)
        else:
            # Legacy (pre-vectorization) behaviour: per-reading time mapping
            # and a linear execution scan per reading, below.
            if self._synchronize:
                synchronizer = synchronizer_for_run(run, self._calibration)
                times = [
                    synchronizer.cpu_time_of(reading.gpu_timestamp_ticks)
                    for reading in run.readings
                ]
            else:
                logger_start = float(
                    run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s)
                )
                times = [
                    logger_start + (i + 1) * run.logger_period_s
                    for i in range(len(run.readings))
                ]
            positions = None
        span_start = run.first_execution.cpu_start_s
        span_end = run.last_execution.cpu_end_s
        # Fast path for the common case where every reading carries exactly
        # the configured components: one dict copy instead of per-component
        # lookups, with values equal to the slow path's.
        wanted_nontotal = None
        if run.readings and "total" in self._components:
            first = run.readings[0].components
            if (len(first) == len(self._components) - 1
                    and all(c == "total" or c in first for c in self._components)):
                wanted_nontotal = set(self._components) - {"total"}
        points: list[ProfilePoint] = []
        for i, reading in enumerate(run.readings):
            window_end = float(times[i])
            inside = span_start <= window_end <= span_end
            if not inside and not include_idle:
                continue
            if wanted_nontotal is not None and reading.components.keys() == wanted_nontotal:
                powers: dict[str, float] = {"total": reading.total_w, **reading.components}
            else:
                powers = {}
                for component in self._components:
                    if reading.has_component(component):
                        powers[component] = reading.component(component)
            if positions is not None:
                position = int(positions[i])
                execution_index = run.executions[position].index if position >= 0 else -1
            else:
                execution_index = -1
                for execution in run.executions:
                    if execution.contains(window_end):
                        execution_index = execution.index
                        break
            points.append(
                ProfilePoint(
                    time_s=window_end - origin_cpu_s,
                    powers_w=powers,
                    run_index=run.run_index,
                    execution_index=execution_index,
                )
            )
        return points

    # ------------------------------------------------------------------ #
    # Helpers.
    # ------------------------------------------------------------------ #
    def _profile_from_series(
        self,
        series: StitchedRunSeries,
        mask: np.ndarray,
        kind: ProfileKind,
        execution_time: float,
        metadata: Mapping[str, object] | None,
    ) -> FineGrainProfile:
        """Slice the series' columnar LOI views into a profile (no points)."""
        keep = np.nonzero(mask)[0]
        run_idx, exec_idx = series.loi_index_arrays()
        powers: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        if keep.size:
            for component in self._components:
                column = series.loi_power_column(component)
                if column is None:
                    continue
                values, presence = column
                powers[component] = values[keep]
                if presence is not None:
                    masks[component] = presence[keep]
        columns = ProfileColumns(
            time_s=series.loi_toi_array()[keep],
            run_index=run_idx[keep],
            execution_index=exec_idx[keep],
            powers_w=powers,
            masks=masks,
        )
        return FineGrainProfile(
            kernel_name=series.kernel_name,
            kind=kind,
            execution_time_s=execution_time,
            metadata=dict(metadata or {}),
            columns=columns,
        )

    @staticmethod
    def _golden_mask(
        mask: np.ndarray, run_idx: np.ndarray, golden_runs: Sequence[int] | None
    ) -> np.ndarray:
        if golden_runs is None:
            return mask
        wanted = np.fromiter((int(i) for i in golden_runs), dtype=np.int64)
        return mask & np.isin(run_idx, wanted)

    @staticmethod
    def _filtered(
        lois: Sequence[LogOfInterest], golden_runs: Sequence[int] | None
    ) -> list[LogOfInterest]:
        if golden_runs is None:
            return list(lois)
        wanted = set(golden_runs)
        return [loi for loi in lois if loi.run_index in wanted]

    @staticmethod
    def _execution_time(
        series: StitchedRunSeries, golden_runs: Sequence[int] | None, which: int | str
    ) -> float:
        selected = set(golden_runs) if golden_runs is not None else None
        durations: list[float] = []
        for run_index, run in series.runs.items():
            if selected is not None and run_index not in selected:
                continue
            if not run.executions:
                continue
            if which == "last":
                durations.append(run.last_execution.duration_s)
            else:
                try:
                    durations.append(run.execution(int(which)).duration_s)
                except KeyError:
                    continue
        return mean_duration_or_zero(durations)


def mean_duration_or_zero(durations: Sequence[float]) -> float:
    if not durations:
        return 0.0
    return float(sum(durations) / len(durations))


__all__ = ["StitchedRunSeries", "ProfileStitcher", "mean_duration_or_zero"]
