"""Baseline profilers used to evaluate the FinGraV methodology (paper V-B).

Each baseline removes one ingredient of the methodology so its contribution is
visible in the methodology-evaluation figure (Fig. 5) and in the ablation
benchmarks:

* :func:`unsynchronized_profiler` -- skips CPU-GPU time synchronisation and
  places power logs by buffer index (the red profile in Fig. 5).
* :func:`no_binning_profiler` -- keeps every run, including outliers
  (the transparent dots in Fig. 5).
* :func:`sse_only_profiler` -- stops at the SSE execution and reports its
  profile as *the* kernel power, i.e. what a typical user measures without
  power-profile differentiation.
* :func:`reduced_runs_profiler` -- follows the methodology but with a much
  smaller run budget (the 50-run dashed trend in Fig. 5).
* :class:`CoarseSamplerEstimator` -- the challenge-C1 baseline: a tens-of-
  milliseconds sampler that can miss sub-millisecond kernels entirely; it
  reports how many samples even landed inside kernel executions.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend import ProfilingBackend
from .profiler import FinGraVProfiler, ProfilerConfig
from .records import RunRecord
from .timesync import synchronizer_for_run


def full_methodology_profiler(
    backend: ProfilingBackend, runs: int | None = None, seed: int = 2024
) -> FinGraVProfiler:
    """The complete FinGraV methodology (reference configuration)."""
    return FinGraVProfiler(backend, ProfilerConfig(runs=runs, seed=seed))


def unsynchronized_profiler(
    backend: ProfilingBackend, runs: int | None = None, seed: int = 2024
) -> FinGraVProfiler:
    """FinGraV minus CPU-GPU time synchronisation (paper Fig. 5, red)."""
    return FinGraVProfiler(backend, ProfilerConfig(runs=runs, seed=seed, synchronize=False))


def no_binning_profiler(
    backend: ProfilingBackend, runs: int | None = None, seed: int = 2024
) -> FinGraVProfiler:
    """FinGraV minus execution-time binning (keeps outlier runs)."""
    return FinGraVProfiler(backend, ProfilerConfig(runs=runs, seed=seed, apply_binning=False))


def sse_only_profiler(
    backend: ProfilingBackend, runs: int | None = None, seed: int = 2024
) -> FinGraVProfiler:
    """No power-profile differentiation: every run stops at the SSE execution."""
    return FinGraVProfiler(
        backend,
        ProfilerConfig(
            runs=runs, seed=seed, differentiate=False, refine_ssp_with_power_search=False
        ),
    )


def reduced_runs_profiler(
    backend: ProfilingBackend, runs: int = 50, seed: int = 2024
) -> FinGraVProfiler:
    """The methodology on a small run budget (Fig. 5 resiliency study)."""
    return FinGraVProfiler(
        backend, ProfilerConfig(runs=runs, seed=seed, max_additional_runs=0)
    )


@dataclass(frozen=True)
class CoverageReport:
    """How well a sampler's readings covered the kernel executions of a run set."""

    total_readings: int
    readings_in_executions: int
    executions: int
    executions_with_readings: int

    @property
    def reading_hit_rate(self) -> float:
        return self.readings_in_executions / self.total_readings if self.total_readings else 0.0

    @property
    def execution_coverage(self) -> float:
        return self.executions_with_readings / self.executions if self.executions else 0.0


class CoarseSamplerEstimator:
    """Quantifies how much of a kernel a coarse (amd-smi-like) sampler sees.

    The paper's challenge C1: with sampling periods of tens of milliseconds
    and sub-millisecond kernels, most samples miss the kernel execution
    entirely.  The estimator synchronises each run (sync is not the problem
    here) and counts how many readings landed inside any execution and how
    many executions received at least one reading.
    """

    def coverage(self, runs: list[RunRecord]) -> CoverageReport:
        if not runs:
            raise ValueError("need at least one run")
        total_readings = 0
        readings_in_executions = 0
        executions = 0
        executions_with_readings = 0
        for run in runs:
            synchronizer = synchronizer_for_run(run)
            executions += len(run.executions)
            hit_indices: set[int] = set()
            for reading in run.readings:
                total_readings += 1
                window_end = synchronizer.cpu_time_of(reading.gpu_timestamp_ticks)
                for execution in run.executions:
                    if execution.contains(window_end):
                        readings_in_executions += 1
                        hit_indices.add(execution.index)
                        break
            executions_with_readings += len(hit_indices)
        return CoverageReport(
            total_readings=total_readings,
            readings_in_executions=readings_in_executions,
            executions=executions,
            executions_with_readings=executions_with_readings,
        )


__all__ = [
    "full_methodology_profiler",
    "unsynchronized_profiler",
    "no_binning_profiler",
    "sse_only_profiler",
    "reduced_runs_profiler",
    "CoverageReport",
    "CoarseSamplerEstimator",
]
