"""Textual reports of FinGraV results.

The experiments and benchmark harnesses print the same rows/series the paper
reports; this module holds the shared formatting helpers: fixed-width tables,
profile summaries, and guidance-table rendering.  Output is deliberately plain
text so it reads the same in pytest output, CI logs and the examples.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .guidance import GuidanceTable
from .profile import FineGrainProfile
from .profiler import FinGraVResult


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""
    if not headers:
        raise ValueError("a table needs headers")
    rendered_rows: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        rendered: list[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_duration(value_s: float) -> str:
    """Human-friendly duration (us / ms / s)."""
    if value_s < 0:
        raise ValueError("durations cannot be negative")
    if value_s < 1e-3:
        return f"{value_s * 1e6:.1f}us"
    if value_s < 1.0:
        return f"{value_s * 1e3:.2f}ms"
    return f"{value_s:.3f}s"


def profile_summary_row(profile: FineGrainProfile) -> dict[str, object]:
    """One-line summary of a profile (used in comparative tables)."""
    row: dict[str, object] = {
        "kernel": profile.kernel_name,
        "kind": profile.kind.value,
        "points": len(profile),
        "execution_time": format_duration(profile.execution_time_s)
        if profile.execution_time_s
        else "n/a",
    }
    for component in profile.components:
        row[f"{component}_w"] = round(profile.mean_power_w(component), 1)
    return row


def guidance_report(table: GuidanceTable) -> str:
    """Render Table I."""
    rows = []
    for entry in table.entries:
        rows.append(
            [
                entry.describe().split(":")[0],
                entry.runs,
                f"1/{format_duration(entry.loi_resolution_s)}",
                f"{entry.binning_margin * 100:.0f}%",
            ]
        )
    return format_table(["Exec range", "# Runs", "# LOI", "Binning margin"], rows)


def result_report(result: FinGraVResult) -> str:
    """Multi-line report of a single profiling result."""
    lines = [f"FinGraV profile of {result.kernel_name}"]
    lines.append(f"  execution time      : {format_duration(result.execution_time_s)}")
    lines.append(f"  guidance            : {result.guidance.describe()}")
    lines.append(
        "  plan                : "
        f"{result.plan.warmup_executions} warm-ups, SSE at execution "
        f"{result.plan.sse_index + 1}, SSP at execution {result.plan.ssp_executions}"
        + (" (throttling detected)" if result.plan.throttling_detected else "")
    )
    lines.append(
        f"  runs                : {result.num_runs} collected, "
        f"{result.num_golden_runs} golden, {result.ssp_loi_count} SSP LOIs"
    )
    if not result.ssp_profile.is_empty:
        lines.append(
            "  SSP power (total)   : "
            f"{result.ssp_profile.mean_power_w('total'):.1f} W mean, "
            f"{result.ssp_profile.max_power_w('total'):.1f} W max"
        )
    if not result.sse_profile.is_empty and not result.ssp_profile.is_empty:
        lines.append(
            f"  SSE vs SSP error    : {result.sse_vs_ssp_error() * 100:.1f}%"
        )
    return "\n".join(lines)


def comparative_report(
    summaries: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render a list of per-kernel summary mappings as a table."""
    if not summaries:
        raise ValueError("nothing to report")
    if columns is None:
        columns = list(summaries[0].keys())
    rows = [[summary.get(column, "") for column in columns] for summary in summaries]
    return format_table(list(columns), rows)


__all__ = [
    "format_table",
    "format_duration",
    "profile_summary_row",
    "guidance_report",
    "result_report",
    "comparative_report",
]
