"""FinGraV profiling guidance (paper Table I).

The paper distils its empirical experience into a small lookup table: given a
kernel's execution time, how many runs to execute, how many logs of interest
(LOIs) to aim for, and what execution-time binning margin to allow.  This
module encodes that table and the lookup, and also provides the machinery the
Table-I benchmark uses to *re-derive* the guidance empirically (LOI yield per
run and profile smoothness as a function of #runs and margin).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class GuidanceEntry:
    """One row of the guidance table.

    ``loi_per_s`` expresses the paper's "1/5us" and "1/10us" notation: the
    recommended number of LOIs per second of kernel execution time, i.e. the
    target time resolution of the stitched profile.
    """

    min_execution_s: float
    max_execution_s: float
    runs: int
    loi_per_s: float
    binning_margin: float

    def covers(self, execution_s: float) -> bool:
        return self.min_execution_s <= execution_s < self.max_execution_s

    def recommended_lois(self, execution_s: float) -> int:
        """Number of LOIs to collect for a kernel of the given execution time.

        At least four LOIs are always recommended so that even kernels much
        shorter than the LOI resolution get a statistically usable profile.
        """
        return max(int(math.ceil(execution_s * self.loi_per_s)), 4)

    @property
    def loi_resolution_s(self) -> float:
        """Target spacing between LOIs along the kernel execution (seconds)."""
        return 1.0 / self.loi_per_s

    def describe(self) -> str:
        lo = _format_duration(self.min_execution_s)
        hi = _format_duration(self.max_execution_s)
        res = _format_duration(self.loi_resolution_s)
        return (
            f"{lo}-{hi}: {self.runs} runs, 1 LOI per {res}, "
            f"{self.binning_margin * 100:.0f}% binning margin"
        )


def _format_duration(value_s: float) -> str:
    if math.isinf(value_s):
        return "inf"
    if value_s >= 1e-3:
        return f"{value_s * 1e3:g}ms"
    return f"{value_s * 1e6:g}us"


#: Paper Table I.  Execution-time ranges are half-open ``[min, max)``.
PAPER_GUIDANCE: tuple[GuidanceEntry, ...] = (
    GuidanceEntry(min_execution_s=25e-6, max_execution_s=50e-6,
                  runs=400, loi_per_s=1.0 / 5e-6, binning_margin=0.05),
    GuidanceEntry(min_execution_s=50e-6, max_execution_s=200e-6,
                  runs=200, loi_per_s=1.0 / 10e-6, binning_margin=0.05),
    GuidanceEntry(min_execution_s=200e-6, max_execution_s=1e-3,
                  runs=200, loi_per_s=1.0 / 10e-6, binning_margin=0.02),
    GuidanceEntry(min_execution_s=1e-3, max_execution_s=math.inf,
                  runs=200, loi_per_s=1.0 / 10e-6, binning_margin=0.02),
)


class GuidanceTable:
    """Lookup over a set of :class:`GuidanceEntry` rows (paper Table I)."""

    def __init__(self, entries: Sequence[GuidanceEntry] = PAPER_GUIDANCE) -> None:
        if not entries:
            raise ValueError("guidance table cannot be empty")
        self._entries = tuple(sorted(entries, key=lambda entry: entry.min_execution_s))
        self._validate()

    def _validate(self) -> None:
        for earlier, later in zip(self._entries, self._entries[1:]):
            if earlier.max_execution_s > later.min_execution_s + 1e-12:
                raise ValueError("guidance entries must not overlap")

    @property
    def entries(self) -> tuple[GuidanceEntry, ...]:
        return self._entries

    @property
    def min_supported_execution_s(self) -> float:
        return self._entries[0].min_execution_s

    def lookup(self, execution_s: float) -> GuidanceEntry:
        """Return the guidance row for a kernel execution time.

        Kernels faster than the smallest supported range fall back to the
        first row (the paper's table starts at 25 us because that is the
        shortest GEMM it measures; shorter kernels need at least as many runs).
        """
        if execution_s <= 0:
            raise ValueError("execution time must be positive")
        if execution_s < self.min_supported_execution_s:
            return self._entries[0]
        for entry in self._entries:
            if entry.covers(execution_s):
                return entry
        return self._entries[-1]

    def rows(self) -> list[dict[str, object]]:
        """Table I as a list of dictionaries (used by reports and benchmarks)."""
        rows = []
        for entry in self._entries:
            rows.append(
                {
                    "range": f"{_format_duration(entry.min_execution_s)}"
                             f"-{_format_duration(entry.max_execution_s)}",
                    "runs": entry.runs,
                    "loi_resolution": _format_duration(entry.loi_resolution_s),
                    "binning_margin": entry.binning_margin,
                }
            )
        return rows


def paper_guidance_table() -> GuidanceTable:
    """The guidance table exactly as printed in the paper."""
    return GuidanceTable(PAPER_GUIDANCE)


__all__ = [
    "GuidanceEntry",
    "GuidanceTable",
    "PAPER_GUIDANCE",
    "paper_guidance_table",
]
