"""Power-profile differentiation: warm-ups, SSE and SSP (paper S4).

The trailing-window averaging of the power logger means that the measured
power of a kernel keeps changing over the first executions of a run even once
its execution time has stabilised.  FinGraV therefore distinguishes:

* **warm-up executions** -- executions from GPU-idle state until the execution
  time stops improving (typically three);
* the **SSE (steady-state execution) profile** -- the first execution past the
  warm-ups.  This is what a naive measurement reports as "the" kernel power;
* the **SSP (steady-state power) profile** -- the execution past which the
  measured power stops changing, because the averaging window is finally full
  of this kernel's activity (and, for power-limited kernels, because the DVFS
  controller has settled after its throttle response).

This module determines how many executions a run needs for each profile:
the paper's ``max(ceil(window / execution_time), executions_for_SSE)`` rule,
plus the binary search the paper prescribes when frequency throttling during
the warm-ups means power has not yet stabilised at that count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .backend import ProfilingBackend
from .records import RunRecord
from .timesync import synchronizer_for_run


@dataclass(frozen=True)
class WarmupAnalysis:
    """Result of the empirical warm-up count search (methodology step 3)."""

    warmup_executions: int
    durations_s: tuple[float, ...]
    tolerance: float

    @property
    def sse_index(self) -> int:
        """Zero-based index of the SSE execution within a run."""
        return self.warmup_executions

    @property
    def sse_executions(self) -> int:
        """Executions per run needed to reach the SSE execution."""
        return self.warmup_executions + 1


@dataclass(frozen=True)
class DifferentiationPlan:
    """How many executions a run needs for each profile of a kernel."""

    kernel_name: str
    execution_time_s: float
    warmup_executions: int
    sse_executions: int
    ssp_executions: int
    throttling_detected: bool = False

    def __post_init__(self) -> None:
        if self.execution_time_s <= 0:
            raise ValueError("execution time must be positive")
        if self.warmup_executions < 0:
            raise ValueError("warm-up count must be non-negative")
        if self.sse_executions <= self.warmup_executions:
            raise ValueError("the SSE execution comes after the warm-ups")
        if self.ssp_executions < self.sse_executions:
            raise ValueError("SSP needs at least as many executions as SSE")

    @property
    def sse_index(self) -> int:
        return self.warmup_executions

    @property
    def ssp_index(self) -> int:
        return self.ssp_executions - 1


def analyze_warmups(durations_s: Sequence[float], tolerance: float = 0.05) -> WarmupAnalysis:
    """Deduce the warm-up count from the execution times of a probe run.

    The warm-up count is the index of the first execution whose duration is
    within ``tolerance`` of the best duration seen from that point on -- i.e.
    the first execution past which execution time no longer lowers
    substantially (paper Section IV-A).
    """
    if not durations_s:
        raise ValueError("need at least one execution duration")
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    values = np.asarray(durations_s, dtype=float)
    if np.any(values <= 0):
        raise ValueError("durations must be positive")
    # Steady execution time estimated robustly from the tail of the probe so
    # that host-side timing jitter on short kernels does not inflate the
    # warm-up count: the median of the second half of the probe.
    tail = values[len(values) // 2:]
    steady = float(np.median(tail)) if len(tail) else float(values[-1])
    warmups = len(values) - 1
    for index, duration in enumerate(values):
        if duration <= steady * (1.0 + tolerance):
            warmups = index
            break
    return WarmupAnalysis(
        warmup_executions=warmups,
        durations_s=tuple(float(v) for v in values),
        tolerance=tolerance,
    )


def ssp_execution_count(
    averaging_window_s: float, execution_time_s: float, sse_executions: int
) -> int:
    """The paper's step-4 rule: ``max(ceil(window / exec_time), executions_for_SSE)``."""
    if averaging_window_s < 0:
        raise ValueError("averaging window cannot be negative")
    if execution_time_s <= 0:
        raise ValueError("execution time must be positive")
    if sse_executions <= 0:
        raise ValueError("SSE execution count must be positive")
    fill_count = math.ceil(averaging_window_s / execution_time_s) if averaging_window_s > 0 else 1
    return max(fill_count, sse_executions)


def _execution_span_readings(run: RunRecord) -> list[tuple[float, float]]:
    """(window-end CPU time, total watts) for readings inside the execution span."""
    if not run.executions:
        return []
    synchronizer = synchronizer_for_run(run)
    span_start = run.first_execution.cpu_start_s
    span_end = run.last_execution.cpu_end_s
    in_span: list[tuple[float, float]] = []
    for reading in run.readings:
        window_end = synchronizer.cpu_time_of(reading.gpu_timestamp_ticks)
        if span_start <= window_end <= span_end:
            in_span.append((window_end, reading.total_w))
    return in_span


def detect_throttling(run: RunRecord, drop_fraction: float = 0.10) -> bool:
    """Detect the rise-followed-by-fall power signature of a throttled warm-up.

    The paper (step 4) notes that when power (frequency) throttling occurs
    during warm-up runs -- power rises and then falls -- a binary search is
    needed to find the SSP execution count.  We detect that signature directly
    on the power readings that fall inside the run's execution span: a reading
    in the first half of the span exceeds some *later* reading by more than
    ``drop_fraction``.  A profile that merely rises monotonically toward its
    steady state (the averaging-window fill of short kernels) never matches,
    because no later reading is substantially below an earlier one.
    """
    in_span = _execution_span_readings(run)
    if len(in_span) < 3:
        return False
    totals = np.asarray([power for _, power in in_span])
    first_half = totals[: max(len(totals) // 2, 1)]
    for index, early in enumerate(first_half):
        if index + 1 >= len(totals):
            break
        later_min = float(np.min(totals[index + 1:]))
        if early > later_min * (1.0 + drop_fraction):
            return True
    return False


def _tail_power(run: RunRecord, tail_fraction: float = 0.25) -> float:
    """Mean total power over the trailing part of the run's execution span."""
    in_span = _execution_span_readings(run)
    if not in_span:
        return 0.0
    totals = [power for _, power in in_span]
    count = max(int(len(totals) * tail_fraction), 1)
    return float(np.mean(totals[-count:]))


@dataclass(frozen=True)
class StabilitySearchResult:
    """Outcome of the binary search for the power-stable execution count."""

    ssp_executions: int
    probes: tuple[tuple[int, float], ...]
    converged: bool


def search_power_stable_executions(
    backend: ProfilingBackend,
    kernel: object,
    start_executions: int,
    tolerance: float = 0.03,
    max_executions: int = 96,
    pre_delay_s: float = 0.0,
) -> StabilitySearchResult:
    """Binary search (paper step 4) for the execution count where power stabilises.

    Starting from ``start_executions``, the count is doubled until the
    tail-of-run power stops increasing by more than ``tolerance``; a binary
    search between the last two probes then finds the smallest stable count.
    Each probe costs one instrumented run.
    """
    if start_executions <= 0:
        raise ValueError("start_executions must be positive")
    probes: list[tuple[int, float]] = []

    def probe(count: int) -> float:
        record = backend.run(kernel, executions=count, pre_delay_s=pre_delay_s, run_index=-1)
        power = _tail_power(record)
        probes.append((count, power))
        return power

    low = start_executions
    low_power = probe(low)
    high = low
    high_power = low_power
    converged = False
    while high < max_executions:
        candidate = min(high * 2, max_executions)
        candidate_power = probe(candidate)
        if candidate_power <= high_power * (1.0 + tolerance):
            low, low_power = high, high_power
            high, high_power = candidate, candidate_power
            converged = True
            break
        low, low_power = candidate, candidate_power
        high, high_power = candidate, candidate_power
    if not converged:
        return StabilitySearchResult(
            ssp_executions=high, probes=tuple(probes), converged=False
        )

    # Binary search in (low, high] for the smallest count whose power is within
    # tolerance of the stable (high) power.
    while high - low > 1:
        mid = (low + high) // 2
        mid_power = probe(mid)
        if mid_power >= high_power * (1.0 - tolerance):
            high, high_power = mid, mid_power
        else:
            low, low_power = mid, mid_power
    return StabilitySearchResult(ssp_executions=high, probes=tuple(probes), converged=True)


def build_plan(
    backend: ProfilingBackend,
    kernel: object,
    execution_time_s: float,
    warmup_probe_executions: int = 8,
    warmup_tolerance: float = 0.05,
    stability_tolerance: float = 0.03,
    refine_with_power_search: bool = True,
) -> DifferentiationPlan:
    """Build the differentiation plan for a kernel (methodology steps 3-4)."""
    probe_durations = backend.time_kernel(kernel, executions=warmup_probe_executions)
    warmups = analyze_warmups(probe_durations, tolerance=warmup_tolerance)
    sse_executions = warmups.sse_executions
    ssp_executions = ssp_execution_count(
        backend.power_sample_period_s, execution_time_s, sse_executions
    )
    throttling = False
    if refine_with_power_search:
        probe_run = backend.run(
            kernel, executions=ssp_executions, pre_delay_s=0.0, run_index=-1
        )
        throttling = detect_throttling(probe_run)
        if throttling:
            search = search_power_stable_executions(
                backend,
                kernel,
                start_executions=ssp_executions,
                tolerance=stability_tolerance,
            )
            ssp_executions = max(search.ssp_executions, ssp_executions)
    return DifferentiationPlan(
        kernel_name=backend.kernel_name(kernel),
        execution_time_s=execution_time_s,
        warmup_executions=warmups.warmup_executions,
        sse_executions=sse_executions,
        ssp_executions=ssp_executions,
        throttling_detected=throttling,
    )


__all__ = [
    "WarmupAnalysis",
    "DifferentiationPlan",
    "analyze_warmups",
    "ssp_execution_count",
    "detect_throttling",
    "search_power_stable_executions",
    "StabilitySearchResult",
    "build_plan",
]
