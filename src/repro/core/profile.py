"""Fine-grain power profiles: the output of the FinGraV methodology.

A profile is a cloud of (time, power) points stitched together from the logs
of interest of many runs (paper step 9).  Three kinds are produced:

* ``ssp`` -- power at different times of interest within the steady-state-power
  execution.  This is the time-series view of average power the paper treats
  as *the* power profile of a kernel.
* ``sse`` -- same, for the steady-state-execution (first post-warm-up)
  execution; the naive profile a typical user would report.
* ``run`` -- power over the whole run (warm-ups through SSP), used for the
  methodology-evaluation figures (Figs 5, 6, 8).

Profiles carry per-component series (total / xcd / iod / hbm), support
polynomial smoothing (the paper's degree-4 regression for low-run-count
profiles), and expose the power / energy summary statistics the analysis and
insight layers consume.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from .records import COMPONENT_KEYS, LogOfInterest


class ProfileKind(str, enum.Enum):
    """Which execution a profile describes."""

    SSP = "ssp"
    SSE = "sse"
    RUN = "run"
    CUSTOM = "custom"


@dataclass(frozen=True)
class ProfilePoint:
    """One stitched point of a fine-grain power profile."""

    time_s: float
    powers_w: Mapping[str, float]
    run_index: int = -1
    execution_index: int = -1

    def power(self, component: str = "total") -> float:
        try:
            return float(self.powers_w[component])
        except KeyError as exc:
            raise KeyError(f"profile point has no component {component!r}") from exc

    def has_component(self, component: str) -> bool:
        return component in self.powers_w


def point_from_loi(loi: LogOfInterest, components: Sequence[str] = COMPONENT_KEYS) -> ProfilePoint:
    """Convert a log of interest into a profile point keyed by TOI."""
    powers = {}
    for component in components:
        if loi.reading.has_component(component):
            powers[component] = loi.reading.component(component)
    return ProfilePoint(
        time_s=loi.toi_s,
        powers_w=powers,
        run_index=loi.run_index,
        execution_index=loi.execution_index,
    )


@dataclass(frozen=True)
class FineGrainProfile:
    """A stitched fine-grain power profile of one kernel."""

    kernel_name: str
    kind: ProfileKind
    points: tuple[ProfilePoint, ...]
    execution_time_s: float
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(sorted(self.points, key=lambda p: p.time_s)))

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.points)

    @property
    def is_empty(self) -> bool:
        return not self.points

    @property
    def components(self) -> tuple[str, ...]:
        if not self.points:
            return ()
        present = [c for c in COMPONENT_KEYS if self.points[0].has_component(c)]
        extra = [c for c in self.points[0].powers_w if c not in present]
        return tuple(present + sorted(extra))

    def times(self) -> np.ndarray:
        """Point times as a float array; built once and cached (read-only)."""
        cached = self.__dict__.get("_times_cache")
        if cached is None:
            cached = np.asarray([point.time_s for point in self.points], dtype=float)
            cached.setflags(write=False)
            object.__setattr__(self, "_times_cache", cached)
        return cached

    def series(self, component: str = "total") -> np.ndarray:
        """Per-component power array; built once per component and cached."""
        cache: dict[str, np.ndarray] | None = self.__dict__.get("_series_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_series_cache", cache)
        cached = cache.get(component)
        if cached is None:
            cached = np.asarray([point.power(component) for point in self.points], dtype=float)
            cached.setflags(write=False)
            cache[component] = cached
        return cached

    def run_indices(self) -> list[int]:
        return [point.run_index for point in self.points]

    # ------------------------------------------------------------------ #
    # Statistics.
    # ------------------------------------------------------------------ #
    def mean_power_w(self, component: str = "total") -> float:
        if self.is_empty:
            raise ValueError("profile has no points")
        return float(np.mean(self.series(component)))

    def median_power_w(self, component: str = "total") -> float:
        if self.is_empty:
            raise ValueError("profile has no points")
        return float(np.median(self.series(component)))

    def max_power_w(self, component: str = "total") -> float:
        if self.is_empty:
            raise ValueError("profile has no points")
        return float(np.max(self.series(component)))

    def min_power_w(self, component: str = "total") -> float:
        if self.is_empty:
            raise ValueError("profile has no points")
        return float(np.min(self.series(component)))

    def power_std_w(self, component: str = "total") -> float:
        if len(self.points) < 2:
            return 0.0
        return float(np.std(self.series(component), ddof=1))

    def energy_j(self, component: str = "total") -> float:
        """Energy of one kernel execution implied by the profile.

        Energy is power integrated over time (paper Section I); for a profile
        of a single execution this is the mean profile power multiplied by the
        kernel execution time.
        """
        return self.mean_power_w(component) * self.execution_time_s

    def component_summary(self) -> dict[str, float]:
        """Mean power per component (the quantity plotted in Figs 7 and 10)."""
        return {component: self.mean_power_w(component) for component in self.components}

    # ------------------------------------------------------------------ #
    # Smoothing / resampling.
    # ------------------------------------------------------------------ #
    def smoothed(
        self, component: str = "total", degree: int = 4, num_points: int = 100
    ) -> tuple[np.ndarray, np.ndarray]:
        """Polynomial-regression trend of the profile (paper Figure 5, 50-run fit).

        Returns ``(times, fitted_power)`` with ``num_points`` evenly spaced
        times across the profile's span.  Falls back to a lower degree when
        there are too few points to support the requested one.
        """
        if self.is_empty:
            raise ValueError("cannot smooth an empty profile")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        times = self.times()
        powers = self.series(component)
        effective_degree = min(degree, max(len(times) - 1, 0))
        grid = np.linspace(float(times.min()), float(times.max()), num_points)
        if effective_degree == 0 or float(times.max()) == float(times.min()):
            return grid, np.full(num_points, float(np.mean(powers)))
        coefficients = np.polyfit(times, powers, deg=effective_degree)
        return grid, np.polyval(coefficients, grid)

    def binned_mean(
        self, component: str = "total", bins: int = 20
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean power in equal-width time bins (a robust alternative to polyfit)."""
        if self.is_empty:
            raise ValueError("cannot bin an empty profile")
        times = self.times()
        powers = self.series(component)
        edges = np.linspace(float(times.min()), float(times.max()) + 1e-12, bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        means = np.full(bins, np.nan)
        which = np.digitize(times, edges) - 1
        which = np.clip(which, 0, bins - 1)
        for b in range(bins):
            mask = which == b
            if np.any(mask):
                means[b] = float(np.mean(powers[mask]))
        valid = ~np.isnan(means)
        return centers[valid], means[valid]

    # ------------------------------------------------------------------ #
    # Construction / transformation helpers.
    # ------------------------------------------------------------------ #
    def restricted_to_runs(self, run_indices: Iterable[int]) -> "FineGrainProfile":
        wanted = set(run_indices)
        return FineGrainProfile(
            kernel_name=self.kernel_name,
            kind=self.kind,
            points=tuple(p for p in self.points if p.run_index in wanted),
            execution_time_s=self.execution_time_s,
            metadata=dict(self.metadata),
        )

    def subsampled(self, max_points: int, seed: int = 0) -> "FineGrainProfile":
        """Randomly keep at most ``max_points`` points (used for #runs ablations)."""
        if max_points <= 0:
            raise ValueError("max_points must be positive")
        if len(self.points) <= max_points:
            return self
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(self.points), size=max_points, replace=False)
        return FineGrainProfile(
            kernel_name=self.kernel_name,
            kind=self.kind,
            points=tuple(self.points[i] for i in sorted(chosen)),
            execution_time_s=self.execution_time_s,
            metadata=dict(self.metadata),
        )

    def to_rows(self) -> list[dict[str, float]]:
        """Flatten the profile to rows for CSV/JSON export."""
        rows = []
        for point in self.points:
            row: dict[str, float] = {"time_s": point.time_s}
            row.update({f"{name}_w": value for name, value in point.powers_w.items()})
            row["run_index"] = point.run_index
            row["execution_index"] = point.execution_index
            rows.append(row)
        return rows


def profile_from_lois(
    kernel_name: str,
    kind: ProfileKind,
    lois: Sequence[LogOfInterest],
    execution_time_s: float,
    components: Sequence[str] = COMPONENT_KEYS,
    metadata: Mapping[str, object] | None = None,
) -> FineGrainProfile:
    """Build a profile directly from logs of interest (TOI on the x-axis)."""
    points = tuple(point_from_loi(loi, components) for loi in lois)
    return FineGrainProfile(
        kernel_name=kernel_name,
        kind=kind,
        points=points,
        execution_time_s=execution_time_s,
        metadata=dict(metadata or {}),
    )


def measurement_error(
    sse_profile: FineGrainProfile,
    ssp_profile: FineGrainProfile,
    component: str = "total",
) -> float:
    """Relative power/energy error of using the SSE profile instead of SSP.

    The paper quantifies the cost of skipping power-profile differentiation as
    the relative difference between the SSE and SSP profiles (up to 80 % for
    CB-2K-GEMM, about 20 % for CB-8K-GEMM).
    """
    ssp_power = ssp_profile.mean_power_w(component)
    sse_power = sse_profile.mean_power_w(component)
    if ssp_power <= 0:
        raise ValueError("SSP power must be positive to compute a relative error")
    return abs(ssp_power - sse_power) / ssp_power


def idle_normalized(value_w: float, idle_w: float, peak_w: float) -> float:
    """Normalise a power value to the [idle, peak] range (for relative plots)."""
    if peak_w <= idle_w:
        raise ValueError("peak power must exceed idle power")
    return (value_w - idle_w) / (peak_w - idle_w)


__all__ = [
    "ProfileKind",
    "ProfilePoint",
    "FineGrainProfile",
    "point_from_loi",
    "profile_from_lois",
    "measurement_error",
    "idle_normalized",
]
