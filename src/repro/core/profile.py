"""Fine-grain power profiles: the output of the FinGraV methodology.

A profile is a cloud of (time, power) points stitched together from the logs
of interest of many runs (paper step 9).  Three kinds are produced:

* ``ssp`` -- power at different times of interest within the steady-state-power
  execution.  This is the time-series view of average power the paper treats
  as *the* power profile of a kernel.
* ``sse`` -- same, for the steady-state-execution (first post-warm-up)
  execution; the naive profile a typical user would report.
* ``run`` -- power over the whole run (warm-ups through SSP), used for the
  methodology-evaluation figures (Figs 5, 6, 8).

Profiles are stored **columnar**: one time / run-index / execution-index array
bundle plus one power array per component (:class:`ProfileColumns`).  At paper
scale a profile holds tens of thousands of stitched points, so statistics,
smoothing, restriction and export are pure array operations; the legacy
per-point :class:`ProfilePoint` view is materialised lazily, only when a
consumer actually indexes ``profile.points``.

Profiles carry per-component series (total / xcd / iod / hbm), support
polynomial smoothing (the paper's degree-4 regression for low-run-count
profiles), and expose the power / energy summary statistics the analysis and
insight layers consume.
"""

from __future__ import annotations

import enum
import zipfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from .records import COMPONENT_KEYS, LogOfInterest


class ProfileKind(str, enum.Enum):
    """Which execution a profile describes."""

    SSP = "ssp"
    SSE = "sse"
    RUN = "run"
    CUSTOM = "custom"


@dataclass(frozen=True)
class ProfilePoint:
    """One stitched point of a fine-grain power profile."""

    time_s: float
    powers_w: Mapping[str, float]
    run_index: int = -1
    execution_index: int = -1

    def power(self, component: str = "total") -> float:
        try:
            return float(self.powers_w[component])
        except KeyError as exc:
            raise KeyError(f"profile point has no component {component!r}") from exc

    def has_component(self, component: str) -> bool:
        return component in self.powers_w


def point_from_loi(loi: LogOfInterest, components: Sequence[str] = COMPONENT_KEYS) -> ProfilePoint:
    """Convert a log of interest into a profile point keyed by TOI."""
    powers = {}
    for component in components:
        if loi.reading.has_component(component):
            powers[component] = loi.reading.component(component)
    return ProfilePoint(
        time_s=loi.toi_s,
        powers_w=powers,
        run_index=loi.run_index,
        execution_index=loi.execution_index,
    )


class ProfileColumns:
    """Structure-of-arrays storage behind :class:`FineGrainProfile`.

    ``powers_w`` maps component names to full-length value arrays; a component
    missing from *some* points carries ``NaN`` at the missing positions and a
    boolean presence array in ``masks``.  Components present in every point
    (the overwhelmingly common case) have no mask entry.  Constructors
    normalise masks: an all-true mask is dropped, an all-false component is
    removed entirely.
    """

    __slots__ = ("time_s", "run_index", "execution_index", "powers_w", "masks")

    def __init__(
        self,
        time_s: np.ndarray,
        run_index: np.ndarray,
        execution_index: np.ndarray,
        powers_w: Mapping[str, np.ndarray],
        masks: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        self.time_s = np.asarray(time_s, dtype=float)
        self.run_index = np.asarray(run_index, dtype=np.int64)
        self.execution_index = np.asarray(execution_index, dtype=np.int64)
        self.powers_w: dict[str, np.ndarray] = {}
        self.masks: dict[str, np.ndarray] = {}
        raw_masks = dict(masks or {})
        for name, values in powers_w.items():
            values = np.asarray(values, dtype=float)
            mask = raw_masks.get(name)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if not mask.any():
                    continue
                if mask.all():
                    mask = None
            self.powers_w[name] = values
            if mask is not None:
                self.masks[name] = mask

    def __len__(self) -> int:
        return int(self.time_s.shape[0])

    def freeze(self) -> "ProfileColumns":
        """Mark every array read-only (profiles are immutable by convention)."""
        for array in self._arrays():
            array.setflags(write=False)
        return self

    def _arrays(self) -> Iterable[np.ndarray]:
        yield self.time_s
        yield self.run_index
        yield self.execution_index
        yield from self.powers_w.values()
        yield from self.masks.values()

    # ------------------------------------------------------------------ #
    def sorted_by_time(self) -> "ProfileColumns":
        """Stable-sorted (by time) view; the same permutation as sorting points."""
        if len(self) <= 1 or bool(np.all(np.diff(self.time_s) >= 0)):
            return self
        return self.take(np.argsort(self.time_s, kind="stable"))

    def take(self, indices: np.ndarray) -> "ProfileColumns":
        """A new column bundle holding the rows at ``indices`` (in that order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ProfileColumns(
            time_s=self.time_s[indices],
            run_index=self.run_index[indices],
            execution_index=self.execution_index[indices],
            powers_w={name: values[indices] for name, values in self.powers_w.items()},
            masks={name: mask[indices] for name, mask in self.masks.items()},
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def empty() -> "ProfileColumns":
        return ProfileColumns(
            np.empty(0, dtype=float),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            {},
        )

    @staticmethod
    def from_points(points: Sequence[ProfilePoint]) -> "ProfileColumns":
        """Columnise a sequence of points (component order: first seen)."""
        points = tuple(points)
        n = len(points)
        if n == 0:
            return ProfileColumns.empty()
        time_s = np.empty(n, dtype=float)
        run_index = np.empty(n, dtype=np.int64)
        execution_index = np.empty(n, dtype=np.int64)
        values: dict[str, np.ndarray] = {}
        present: dict[str, np.ndarray] = {}
        for i, point in enumerate(points):
            time_s[i] = point.time_s
            run_index[i] = point.run_index
            execution_index[i] = point.execution_index
            for name, value in point.powers_w.items():
                column = values.get(name)
                if column is None:
                    column = np.full(n, np.nan)
                    values[name] = column
                    present[name] = np.zeros(n, dtype=bool)
                column[i] = value
                present[name][i] = True
        return ProfileColumns(time_s, run_index, execution_index, values, present)

    def to_points(self) -> tuple[ProfilePoint, ...]:
        """Materialise the legacy per-point view."""
        names = list(self.powers_w)
        points = []
        for i in range(len(self)):
            powers: dict[str, float] = {}
            for name in names:
                mask = self.masks.get(name)
                if mask is None or mask[i]:
                    powers[name] = float(self.powers_w[name][i])
            points.append(
                ProfilePoint(
                    time_s=float(self.time_s[i]),
                    powers_w=powers,
                    run_index=int(self.run_index[i]),
                    execution_index=int(self.execution_index[i]),
                )
            )
        return tuple(points)

    @staticmethod
    def concatenate(chunks: Sequence["ProfileColumns"]) -> "ProfileColumns":
        """Stack column bundles; components missing from a chunk become masked."""
        chunks = [chunk for chunk in chunks if chunk is not None]
        if not chunks:
            return ProfileColumns.empty()
        if len(chunks) == 1:
            return chunks[0]
        names: list[str] = []
        for chunk in chunks:
            for name in chunk.powers_w:
                if name not in names:
                    names.append(name)
        powers: dict[str, np.ndarray] = {}
        masks: dict[str, np.ndarray] = {}
        for name in names:
            parts: list[np.ndarray] = []
            mask_parts: list[np.ndarray] = []
            for chunk in chunks:
                n = len(chunk)
                if name in chunk.powers_w:
                    parts.append(chunk.powers_w[name])
                    mask = chunk.masks.get(name)
                    mask_parts.append(mask if mask is not None else np.ones(n, dtype=bool))
                else:
                    parts.append(np.full(n, np.nan))
                    mask_parts.append(np.zeros(n, dtype=bool))
            powers[name] = np.concatenate(parts)
            masks[name] = np.concatenate(mask_parts)
        return ProfileColumns(
            np.concatenate([chunk.time_s for chunk in chunks]),
            np.concatenate([chunk.run_index for chunk in chunks]),
            np.concatenate([chunk.execution_index for chunk in chunks]),
            powers,
            masks,
        )

    # ------------------------------------------------------------------ #
    # Equality.
    # ------------------------------------------------------------------ #
    def equals(self, other: "ProfileColumns") -> bool:
        """Structural equality, matching the per-point view's semantics.

        Component order is irrelevant (point dictionaries compare unordered),
        masked-out positions are ignored, and ``NaN`` at a *present* position
        compares unequal -- exactly as materialised point tuples would.
        """
        if self is other:
            return True
        if len(self) != len(other):
            return False
        if not (
            np.array_equal(self.time_s, other.time_s)
            and np.array_equal(self.run_index, other.run_index)
            and np.array_equal(self.execution_index, other.execution_index)
        ):
            return False
        if set(self.powers_w) != set(other.powers_w):
            return False
        for name, values in self.powers_w.items():
            theirs = other.powers_w[name]
            mask = self.masks.get(name)
            other_mask = other.masks.get(name)
            if mask is None and other_mask is None:
                if not np.array_equal(values, theirs):
                    return False
                continue
            # Constructors drop all-true masks, so None-vs-array means the
            # presence patterns genuinely differ.
            if mask is None or other_mask is None or not np.array_equal(mask, other_mask):
                return False
            if not np.array_equal(values[mask], theirs[mask]):
                return False
        return True

    # ------------------------------------------------------------------ #
    # The canonical columnar payload: the one shape that crosses every
    # process/disk boundary (pickle, the sweep cache's NPZ spill, viz export).
    # ------------------------------------------------------------------ #
    def to_payload(self) -> dict[str, np.ndarray]:
        """Flatten the bundle to named arrays.

        Keys: ``time_s`` / ``run_index`` / ``execution_index``, one
        ``power_<component>_w`` array per component, a ``mask_<component>``
        boolean array for each partially present component, and a
        ``components`` string array pinning the component order (the PR 3-era
        export lacked it; :meth:`from_payload` falls back to key order).
        """
        arrays: dict[str, np.ndarray] = {
            "time_s": self.time_s,
            "run_index": self.run_index,
            "execution_index": self.execution_index,
            "components": np.asarray(list(self.powers_w), dtype=np.str_),
        }
        for name, values in self.powers_w.items():
            arrays[f"power_{name}_w"] = values
        for name, mask in self.masks.items():
            arrays[f"mask_{name}"] = mask
        return arrays

    @staticmethod
    def from_payload(arrays: Mapping[str, np.ndarray]) -> "ProfileColumns":
        """Rebuild a bundle from :meth:`to_payload` arrays, zero-copy.

        Arrays that already carry the canonical dtype are adopted as-is --
        memory-mapped inputs stay memory-mapped -- so deserialising a spilled
        profile touches no payload bytes until a consumer reads them.
        """
        if "components" in arrays:
            names = [str(name) for name in np.asarray(arrays["components"]).tolist()]
        else:
            # PR 3-era export files: component order is the file's key order.
            names = [
                key[len("power_"):-len("_w")]
                for key in arrays
                if key.startswith("power_") and key.endswith("_w")
            ]
        columns = ProfileColumns.__new__(ProfileColumns)
        columns.time_s = _canonical_array(arrays["time_s"], np.dtype(float))
        columns.run_index = _canonical_array(arrays["run_index"], np.dtype(np.int64))
        columns.execution_index = _canonical_array(
            arrays["execution_index"], np.dtype(np.int64)
        )
        columns.powers_w = {}
        columns.masks = {}
        for name in names:
            values = _canonical_array(arrays[f"power_{name}_w"], np.dtype(float))
            mask = arrays.get(f"mask_{name}")
            if mask is not None:
                mask = _canonical_array(mask, np.dtype(bool))
                if not mask.any():
                    continue
                if mask.all():
                    mask = None
            columns.powers_w[name] = values
            if mask is not None:
                columns.masks[name] = mask
        return columns

    def to_npz(self, path: str | Path, compressed: bool = False) -> Path:
        """Write the payload arrays to an ``.npz`` file (lossless, dtype-exact).

        Uncompressed (the default) members can be memory-mapped back by
        :meth:`from_npz`; compression trades that away for smaller files.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        save = np.savez_compressed if compressed else np.savez
        with path.open("wb") as handle:
            save(handle, **self.to_payload())
        return path

    @staticmethod
    def from_npz(path: str | Path, mmap_mode: str | None = None) -> "ProfileColumns":
        """Read a bundle written by :meth:`to_npz` (bit-identical round trip).

        ``mmap_mode="r"`` maps uncompressed members read-only straight out of
        the archive instead of copying them into RAM (see
        :func:`load_npz_payload`).
        """
        return ProfileColumns.from_payload(load_npz_payload(path, mmap_mode=mmap_mode))

    # ------------------------------------------------------------------ #
    # Pickle: columns serialise as their canonical payload arrays.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict[str, object]:
        return {
            "time_s": self.time_s,
            "run_index": self.run_index,
            "execution_index": self.execution_index,
            "powers_w": self.powers_w,
            "masks": self.masks,
        }

    def __setstate__(self, state: Mapping[str, object]) -> None:
        self.time_s = state["time_s"]
        self.run_index = state["run_index"]
        self.execution_index = state["execution_index"]
        self.powers_w = dict(state["powers_w"])
        self.masks = dict(state["masks"])


def _canonical_array(array: object, dtype: np.dtype) -> np.ndarray:
    """Adopt an array as-is when already canonical (keeps memmaps mapped)."""
    if isinstance(array, np.ndarray) and array.dtype == dtype and array.ndim == 1:
        return array
    return np.asarray(array, dtype=dtype).reshape(-1)


def load_npz_payload(path: str | Path, mmap_mode: str | None = None) -> dict[str, np.ndarray]:
    """Load every member array of an ``.npz`` archive.

    With ``mmap_mode="r"`` each uncompressed member is returned as a read-only
    :class:`np.memmap` view directly into the archive file, so payload bytes
    are paged in lazily on first access.  (``np.load(..., mmap_mode=...)``
    silently ignores the flag for zip members and copies them into RAM; this
    loader parses the member offsets itself.)  Compressed, zero-size, object-
    dtype or otherwise irregular members fall back to a plain eager read.
    """
    path = Path(path)
    if mmap_mode is None:
        with np.load(path, allow_pickle=False) as bundle:
            return {name: bundle[name] for name in bundle.files}
    if mmap_mode != "r":
        raise ValueError(f"unsupported mmap_mode {mmap_mode!r}; only 'r' is supported")
    payload: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            if name.endswith(".npy"):
                name = name[: -len(".npy")]
            payload[name] = _npz_member_array(path, archive, info)
    return payload


def _npz_member_array(
    path: Path, archive: zipfile.ZipFile, info: zipfile.ZipInfo
) -> np.ndarray:
    """One ``.npz`` member: memory-mapped when possible, eagerly read otherwise."""
    if info.compress_type == zipfile.ZIP_STORED:
        mapped = _mapped_npz_member(path, info)
        if mapped is not None:
            return mapped
    with archive.open(info) as handle:
        return np.lib.format.read_array(handle, allow_pickle=False)


def _mapped_npz_member(path: Path, info: zipfile.ZipInfo) -> np.ndarray | None:
    """Read-only :class:`np.memmap` of one stored member, or None if unmappable.

    The data offset inside the archive is the member's local-header offset
    plus the 30-byte fixed local header, its name and extra fields (which can
    differ from the central directory's), plus the ``.npy`` header itself.
    """
    try:
        with path.open("rb") as handle:
            handle.seek(info.header_offset)
            local_header = handle.read(30)
            if len(local_header) != 30 or local_header[:4] != b"PK\x03\x04":
                return None
            name_len = int.from_bytes(local_header[26:28], "little")
            extra_len = int.from_bytes(local_header[28:30], "little")
            handle.seek(info.header_offset + 30 + name_len + extra_len)
            version = np.lib.format.read_magic(handle)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
            else:
                return None
            offset = handle.tell()
        if dtype.hasobject or not shape or any(extent == 0 for extent in shape):
            return None  # np.memmap cannot map empty or object arrays
        return np.memmap(
            path,
            dtype=dtype,
            mode="r",
            offset=offset,
            shape=shape,
            order="F" if fortran else "C",
        )
    except Exception:
        return None


class FineGrainProfile:
    """A stitched fine-grain power profile of one kernel.

    Point data lives in a :class:`ProfileColumns` bundle; every statistic and
    transformation below is an array operation over it.  ``points`` remains
    available for legacy consumers and is materialised (then cached) only when
    first accessed.  Construct either from ``points`` (the retained
    object-based path) or from ``columns`` (the columnar hot path) -- the two
    are interchangeable and produce bit-identical results.
    """

    def __init__(
        self,
        kernel_name: str,
        kind: ProfileKind,
        points: Sequence[ProfilePoint] | None = None,
        execution_time_s: float | None = None,
        metadata: Mapping[str, object] | None = None,
        *,
        columns: ProfileColumns | None = None,
    ) -> None:
        if execution_time_s is None:
            raise TypeError("execution_time_s is required")
        if (points is None) == (columns is None):
            raise TypeError("provide exactly one of points= or columns=")
        self.kernel_name = kernel_name
        self.kind = kind
        self.execution_time_s = execution_time_s
        self.metadata: Mapping[str, object] = dict(metadata or {})
        self._points: tuple[ProfilePoint, ...] | None
        self._columns: ProfileColumns | None
        if columns is not None:
            self._columns = columns.sorted_by_time().freeze()
            self._points = None
        else:
            self._points = tuple(sorted(points, key=lambda p: p.time_s))
            self._columns = None

    # ------------------------------------------------------------------ #
    # Storage views.
    # ------------------------------------------------------------------ #
    @property
    def points(self) -> tuple[ProfilePoint, ...]:
        """Per-point view, materialised from the columns on first access."""
        if self._points is None:
            self._points = self._columns.to_points()
        return self._points

    def columns(self) -> ProfileColumns:
        """The columnar storage (built once from points on the legacy path)."""
        if self._columns is None:
            # Points were sorted at construction; no re-sort needed.
            self._columns = ProfileColumns.from_points(self._points).freeze()
        return self._columns

    # ------------------------------------------------------------------ #
    # Basic accessors.
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self._points is not None:
            return len(self._points)
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FineGrainProfile):
            return NotImplemented
        if not (
            self.kernel_name == other.kernel_name
            and self.kind == other.kind
            and self.execution_time_s == other.execution_time_s
            and dict(self.metadata) == dict(other.metadata)
        ):
            return False
        if self._columns is not None and other._columns is not None:
            # Both sides are columnar: compare the arrays directly instead of
            # materialising (and caching) O(n) ProfilePoint objects.
            return self._columns.equals(other._columns)
        return self.points == other.points

    __hash__ = None  # mutable metadata mapping; profiles are not hashable

    # ------------------------------------------------------------------ #
    # Pickle: only the columns cross process/disk boundaries.  The point
    # tuple -- even a materialised cache of it -- is a pure adapter view and
    # is never serialised; point-built profiles are columnised on the way out.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict[str, object]:
        return {
            "kernel_name": self.kernel_name,
            "kind": self.kind,
            "execution_time_s": self.execution_time_s,
            "metadata": dict(self.metadata),
            "columns": self.columns(),
        }

    def __setstate__(self, state: Mapping[str, object]) -> None:
        self.kernel_name = state["kernel_name"]
        self.kind = state["kind"]
        self.execution_time_s = state["execution_time_s"]
        self.metadata = dict(state["metadata"])
        # Columns were sorted at construction time; re-freezing is enough.
        self._columns = state["columns"].freeze()
        self._points = None

    def __repr__(self) -> str:
        return (
            f"FineGrainProfile(kernel_name={self.kernel_name!r}, kind={self.kind!r}, "
            f"points=<{len(self)}>, execution_time_s={self.execution_time_s!r})"
        )

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def components(self) -> tuple[str, ...]:
        """Components present in *any* point (canonical keys first)."""
        powers = self.columns().powers_w
        present = [c for c in COMPONENT_KEYS if c in powers]
        extra = [c for c in powers if c not in COMPONENT_KEYS]
        return tuple(present + sorted(extra))

    def times(self) -> np.ndarray:
        """Point times as a read-only float array."""
        return self.columns().time_s

    def series(self, component: str = "total") -> np.ndarray:
        """Per-component power array, aligned with :meth:`times`.

        Positions whose point lacks the component are ``NaN`` (see
        :meth:`component_mask`); statistics below skip them.  An empty profile
        yields an empty array for any component name.
        """
        cols = self.columns()
        try:
            return cols.powers_w[component]
        except KeyError as exc:
            if len(cols) == 0:
                return cols.time_s  # the (read-only) empty float array
            raise KeyError(f"profile point has no component {component!r}") from exc

    def component_mask(self, component: str) -> np.ndarray | None:
        """Presence mask for a partially present component (None = everywhere)."""
        self.series(component)  # raise KeyError for unknown components
        return self.columns().masks.get(component)

    def run_indices(self) -> list[int]:
        return self.columns().run_index.tolist()

    def _component_values(self, component: str) -> np.ndarray:
        """The component's values at the points that actually carry it."""
        values = self.series(component)
        mask = self.columns().masks.get(component)
        return values if mask is None else values[mask]

    def component_points(self, component: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, values) restricted to points that carry the component.

        For fully present components this is ``(times(), series(component))``;
        for partially present ones the NaN holes are dropped.  Consumers that
        fit or plot a single component should use this instead of reading
        :meth:`series` raw, so missing points never poison a fit with NaNs.
        """
        values = self.series(component)
        mask = self.columns().masks.get(component)
        if mask is None:
            return self.times(), values
        return self.times()[mask], values[mask]

    # ------------------------------------------------------------------ #
    # Statistics.
    #
    # Empty-profile contract: a profile with zero points has no power, so
    # every summary statistic (mean / median / max / min / energy) returns a
    # clean ``float("nan")`` -- quietly, never through NumPy's
    # mean-of-empty-slice warning path -- on both the columnar and the
    # object storage.  ``power_std_w`` keeps its documented 0.0 for fewer
    # than two values.  Consumers that must not silently propagate NaN
    # should check :attr:`is_empty` first (as :func:`measurement_error`
    # does).
    # ------------------------------------------------------------------ #
    def mean_power_w(self, component: str = "total") -> float:
        """Mean power over the profile's points (NaN for an empty profile)."""
        if self.is_empty:
            return float("nan")
        return float(np.mean(self._component_values(component)))

    def median_power_w(self, component: str = "total") -> float:
        """Median power over the profile's points (NaN for an empty profile)."""
        if self.is_empty:
            return float("nan")
        return float(np.median(self._component_values(component)))

    def max_power_w(self, component: str = "total") -> float:
        """Maximum power over the profile's points (NaN for an empty profile)."""
        if self.is_empty:
            return float("nan")
        return float(np.max(self._component_values(component)))

    def min_power_w(self, component: str = "total") -> float:
        """Minimum power over the profile's points (NaN for an empty profile)."""
        if self.is_empty:
            return float("nan")
        return float(np.min(self._component_values(component)))

    def power_std_w(self, component: str = "total") -> float:
        """Sample standard deviation of power (0.0 with fewer than 2 values)."""
        if len(self) < 2:
            return 0.0
        values = self._component_values(component)
        if values.shape[0] < 2:
            return 0.0
        return float(np.std(values, ddof=1))

    def energy_j(self, component: str = "total") -> float:
        """Energy of one kernel execution implied by the profile.

        Energy is power integrated over time (paper Section I); for a profile
        of a single execution this is the mean profile power multiplied by the
        kernel execution time (NaN for an empty profile).
        """
        return self.mean_power_w(component) * self.execution_time_s

    def component_summary(self) -> dict[str, float]:
        """Mean power per component (the quantity plotted in Figs 7 and 10)."""
        return {component: self.mean_power_w(component) for component in self.components}

    # ------------------------------------------------------------------ #
    # Smoothing / resampling.
    # ------------------------------------------------------------------ #
    def smoothed(
        self, component: str = "total", degree: int = 4, num_points: int = 100
    ) -> tuple[np.ndarray, np.ndarray]:
        """Polynomial-regression trend of the profile (paper Figure 5, 50-run fit).

        Returns ``(times, fitted_power)`` with ``num_points`` evenly spaced
        times across the profile's span.  Falls back to a lower degree when
        there are too few points to support the requested one.
        """
        if self.is_empty:
            raise ValueError("cannot smooth an empty profile")
        if degree < 0:
            raise ValueError("degree must be non-negative")
        times, powers = self.component_points(component)
        effective_degree = min(degree, max(len(times) - 1, 0))
        grid = np.linspace(float(times.min()), float(times.max()), num_points)
        if effective_degree == 0 or float(times.max()) == float(times.min()):
            return grid, np.full(num_points, float(np.mean(powers)))
        coefficients = np.polyfit(times, powers, deg=effective_degree)
        return grid, np.polyval(coefficients, grid)

    def binned_mean(
        self, component: str = "total", bins: int = 20
    ) -> tuple[np.ndarray, np.ndarray]:
        """Mean power in equal-width time bins (a robust alternative to polyfit).

        One :func:`np.bincount` pass over the bin assignments replaces the
        per-bin Python mask loop.
        """
        if self.is_empty:
            raise ValueError("cannot bin an empty profile")
        times, powers = self.component_points(component)
        edges = np.linspace(float(times.min()), float(times.max()) + 1e-12, bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        which = np.clip(np.digitize(times, edges) - 1, 0, bins - 1)
        counts = np.bincount(which, minlength=bins)
        sums = np.bincount(which, weights=powers, minlength=bins)
        valid = counts > 0
        return centers[valid], sums[valid] / counts[valid]

    # ------------------------------------------------------------------ #
    # Construction / transformation helpers.
    # ------------------------------------------------------------------ #
    def restricted_to_runs(self, run_indices: Iterable[int]) -> "FineGrainProfile":
        cols = self.columns()
        wanted = np.fromiter((int(i) for i in run_indices), dtype=np.int64)
        keep = np.nonzero(np.isin(cols.run_index, wanted))[0]
        return FineGrainProfile(
            kernel_name=self.kernel_name,
            kind=self.kind,
            execution_time_s=self.execution_time_s,
            metadata=dict(self.metadata),
            columns=cols.take(keep),
        )

    def subsampled(self, max_points: int, seed: int = 0) -> "FineGrainProfile":
        """Randomly keep at most ``max_points`` points (used for #runs ablations)."""
        if max_points <= 0:
            raise ValueError("max_points must be positive")
        if len(self) <= max_points:
            return self
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(self), size=max_points, replace=False)
        return FineGrainProfile(
            kernel_name=self.kernel_name,
            kind=self.kind,
            execution_time_s=self.execution_time_s,
            metadata=dict(self.metadata),
            columns=self.columns().take(np.sort(chosen)),
        )

    def to_rows(self) -> list[dict[str, float]]:
        """Flatten the profile to rows for CSV/JSON export."""
        cols = self.columns()
        names = list(cols.powers_w)
        rows = []
        for i in range(len(cols)):
            row: dict[str, float] = {"time_s": float(cols.time_s[i])}
            for name in names:
                mask = cols.masks.get(name)
                if mask is None or mask[i]:
                    row[f"{name}_w"] = float(cols.powers_w[name][i])
            row["run_index"] = int(cols.run_index[i])
            row["execution_index"] = int(cols.execution_index[i])
            rows.append(row)
        return rows


def component_column(
    readings: Sequence[object], component: str
) -> tuple[np.ndarray, np.ndarray | None] | None:
    """Columnise one component across power readings.

    Returns ``(values, presence-mask)`` -- the mask is ``None`` when the
    component is present in every reading -- or ``None`` when it is present in
    none.  The single source of the NaN-fill / presence-mask rules shared by
    :func:`columns_from_lois` and the stitched series' cached power columns.
    """
    n = len(readings)
    if component == "total":
        return (
            np.fromiter((reading.total_w for reading in readings), dtype=float, count=n),
            None,
        )
    raw = [reading.components.get(component) for reading in readings]
    if all(value is not None for value in raw):
        return np.asarray(raw, dtype=float), None
    if any(value is not None for value in raw):
        return (
            np.asarray(
                [value if value is not None else np.nan for value in raw], dtype=float
            ),
            np.asarray([value is not None for value in raw], dtype=bool),
        )
    return None


def columns_from_lois(
    lois: Sequence[LogOfInterest], components: Sequence[str] = COMPONENT_KEYS
) -> ProfileColumns:
    """Columnise logs of interest directly -- no intermediate point objects."""
    lois = list(lois)
    n = len(lois)
    if n == 0:
        return ProfileColumns.empty()
    time_s = np.fromiter((loi.toi_s for loi in lois), dtype=float, count=n)
    run_index = np.fromiter((loi.run_index for loi in lois), dtype=np.int64, count=n)
    execution_index = np.fromiter(
        (loi.execution_index for loi in lois), dtype=np.int64, count=n
    )
    readings = [loi.reading for loi in lois]
    powers: dict[str, np.ndarray] = {}
    masks: dict[str, np.ndarray] = {}
    for component in components:
        column = component_column(readings, component)
        if column is None:
            continue
        values, mask = column
        powers[component] = values
        if mask is not None:
            masks[component] = mask
    return ProfileColumns(time_s, run_index, execution_index, powers, masks)


def profile_from_lois(
    kernel_name: str,
    kind: ProfileKind,
    lois: Sequence[LogOfInterest],
    execution_time_s: float,
    components: Sequence[str] = COMPONENT_KEYS,
    metadata: Mapping[str, object] | None = None,
) -> FineGrainProfile:
    """Build a profile directly from logs of interest (TOI on the x-axis).

    The columns are filled straight from the LOIs; no :class:`ProfilePoint`
    objects are created.  :func:`profile_from_lois_reference` is the retained
    object-based construction, pinned bit-identical by the equivalence tests.
    """
    return FineGrainProfile(
        kernel_name=kernel_name,
        kind=kind,
        execution_time_s=execution_time_s,
        metadata=dict(metadata or {}),
        columns=columns_from_lois(lois, components),
    )


def profile_from_lois_reference(
    kernel_name: str,
    kind: ProfileKind,
    lois: Sequence[LogOfInterest],
    execution_time_s: float,
    components: Sequence[str] = COMPONENT_KEYS,
    metadata: Mapping[str, object] | None = None,
) -> FineGrainProfile:
    """Object-based reference construction (one frozen point per LOI)."""
    points = tuple(point_from_loi(loi, components) for loi in lois)
    return FineGrainProfile(
        kernel_name=kernel_name,
        kind=kind,
        points=points,
        execution_time_s=execution_time_s,
        metadata=dict(metadata or {}),
    )


def measurement_error(
    sse_profile: FineGrainProfile,
    ssp_profile: FineGrainProfile,
    component: str = "total",
) -> float:
    """Relative power/energy error of using the SSE profile instead of SSP.

    The paper quantifies the cost of skipping power-profile differentiation as
    the relative difference between the SSE and SSP profiles (up to 80 % for
    CB-2K-GEMM, about 20 % for CB-8K-GEMM).  Empty profiles are rejected
    explicitly (their statistics are NaN by contract, which would silently
    poison the relative error).
    """
    if sse_profile.is_empty or ssp_profile.is_empty:
        raise ValueError("measurement error needs non-empty SSE and SSP profiles")
    ssp_power = ssp_profile.mean_power_w(component)
    sse_power = sse_profile.mean_power_w(component)
    if ssp_power <= 0:
        raise ValueError("SSP power must be positive to compute a relative error")
    return abs(ssp_power - sse_power) / ssp_power


def idle_normalized(value_w: float, idle_w: float, peak_w: float) -> float:
    """Normalise a power value to the [idle, peak] range (for relative plots)."""
    if peak_w <= idle_w:
        raise ValueError("peak power must exceed idle power")
    return (value_w - idle_w) / (peak_w - idle_w)


__all__ = [
    "ProfileKind",
    "ProfilePoint",
    "ProfileColumns",
    "FineGrainProfile",
    "load_npz_payload",
    "point_from_loi",
    "component_column",
    "columns_from_lois",
    "profile_from_lois",
    "profile_from_lois_reference",
    "measurement_error",
    "idle_normalized",
]
