"""Profiling backend protocol.

FinGraV is a methodology, not a tool bound to one GPU: the paper applies it
through an AMD-internal 1 ms power logger but discusses applying the same
steps through amd-smi or other loggers (Section VI).  The core package is
therefore written against this small protocol; the simulated MI300X implements
it in :mod:`repro.gpu.backend`, and nothing in :mod:`repro.core` imports the
simulator.

The kernel handle is intentionally opaque to the core (``object``): the
backend decides what a kernel is (an activity descriptor for the simulator, a
callable launching a rocBLAS call on real hardware).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from .records import DelayCalibration, RunRecord

#: A (kernel, executions) pair describing work to run *before* the kernel of
#: interest within the same run -- used for the interleaved-kernel studies.
PrecedingWork = tuple[object, int]


@runtime_checkable
class ProfilingBackend(Protocol):
    """What the FinGraV methodology needs from a platform."""

    @property
    def power_sample_period_s(self) -> float:
        """Averaging window / reporting period of the power logger (seconds)."""

    @property
    def counter_frequency_hz(self) -> float:
        """Frequency of the GPU timestamp counter (Hz)."""

    def kernel_name(self, kernel: object) -> str:
        """Stable display name for a kernel handle."""

    def time_kernel(self, kernel: object, executions: int) -> list[float]:
        """Execute ``kernel`` ``executions`` times and return host-timed durations.

        Used by methodology step 1 (identify the kernel execution time) and by
        the warm-up-count search; power is not collected.
        """

    def calibrate_read_delay(self, samples: int = 32) -> DelayCalibration:
        """Benchmark the GPU-timestamp read delay (methodology step 2)."""

    def run(
        self,
        kernel: object,
        executions: int,
        pre_delay_s: float,
        run_index: int = 0,
        preceding: Sequence[PrecedingWork] = (),
    ) -> RunRecord:
        """Execute one instrumented run and return everything it produced.

        The backend is responsible for: resetting the device to an idle state,
        starting the power logger, reading the CPU/GPU timestamp anchor,
        waiting ``pre_delay_s``, running any ``preceding`` work, executing the
        kernel ``executions`` times back-to-back, and stopping the logger.
        """


__all__ = ["ProfilingBackend", "PrecedingWork"]
