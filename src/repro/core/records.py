"""Data records exchanged between a profiling backend and the FinGraV core.

The FinGraV methodology (paper Section IV) is deliberately tool-agnostic: it
consumes power-logger samples tagged with GPU timestamps, host-observed kernel
start/end times, and a single CPU/GPU timestamp anchor per run.  These records
define that contract.  The simulated MI300X backend
(:mod:`repro.gpu.backend`) produces them; on real hardware a ROCm/amd-smi
backend would produce the same shapes.

Nothing in this module knows about the simulator -- the methodology never sees
ground-truth GPU times.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

#: Canonical component names used throughout the reproduction.  ``total`` is
#: always present; the breakdown keys mirror the MI300X chiplet organisation.
COMPONENT_KEYS: tuple[str, ...] = ("total", "xcd", "iod", "hbm")


@dataclass(frozen=True)
class PowerReading:
    """One sample reported by a power logger.

    ``gpu_timestamp_ticks`` is the GPU timestamp-counter value associated with
    the *end* of the averaging window; ``window_s`` is the averaging window
    length (0 for an instantaneous sampler).  ``components`` maps component
    names (e.g. ``xcd``/``iod``/``hbm``) to average watts over the window.
    """

    gpu_timestamp_ticks: int
    window_s: float
    total_w: float
    components: Mapping[str, float] = field(default_factory=dict)

    def component(self, name: str) -> float:
        """Power of one component; ``total`` returns the board power."""
        if name == "total":
            return self.total_w
        try:
            return float(self.components[name])
        except KeyError as exc:
            raise KeyError(f"reading has no component {name!r}") from exc

    def has_component(self, name: str) -> bool:
        return name == "total" or name in self.components


class ExecutionRole(str, enum.Enum):
    """Role of an execution within a run (paper solution S4)."""

    WARMUP = "warmup"
    SSE = "sse"
    INTERMEDIATE = "intermediate"
    SSP = "ssp"


@dataclass(frozen=True)
class ExecutionTiming:
    """Host-observed timing of one kernel execution within a run."""

    index: int
    cpu_start_s: float
    cpu_end_s: float
    kernel_name: str = ""

    def __post_init__(self) -> None:
        if self.cpu_end_s < self.cpu_start_s:
            raise ValueError("execution cannot end before it starts")
        if self.index < 0:
            raise ValueError("execution index must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.cpu_end_s - self.cpu_start_s

    def contains(self, cpu_time_s: float) -> bool:
        return self.cpu_start_s <= cpu_time_s <= self.cpu_end_s


@dataclass(frozen=True)
class TimestampAnchor:
    """One CPU/GPU timestamp pair captured at the start of a run (solution S2).

    ``cpu_time_after_s`` is the host time when the read returned;
    ``round_trip_s`` is the host-measured duration of the read.  The capture
    on the GPU happened roughly one way-delay before the return.
    """

    gpu_ticks: int
    cpu_time_after_s: float
    round_trip_s: float


@dataclass(frozen=True)
class DelayCalibration:
    """Statistics of the GPU-timestamp read delay (methodology step 2)."""

    mean_round_trip_s: float
    std_round_trip_s: float
    samples: int

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("calibration needs at least one sample")
        if self.mean_round_trip_s < 0 or self.std_round_trip_s < 0:
            raise ValueError("delay statistics must be non-negative")

    @property
    def one_way_delay_s(self) -> float:
        """Estimate of the one-way (CPU to GPU) read delay."""
        return self.mean_round_trip_s / 2.0


@dataclass(frozen=True)
class RunRecord:
    """Everything collected during one profiling run.

    A *run* (paper Section IV-B) is: idle padding, GPU-timestamp anchor read,
    a random delay, optional preceding (interleaved) kernels, then the
    back-to-back executions of the kernel of interest, all while the power
    logger records.
    """

    run_index: int
    kernel_name: str
    readings: tuple[PowerReading, ...]
    executions: tuple[ExecutionTiming, ...]
    anchor: TimestampAnchor
    logger_period_s: float
    counter_frequency_hz: float
    pre_delay_s: float
    preceding_executions: tuple[ExecutionTiming, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.logger_period_s < 0:
            raise ValueError("logger period cannot be negative")
        if self.counter_frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_executions(self) -> int:
        return len(self.executions)

    @property
    def first_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[0]

    @property
    def last_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[-1]

    @property
    def ssp_execution(self) -> ExecutionTiming:
        """The execution used for the SSP profile (the last one of the run)."""
        return self.last_execution

    def execution(self, index: int) -> ExecutionTiming:
        for execution in self.executions:
            if execution.index == index:
                return execution
        raise KeyError(f"run {self.run_index} has no execution with index {index}")

    def execution_durations(self) -> list[float]:
        return [execution.duration_s for execution in self.executions]

    def role_of(self, index: int, warmup_executions: int, sse_index: int) -> ExecutionRole:
        """Classify an execution index into warmup / SSE / intermediate / SSP."""
        last_index = self.executions[-1].index if self.executions else 0
        if index < warmup_executions:
            return ExecutionRole.WARMUP
        if index == sse_index:
            return ExecutionRole.SSE
        if index == last_index:
            return ExecutionRole.SSP
        return ExecutionRole.INTERMEDIATE


@dataclass(frozen=True)
class LogOfInterest:
    """A power reading attributed to a specific execution (paper LOI/TOI).

    ``toi_s`` is the *time of interest*: how far into the matched execution
    the averaging window ended.  ``toi_fraction`` normalises it by the
    execution's duration.
    """

    run_index: int
    execution_index: int
    reading: PowerReading
    window_end_cpu_s: float
    toi_s: float
    toi_fraction: float

    def __post_init__(self) -> None:
        if self.toi_s < 0:
            raise ValueError("time of interest cannot be negative")
        if not math.isfinite(self.toi_fraction):
            raise ValueError("toi_fraction must be finite")

    def power(self, component: str = "total") -> float:
        return self.reading.component(component)


def mean_duration(executions: Sequence[ExecutionTiming]) -> float:
    """Arithmetic mean of execution durations (0.0 for an empty sequence)."""
    if not executions:
        return 0.0
    return sum(execution.duration_s for execution in executions) / len(executions)


__all__ = [
    "COMPONENT_KEYS",
    "PowerReading",
    "ExecutionRole",
    "ExecutionTiming",
    "TimestampAnchor",
    "DelayCalibration",
    "RunRecord",
    "LogOfInterest",
    "mean_duration",
]
