"""Data records exchanged between a profiling backend and the FinGraV core.

The FinGraV methodology (paper Section IV) is deliberately tool-agnostic: it
consumes power-logger samples tagged with GPU timestamps, host-observed kernel
start/end times, and a single CPU/GPU timestamp anchor per run.  These records
define that contract.  The simulated MI300X backend
(:mod:`repro.gpu.backend`) produces them; on real hardware a ROCm/amd-smi
backend would produce the same shapes.

Nothing in this module knows about the simulator -- the methodology never sees
ground-truth GPU times.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

#: Canonical component names used throughout the reproduction.  ``total`` is
#: always present; the breakdown keys mirror the MI300X chiplet organisation.
COMPONENT_KEYS: tuple[str, ...] = ("total", "xcd", "iod", "hbm")


@dataclass(frozen=True)
class PowerReading:
    """One sample reported by a power logger.

    ``gpu_timestamp_ticks`` is the GPU timestamp-counter value associated with
    the *end* of the averaging window; ``window_s`` is the averaging window
    length (0 for an instantaneous sampler).  ``components`` maps component
    names (e.g. ``xcd``/``iod``/``hbm``) to average watts over the window.
    """

    gpu_timestamp_ticks: int
    window_s: float
    total_w: float
    components: Mapping[str, float] = field(default_factory=dict)

    def component(self, name: str) -> float:
        """Power of one component; ``total`` returns the board power."""
        if name == "total":
            return self.total_w
        try:
            return float(self.components[name])
        except KeyError as exc:
            raise KeyError(f"reading has no component {name!r}") from exc

    def has_component(self, name: str) -> bool:
        return name == "total" or name in self.components


class ExecutionRole(str, enum.Enum):
    """Role of an execution within a run (paper solution S4)."""

    WARMUP = "warmup"
    SSE = "sse"
    INTERMEDIATE = "intermediate"
    SSP = "ssp"


@dataclass(frozen=True)
class ExecutionTiming:
    """Host-observed timing of one kernel execution within a run."""

    index: int
    cpu_start_s: float
    cpu_end_s: float
    kernel_name: str = ""

    def __post_init__(self) -> None:
        if self.cpu_end_s < self.cpu_start_s:
            raise ValueError("execution cannot end before it starts")
        if self.index < 0:
            raise ValueError("execution index must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.cpu_end_s - self.cpu_start_s

    def contains(self, cpu_time_s: float) -> bool:
        return self.cpu_start_s <= cpu_time_s <= self.cpu_end_s


@dataclass(frozen=True)
class TimestampAnchor:
    """One CPU/GPU timestamp pair captured at the start of a run (solution S2).

    ``cpu_time_after_s`` is the host time when the read returned;
    ``round_trip_s`` is the host-measured duration of the read.  The capture
    on the GPU happened roughly one way-delay before the return.
    """

    gpu_ticks: int
    cpu_time_after_s: float
    round_trip_s: float


@dataclass(frozen=True)
class DelayCalibration:
    """Statistics of the GPU-timestamp read delay (methodology step 2)."""

    mean_round_trip_s: float
    std_round_trip_s: float
    samples: int

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("calibration needs at least one sample")
        if self.mean_round_trip_s < 0 or self.std_round_trip_s < 0:
            raise ValueError("delay statistics must be non-negative")

    @property
    def one_way_delay_s(self) -> float:
        """Estimate of the one-way (CPU to GPU) read delay."""
        return self.mean_round_trip_s / 2.0


class ReadingColumns:
    """Structure-of-arrays view over a run's power readings.

    The vectorized LOI extractor and profile builders consume these columns
    instead of iterating :class:`PowerReading` objects.  Only the timestamp
    ticks are materialised eagerly (they are what the extraction hot path
    needs); the power/window columns are built on first access.  ``powers_w``
    always carries ``total`` plus every component key shared by *all*
    readings; ``uniform_components`` is False when readings disagree on their
    component sets, in which case consumers that need per-reading component
    presence must fall back to the scalar path.
    """

    def __init__(self, readings: Sequence[PowerReading]) -> None:
        self._readings = tuple(readings)
        self.gpu_timestamp_ticks = np.fromiter(
            (r.gpu_timestamp_ticks for r in self._readings),
            dtype=np.int64,
            count=len(self._readings),
        )
        self._window_s: np.ndarray | None = None
        self._powers_w: dict[str, np.ndarray] | None = None
        self._uniform: bool | None = None

    @property
    def num_readings(self) -> int:
        return len(self._readings)

    @property
    def window_s(self) -> np.ndarray:
        if self._window_s is None:
            self._window_s = np.fromiter(
                (r.window_s for r in self._readings),
                dtype=float,
                count=len(self._readings),
            )
        return self._window_s

    @property
    def uniform_components(self) -> bool:
        if self._uniform is None:
            self._build_powers()
        return bool(self._uniform)

    @property
    def powers_w(self) -> Mapping[str, np.ndarray]:
        if self._powers_w is None:
            self._build_powers()
        return self._powers_w

    def _build_powers(self) -> None:
        readings = self._readings
        if not readings:
            self._powers_w = {"total": np.empty(0, dtype=float)}
            self._uniform = True
            return
        first_keys = frozenset(readings[0].components)
        common_keys = set(first_keys)
        uniform = True
        for reading in readings:
            keys = reading.components.keys()
            if keys != first_keys:
                uniform = False
                common_keys.intersection_update(keys)
        powers: dict[str, np.ndarray] = {
            "total": np.asarray([r.total_w for r in readings], dtype=float)
        }
        for key in sorted(common_keys):
            powers[key] = np.asarray([r.components[key] for r in readings], dtype=float)
        self._powers_w = powers
        self._uniform = uniform

    @staticmethod
    def from_readings(readings: Sequence[PowerReading]) -> "ReadingColumns":
        return ReadingColumns(readings)


@dataclass(frozen=True)
class ExecutionColumns:
    """Structure-of-arrays view over a run's executions, sorted by start time.

    ``positions[i]`` maps the i-th sorted entry back to its position in the
    run's ``executions`` tuple, so consumers can recover the original
    :class:`ExecutionTiming` object after a vectorized match.
    """

    indices: np.ndarray
    starts_s: np.ndarray
    ends_s: np.ndarray
    positions: np.ndarray

    @property
    def num_executions(self) -> int:
        return int(self.indices.shape[0])

    @staticmethod
    def from_executions(executions: Sequence[ExecutionTiming]) -> "ExecutionColumns":
        starts = np.asarray([e.cpu_start_s for e in executions], dtype=float)
        order = np.argsort(starts, kind="stable")
        return ExecutionColumns(
            indices=np.asarray([executions[i].index for i in order], dtype=np.int64),
            starts_s=starts[order],
            ends_s=np.asarray([executions[i].cpu_end_s for i in order], dtype=float),
            positions=order.astype(np.int64),
        )


@dataclass(frozen=True)
class RunRecord:
    """Everything collected during one profiling run.

    A *run* (paper Section IV-B) is: idle padding, GPU-timestamp anchor read,
    a random delay, optional preceding (interleaved) kernels, then the
    back-to-back executions of the kernel of interest, all while the power
    logger records.
    """

    run_index: int
    kernel_name: str
    readings: tuple[PowerReading, ...]
    executions: tuple[ExecutionTiming, ...]
    anchor: TimestampAnchor
    logger_period_s: float
    counter_frequency_hz: float
    pre_delay_s: float
    preceding_executions: tuple[ExecutionTiming, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.logger_period_s < 0:
            raise ValueError("logger period cannot be negative")
        if self.counter_frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_executions(self) -> int:
        return len(self.executions)

    @property
    def first_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[0]

    @property
    def last_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[-1]

    @property
    def ssp_execution(self) -> ExecutionTiming:
        """The execution used for the SSP profile (the last one of the run)."""
        return self.last_execution

    def execution(self, index: int) -> ExecutionTiming:
        for execution in self.executions:
            if execution.index == index:
                return execution
        raise KeyError(f"run {self.run_index} has no execution with index {index}")

    def execution_durations(self) -> list[float]:
        return [execution.duration_s for execution in self.executions]

    def reading_columns(self) -> ReadingColumns:
        """Columnar (NumPy) view over the readings, built once and cached."""
        cached = self.__dict__.get("_reading_columns")
        if cached is None:
            cached = ReadingColumns.from_readings(self.readings)
            object.__setattr__(self, "_reading_columns", cached)
        return cached

    def execution_columns(self) -> ExecutionColumns:
        """Columnar view over the executions (sorted by start), built once."""
        cached = self.__dict__.get("_execution_columns")
        if cached is None:
            cached = ExecutionColumns.from_executions(self.executions)
            object.__setattr__(self, "_execution_columns", cached)
        return cached

    def role_of(self, index: int, warmup_executions: int, sse_index: int) -> ExecutionRole:
        """Classify an execution index into warmup / SSE / intermediate / SSP."""
        last_index = self.executions[-1].index if self.executions else 0
        if index < warmup_executions:
            return ExecutionRole.WARMUP
        if index == sse_index:
            return ExecutionRole.SSE
        if index == last_index:
            return ExecutionRole.SSP
        return ExecutionRole.INTERMEDIATE


@dataclass(frozen=True)
class LogOfInterest:
    """A power reading attributed to a specific execution (paper LOI/TOI).

    ``toi_s`` is the *time of interest*: how far into the matched execution
    the averaging window ended.  ``toi_fraction`` normalises it by the
    execution's duration.
    """

    run_index: int
    execution_index: int
    reading: PowerReading
    window_end_cpu_s: float
    toi_s: float
    toi_fraction: float

    def __post_init__(self) -> None:
        if self.toi_s < 0:
            raise ValueError("time of interest cannot be negative")
        if not math.isfinite(self.toi_fraction):
            raise ValueError("toi_fraction must be finite")

    def power(self, component: str = "total") -> float:
        return self.reading.component(component)


def mean_duration(executions: Sequence[ExecutionTiming]) -> float:
    """Arithmetic mean of execution durations (0.0 for an empty sequence)."""
    if not executions:
        return 0.0
    return sum(execution.duration_s for execution in executions) / len(executions)


__all__ = [
    "COMPONENT_KEYS",
    "PowerReading",
    "ReadingColumns",
    "ExecutionColumns",
    "ExecutionRole",
    "ExecutionTiming",
    "TimestampAnchor",
    "DelayCalibration",
    "RunRecord",
    "LogOfInterest",
    "mean_duration",
]
