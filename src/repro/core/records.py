"""Data records exchanged between a profiling backend and the FinGraV core.

The FinGraV methodology (paper Section IV) is deliberately tool-agnostic: it
consumes power-logger samples tagged with GPU timestamps, host-observed kernel
start/end times, and a single CPU/GPU timestamp anchor per run.  These records
define that contract.  The simulated MI300X backend
(:mod:`repro.gpu.backend`) produces them; on real hardware a ROCm/amd-smi
backend would produce the same shapes.

Nothing in this module knows about the simulator -- the methodology never sees
ground-truth GPU times.
"""

from __future__ import annotations

import enum
import math
from array import array
from collections.abc import Sequence as SequenceABC
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

#: Canonical component names used throughout the reproduction.  ``total`` is
#: always present; the breakdown keys mirror the MI300X chiplet organisation.
COMPONENT_KEYS: tuple[str, ...] = ("total", "xcd", "iod", "hbm")


@dataclass(frozen=True)
class PowerReading:
    """One sample reported by a power logger.

    ``gpu_timestamp_ticks`` is the GPU timestamp-counter value associated with
    the *end* of the averaging window; ``window_s`` is the averaging window
    length (0 for an instantaneous sampler).  ``components`` maps component
    names (e.g. ``xcd``/``iod``/``hbm``) to average watts over the window.
    """

    gpu_timestamp_ticks: int
    window_s: float
    total_w: float
    components: Mapping[str, float] = field(default_factory=dict)

    def component(self, name: str) -> float:
        """Power of one component; ``total`` returns the board power."""
        if name == "total":
            return self.total_w
        try:
            return float(self.components[name])
        except KeyError as exc:
            raise KeyError(f"reading has no component {name!r}") from exc

    def has_component(self, name: str) -> bool:
        return name == "total" or name in self.components


class ExecutionRole(str, enum.Enum):
    """Role of an execution within a run (paper solution S4)."""

    WARMUP = "warmup"
    SSE = "sse"
    INTERMEDIATE = "intermediate"
    SSP = "ssp"


@dataclass(frozen=True)
class ExecutionTiming:
    """Host-observed timing of one kernel execution within a run."""

    index: int
    cpu_start_s: float
    cpu_end_s: float
    kernel_name: str = ""

    def __post_init__(self) -> None:
        if self.cpu_end_s < self.cpu_start_s:
            raise ValueError("execution cannot end before it starts")
        if self.index < 0:
            raise ValueError("execution index must be non-negative")

    @property
    def duration_s(self) -> float:
        return self.cpu_end_s - self.cpu_start_s

    def contains(self, cpu_time_s: float) -> bool:
        return self.cpu_start_s <= cpu_time_s <= self.cpu_end_s


@dataclass(frozen=True)
class TimestampAnchor:
    """One CPU/GPU timestamp pair captured at the start of a run (solution S2).

    ``cpu_time_after_s`` is the host time when the read returned;
    ``round_trip_s`` is the host-measured duration of the read.  The capture
    on the GPU happened roughly one way-delay before the return.
    """

    gpu_ticks: int
    cpu_time_after_s: float
    round_trip_s: float


@dataclass(frozen=True)
class DelayCalibration:
    """Statistics of the GPU-timestamp read delay (methodology step 2)."""

    mean_round_trip_s: float
    std_round_trip_s: float
    samples: int

    def __post_init__(self) -> None:
        if self.samples <= 0:
            raise ValueError("calibration needs at least one sample")
        if self.mean_round_trip_s < 0 or self.std_round_trip_s < 0:
            raise ValueError("delay statistics must be non-negative")

    @property
    def one_way_delay_s(self) -> float:
        """Estimate of the one-way (CPU to GPU) read delay."""
        return self.mean_round_trip_s / 2.0


class _LazyRecordView(SequenceABC):
    """Shared scaffolding of the columnar, tuple-compatible record views.

    Subclasses store their columns in the slots named by ``_STATE_FIELDS``
    (which also defines the pickled state, in order) and implement
    ``_build(i)`` to materialise the record object at one position.  The base
    provides the tuple-compatible Sequence protocol with per-position
    memoisation: each position materialises at most once, so repeated
    indexing (and iteration) hands back the *same* object -- consumers may
    rely on identity, exactly as with a stored tuple.  The memo itself is
    never pickled.
    """

    __slots__ = ()

    _STATE_FIELDS: tuple[str, ...] = ()

    def _build(self, i: int):
        raise NotImplementedError

    def _item(self, i: int):
        items = self._items
        if items is None:
            items = self._items = [None] * len(self)
        obj = items[i]
        if obj is None:
            obj = items[i] = self._build(i)
        return obj

    def _materialize(self) -> tuple:
        return tuple(self._item(i) for i in range(len(self)))

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._materialize()[index]
        i = index.__index__()
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"{type(self).__name__} index out of range")
        return self._item(i)

    def __iter__(self):
        return iter(self._materialize())

    def _eq_sequence(self, other) -> bool:
        return len(self) == len(other) and all(a == b for a, b in zip(self, other))

    __hash__ = None  # type: ignore[assignment]  # mutable arrays back the views

    def __getstate__(self):
        return tuple(getattr(self, name) for name in self._STATE_FIELDS)

    def __setstate__(self, state) -> None:
        for name, value in zip(self._STATE_FIELDS, state):
            setattr(self, name, value)
        self._items = None


class ExecutionTimings(_LazyRecordView):
    """Columnar, tuple-compatible view over host-observed execution timings.

    The vectorized backend stages each launch sequence's start/end times in an
    :class:`ExecutionArena` instead of constructing one frozen
    :class:`ExecutionTiming` per execution; run records then adopt the arena's
    columns through this view.  It behaves exactly like the tuple of
    :class:`ExecutionTiming` objects the reference path stores -- same length,
    elements, iteration order and equality -- but the objects are materialised
    lazily, while columnar consumers read ``indices`` / ``starts_s`` /
    ``ends_s`` directly and never touch objects.
    """

    __slots__ = ("indices", "starts_s", "ends_s", "kernel_names", "_items")

    _STATE_FIELDS = ("indices", "starts_s", "ends_s", "kernel_names")

    def __init__(self, indices, starts_s, ends_s, kernel_names) -> None:
        self.indices = np.asarray(indices, dtype=np.int64)
        self.starts_s = np.asarray(starts_s, dtype=float)
        self.ends_s = np.asarray(ends_s, dtype=float)
        self.kernel_names = tuple(kernel_names)
        if not (
            self.indices.shape == self.starts_s.shape == self.ends_s.shape
            and len(self.kernel_names) == self.indices.shape[0]
        ):
            raise ValueError("execution-timing columns must share one length")
        self._items: list[ExecutionTiming | None] | None = None

    def __len__(self) -> int:
        return self.indices.shape[0]

    def _build(self, i: int) -> ExecutionTiming:
        # Same field values the reference path's constructor would produce;
        # __dict__ fill skips the (already satisfied) validation.
        timing = ExecutionTiming.__new__(ExecutionTiming)
        fields = timing.__dict__
        fields["index"] = int(self.indices[i])
        fields["cpu_start_s"] = float(self.starts_s[i])
        fields["cpu_end_s"] = float(self.ends_s[i])
        fields["kernel_name"] = self.kernel_names[i]
        return timing

    def __eq__(self, other) -> bool:
        if isinstance(other, ExecutionTimings):
            return (
                np.array_equal(self.indices, other.indices)
                and np.array_equal(self.starts_s, other.starts_s)
                and np.array_equal(self.ends_s, other.ends_s)
                and self.kernel_names == other.kernel_names
            )
        if isinstance(other, (tuple, list)):
            return self._eq_sequence(other)
        return NotImplemented

    def durations_s(self) -> np.ndarray:
        """Per-execution durations as one array (``ends_s - starts_s``)."""
        return self.ends_s - self.starts_s

    def __repr__(self) -> str:
        return f"ExecutionTimings(n={len(self)})"


class PowerReadings(_LazyRecordView):
    """Columnar, tuple-compatible view over a run's power readings.

    Built by the vectorized backend straight from the sampler's columnar
    output: timestamp ticks, one shared averaging-window length, total watts
    and an ``(n, k)`` per-component power matrix.  Indexing or iterating
    materialises :class:`PowerReading` objects with the identical field values
    the reference path constructs, so the view is interchangeable with the
    reference tuple; columnar consumers (:class:`ReadingColumns`, the LOI
    extractors) adopt the arrays directly.
    """

    __slots__ = (
        "gpu_timestamp_ticks", "window_s", "total_w",
        "component_names", "components_w", "_items",
    )

    _STATE_FIELDS = (
        "gpu_timestamp_ticks", "window_s", "total_w",
        "component_names", "components_w",
    )

    def __init__(self, gpu_timestamp_ticks, window_s, total_w, component_names, components_w) -> None:
        self.gpu_timestamp_ticks = np.asarray(gpu_timestamp_ticks, dtype=np.int64)
        self.window_s = float(window_s)
        self.total_w = np.asarray(total_w, dtype=float)
        self.component_names = tuple(component_names)
        self.components_w = np.asarray(components_w, dtype=float).reshape(
            self.gpu_timestamp_ticks.shape[0], len(self.component_names)
        )
        if self.total_w.shape != self.gpu_timestamp_ticks.shape:
            raise ValueError("power-reading columns must share one length")
        self._items: list[PowerReading | None] | None = None

    def __len__(self) -> int:
        return self.gpu_timestamp_ticks.shape[0]

    def _build(self, i: int) -> PowerReading:
        reading = PowerReading.__new__(PowerReading)
        fields = reading.__dict__
        fields["gpu_timestamp_ticks"] = int(self.gpu_timestamp_ticks[i])
        fields["window_s"] = self.window_s
        fields["total_w"] = float(self.total_w[i])
        row = self.components_w[i]
        fields["components"] = {
            name: float(row[j]) for j, name in enumerate(self.component_names)
        }
        return reading

    def __eq__(self, other) -> bool:
        if isinstance(other, PowerReadings):
            return (
                self.window_s == other.window_s
                and self.component_names == other.component_names
                and np.array_equal(self.gpu_timestamp_ticks, other.gpu_timestamp_ticks)
                and np.array_equal(self.total_w, other.total_w)
                and np.array_equal(self.components_w, other.components_w)
            )
        if isinstance(other, (tuple, list)):
            return self._eq_sequence(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"PowerReadings(n={len(self)}, window_s={self.window_s})"


class ExecutionArena:
    """Reusable columnar staging area for one record field's execution timings.

    The vectorized launch path appends each execution's ``(start, end)``
    floats into the arena's flat buffers -- one block descriptor per launch
    sequence carries the kernel name and the contiguous index range -- and
    :meth:`take` snapshots the staged block(s) as an
    :class:`ExecutionTimings` view, resetting the arena for the next field.
    One arena lives on the backend and is recycled across runs, so the
    per-execution cost of a run collapses to two ``array.append`` calls.
    """

    __slots__ = ("_starts", "_ends", "_blocks")

    def __init__(self) -> None:
        self._starts = array("d")
        self._ends = array("d")
        self._blocks: list[tuple[str, int, int]] = []

    def begin(self) -> None:
        """Drop any staged executions (e.g. leftovers of an aborted run)."""
        del self._starts[:]
        del self._ends[:]
        self._blocks.clear()

    def stage(self, kernel_name: str, start_index: int, count: int):
        """Open a block of ``count`` executions indexed from ``start_index``.

        Returns the two bound append callables ``(append_start, append_end)``
        the launch loop feeds; exactly ``count`` pairs must be appended.
        """
        self._blocks.append((kernel_name, start_index, count))
        return self._starts.append, self._ends.append

    def stage_filled(self, starts, ends) -> None:
        """Bulk-fill the most recently staged block from float64 arrays.

        The compiled launch path computes a whole sequence's observed
        timings in one kernel call; this appends them in two buffer copies
        instead of ``2 * count`` scalar appends.  Exactly the open block's
        ``count`` values must be supplied (checked by :meth:`take`).
        """
        self._starts.frombytes(np.ascontiguousarray(starts, dtype=float).tobytes())
        self._ends.frombytes(np.ascontiguousarray(ends, dtype=float).tobytes())

    def take(self) -> "ExecutionTimings | tuple":
        """Snapshot staged executions as a view; ``()`` when nothing staged."""
        if not self._blocks:
            return ()
        staged = sum(count for _, _, count in self._blocks)
        if staged != len(self._starts) or staged != len(self._ends):
            raise ValueError(
                f"arena staged {staged} executions but holds "
                f"{len(self._starts)} starts / {len(self._ends)} ends"
            )
        names: list[str] = []
        index_parts: list[np.ndarray] = []
        for kernel_name, start_index, count in self._blocks:
            names.extend([kernel_name] * count)
            index_parts.append(
                np.arange(start_index, start_index + count, dtype=np.int64)
            )
        view = ExecutionTimings(
            indices=index_parts[0] if len(index_parts) == 1 else np.concatenate(index_parts),
            starts_s=np.array(self._starts, dtype=float),
            ends_s=np.array(self._ends, dtype=float),
            kernel_names=names,
        )
        self.begin()
        return view


class ReadingColumns:
    """Structure-of-arrays view over a run's power readings.

    The vectorized LOI extractor and profile builders consume these columns
    instead of iterating :class:`PowerReading` objects.  Only the timestamp
    ticks are materialised eagerly (they are what the extraction hot path
    needs); the power/window columns are built on first access.  ``powers_w``
    always carries ``total`` plus every component key shared by *all*
    readings; ``uniform_components`` is False when readings disagree on their
    component sets, in which case consumers that need per-reading component
    presence must fall back to the scalar path.
    """

    def __init__(self, readings: Sequence[PowerReading]) -> None:
        self._readings = tuple(readings)
        self.gpu_timestamp_ticks = np.fromiter(
            (r.gpu_timestamp_ticks for r in self._readings),
            dtype=np.int64,
            count=len(self._readings),
        )
        self._window_s: np.ndarray | None = None
        self._powers_w: dict[str, np.ndarray] | None = None
        self._uniform: bool | None = None

    @property
    def num_readings(self) -> int:
        return len(self._readings)

    @property
    def window_s(self) -> np.ndarray:
        if self._window_s is None:
            self._window_s = np.fromiter(
                (r.window_s for r in self._readings),
                dtype=float,
                count=len(self._readings),
            )
        return self._window_s

    @property
    def uniform_components(self) -> bool:
        if self._uniform is None:
            self._build_powers()
        return bool(self._uniform)

    @property
    def powers_w(self) -> Mapping[str, np.ndarray]:
        if self._powers_w is None:
            self._build_powers()
        return self._powers_w

    def _build_powers(self) -> None:
        readings = self._readings
        if not readings:
            self._powers_w = {"total": np.empty(0, dtype=float)}
            self._uniform = True
            return
        first_keys = frozenset(readings[0].components)
        common_keys = set(first_keys)
        uniform = True
        for reading in readings:
            keys = reading.components.keys()
            if keys != first_keys:
                uniform = False
                common_keys.intersection_update(keys)
        powers: dict[str, np.ndarray] = {
            "total": np.asarray([r.total_w for r in readings], dtype=float)
        }
        for key in sorted(common_keys):
            powers[key] = np.asarray([r.components[key] for r in readings], dtype=float)
        self._powers_w = powers
        self._uniform = uniform

    @staticmethod
    def from_readings(readings: Sequence[PowerReading]) -> "ReadingColumns":
        if isinstance(readings, PowerReadings):
            return ReadingColumns._adopt(readings)
        return ReadingColumns(readings)

    @classmethod
    def _adopt(cls, view: PowerReadings) -> "ReadingColumns":
        """Adopt a :class:`PowerReadings` view's arrays directly (zero copy).

        Produces the identical columns :meth:`__init__` + :meth:`_build_powers`
        would derive by iterating materialised readings: the same ticks, a
        constant window column, ``total`` first then the component keys in
        sorted order, and ``uniform_components=True`` (every reading of a view
        shares one component set by construction).
        """
        columns = cls.__new__(cls)
        columns._readings = view
        columns.gpu_timestamp_ticks = view.gpu_timestamp_ticks
        columns._window_s = np.full(len(view), view.window_s, dtype=float)
        powers: dict[str, np.ndarray] = {"total": view.total_w}
        for name in sorted(view.component_names):
            powers[name] = view.components_w[:, view.component_names.index(name)]
        columns._powers_w = powers
        columns._uniform = True
        return columns


@dataclass(frozen=True)
class ExecutionColumns:
    """Structure-of-arrays view over a run's executions, sorted by start time.

    ``positions[i]`` maps the i-th sorted entry back to its position in the
    run's ``executions`` tuple, so consumers can recover the original
    :class:`ExecutionTiming` object after a vectorized match.
    """

    indices: np.ndarray
    starts_s: np.ndarray
    ends_s: np.ndarray
    positions: np.ndarray

    @property
    def num_executions(self) -> int:
        return int(self.indices.shape[0])

    @staticmethod
    def from_executions(executions: Sequence[ExecutionTiming]) -> "ExecutionColumns":
        if isinstance(executions, ExecutionTimings):
            # Columnar source: sort the adopted arrays, no object iteration.
            starts = executions.starts_s
            order = np.argsort(starts, kind="stable")
            return ExecutionColumns(
                indices=executions.indices[order],
                starts_s=starts[order],
                ends_s=executions.ends_s[order],
                positions=order.astype(np.int64),
            )
        starts = np.asarray([e.cpu_start_s for e in executions], dtype=float)
        order = np.argsort(starts, kind="stable")
        return ExecutionColumns(
            indices=np.asarray([executions[i].index for i in order], dtype=np.int64),
            starts_s=starts[order],
            ends_s=np.asarray([executions[i].cpu_end_s for i in order], dtype=float),
            positions=order.astype(np.int64),
        )


@dataclass(frozen=True)
class RunRecord:
    """Everything collected during one profiling run.

    A *run* (paper Section IV-B) is: idle padding, GPU-timestamp anchor read,
    a random delay, optional preceding (interleaved) kernels, then the
    back-to-back executions of the kernel of interest, all while the power
    logger records.

    ``readings`` / ``executions`` / ``preceding_executions`` hold either plain
    tuples of the record objects (the reference backend path) or the
    tuple-compatible columnar views :class:`PowerReadings` /
    :class:`ExecutionTimings` (the vectorized arena path).  Both compare equal
    element-wise; the ``*_columns`` accessors adopt a view's arrays directly.
    """

    run_index: int
    kernel_name: str
    readings: tuple[PowerReading, ...]
    executions: tuple[ExecutionTiming, ...]
    anchor: TimestampAnchor
    logger_period_s: float
    counter_frequency_hz: float
    pre_delay_s: float
    preceding_executions: tuple[ExecutionTiming, ...] = ()
    metadata: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.logger_period_s < 0:
            raise ValueError("logger period cannot be negative")
        if self.counter_frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")

    # ------------------------------------------------------------------ #
    @property
    def num_executions(self) -> int:
        return len(self.executions)

    @property
    def first_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[0]

    @property
    def last_execution(self) -> ExecutionTiming:
        if not self.executions:
            raise ValueError("run has no executions")
        return self.executions[-1]

    @property
    def ssp_execution(self) -> ExecutionTiming:
        """The execution used for the SSP profile (the last one of the run)."""
        return self.last_execution

    def execution(self, index: int) -> ExecutionTiming:
        executions = self.executions
        if isinstance(executions, ExecutionTimings):
            matches = np.nonzero(executions.indices == index)[0]
            if matches.size:
                return executions[int(matches[0])]
        else:
            for execution in executions:
                if execution.index == index:
                    return execution
        raise KeyError(f"run {self.run_index} has no execution with index {index}")

    def execution_durations(self) -> list[float]:
        executions = self.executions
        if isinstance(executions, ExecutionTimings):
            return executions.durations_s().tolist()
        return [execution.duration_s for execution in executions]

    def reading_columns(self) -> ReadingColumns:
        """Columnar (NumPy) view over the readings, built once and cached."""
        cached = self.__dict__.get("_reading_columns")
        if cached is None:
            cached = ReadingColumns.from_readings(self.readings)
            object.__setattr__(self, "_reading_columns", cached)
        return cached

    def execution_columns(self) -> ExecutionColumns:
        """Columnar view over the executions (sorted by start), built once."""
        cached = self.__dict__.get("_execution_columns")
        if cached is None:
            cached = ExecutionColumns.from_executions(self.executions)
            object.__setattr__(self, "_execution_columns", cached)
        return cached

    def __getstate__(self) -> dict:
        # The cached columnar views are cheap to rebuild but expensive to
        # serialise (and the reading columns pin materialised objects); keep
        # them out of pickles so IPC/cache payloads carry only the record data.
        state = dict(self.__dict__)
        state.pop("_reading_columns", None)
        state.pop("_execution_columns", None)
        return state

    def role_of(self, index: int, warmup_executions: int, sse_index: int) -> ExecutionRole:
        """Classify an execution index into warmup / SSE / intermediate / SSP."""
        last_index = self.executions[-1].index if self.executions else 0
        if index < warmup_executions:
            return ExecutionRole.WARMUP
        if index == sse_index:
            return ExecutionRole.SSE
        if index == last_index:
            return ExecutionRole.SSP
        return ExecutionRole.INTERMEDIATE


@dataclass(frozen=True)
class LogOfInterest:
    """A power reading attributed to a specific execution (paper LOI/TOI).

    ``toi_s`` is the *time of interest*: how far into the matched execution
    the averaging window ended.  ``toi_fraction`` normalises it by the
    execution's duration.
    """

    run_index: int
    execution_index: int
    reading: PowerReading
    window_end_cpu_s: float
    toi_s: float
    toi_fraction: float

    def __post_init__(self) -> None:
        if self.toi_s < 0:
            raise ValueError("time of interest cannot be negative")
        if not math.isfinite(self.toi_fraction):
            raise ValueError("toi_fraction must be finite")

    def power(self, component: str = "total") -> float:
        return self.reading.component(component)


def mean_duration(executions: Sequence[ExecutionTiming]) -> float:
    """Arithmetic mean of execution durations (0.0 for an empty sequence)."""
    if not executions:
        return 0.0
    return sum(execution.duration_s for execution in executions) / len(executions)


__all__ = [
    "COMPONENT_KEYS",
    "PowerReading",
    "PowerReadings",
    "ExecutionTimings",
    "ExecutionArena",
    "ReadingColumns",
    "ExecutionColumns",
    "ExecutionRole",
    "ExecutionTiming",
    "TimestampAnchor",
    "DelayCalibration",
    "RunRecord",
    "LogOfInterest",
    "mean_duration",
]
