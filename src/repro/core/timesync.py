"""CPU-GPU time synchronisation and LOI/TOI identification (paper S2).

The on-GPU power logger tags samples with GPU timestamp-counter values and is
agnostic of kernel start/end events, which the host observes in its own clock
domain.  FinGraV bridges the two domains with a single anchor per run -- a GPU
timestamp read from the CPU just before the executions -- plus a separately
benchmarked read delay:

    capture_cpu_time ~= cpu_time_after_read - round_trip + one_way_delay
    cpu_time(ticks)  = capture_cpu_time + (ticks - anchor_ticks) / counter_hz

With the mapping in hand, each power reading's averaging window can be placed
on the CPU timeline, matched to the execution it overlaps (the log of
interest, LOI) and to the position within that execution where the window
ended (the time of interest, TOI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .records import (
    DelayCalibration,
    ExecutionTiming,
    LogOfInterest,
    PowerReading,
    RunRecord,
    TimestampAnchor,
)


@dataclass(frozen=True)
class ClockSynchronizer:
    """Maps GPU timestamp-counter ticks to CPU time for one run."""

    anchor: TimestampAnchor
    counter_frequency_hz: float
    calibration: DelayCalibration | None = None

    def __post_init__(self) -> None:
        if self.counter_frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")

    @property
    def anchor_capture_cpu_s(self) -> float:
        """Estimated CPU time at which the anchor ticks were captured on the GPU.

        The host observed the read *returning* at ``cpu_time_after_s`` after a
        measured ``round_trip_s``; the capture happened roughly one calibrated
        one-way delay after the read was issued.  Without a calibration we
        fall back to the midpoint of the round trip.
        """
        issue_time = self.anchor.cpu_time_after_s - self.anchor.round_trip_s
        if self.calibration is not None:
            return issue_time + self.calibration.one_way_delay_s
        return issue_time + self.anchor.round_trip_s / 2.0

    def cpu_time_of(self, gpu_ticks: int) -> float:
        """CPU time corresponding to a GPU timestamp-counter value."""
        delta_ticks = gpu_ticks - self.anchor.gpu_ticks
        return self.anchor_capture_cpu_s + delta_ticks / self.counter_frequency_hz

    def gpu_ticks_of(self, cpu_time_s: float) -> int:
        """Inverse mapping (useful for tests and for window placement)."""
        delta_s = cpu_time_s - self.anchor_capture_cpu_s
        return self.anchor.gpu_ticks + int(round(delta_s * self.counter_frequency_hz))


@dataclass(frozen=True)
class NaiveIndexSynchronizer:
    """The *unsynchronised* baseline mapping (paper Figure 5, red profile).

    A common shortcut is to ignore the GPU timestamps entirely and assume the
    k-th sample in the collected buffer was taken k sampling periods after the
    host started the logger.  Because the logger free-runs on its own grid
    (and because of the CPU-GPU launch path), this mis-places samples by up to
    a full sampling period, attributing power to the wrong executions.
    """

    logger_start_cpu_s: float
    period_s: float

    def cpu_time_of_index(self, sample_index: int) -> float:
        if sample_index < 0:
            raise ValueError("sample index must be non-negative")
        return self.logger_start_cpu_s + (sample_index + 1) * self.period_s


def match_execution(
    executions: Sequence[ExecutionTiming], cpu_time_s: float
) -> ExecutionTiming | None:
    """Return the execution whose span contains ``cpu_time_s`` (None if idle)."""
    for execution in executions:
        if execution.contains(cpu_time_s):
            return execution
    return None


def _loi_from(
    run_index: int,
    reading: PowerReading,
    window_end_cpu_s: float,
    execution: ExecutionTiming,
) -> LogOfInterest:
    toi = window_end_cpu_s - execution.cpu_start_s
    duration = execution.duration_s
    fraction = toi / duration if duration > 0 else 0.0
    return LogOfInterest(
        run_index=run_index,
        execution_index=execution.index,
        reading=reading,
        window_end_cpu_s=window_end_cpu_s,
        toi_s=toi,
        toi_fraction=min(max(fraction, 0.0), 1.0),
    )


def extract_lois(
    run: RunRecord,
    synchronizer: ClockSynchronizer,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """Identify the logs of interest of one run (methodology step 7).

    A reading becomes an LOI when, after mapping its GPU timestamp into CPU
    time, its averaging-window end falls inside one of the run's executions.
    ``execution_indices`` optionally restricts the match to specific
    executions (e.g. only the SSP execution).
    """
    wanted = set(execution_indices) if execution_indices is not None else None
    lois: list[LogOfInterest] = []
    for reading in run.readings:
        window_end = synchronizer.cpu_time_of(reading.gpu_timestamp_ticks)
        execution = match_execution(run.executions, window_end)
        if execution is None:
            continue
        if wanted is not None and execution.index not in wanted:
            continue
        lois.append(_loi_from(run.run_index, reading, window_end, execution))
    return lois


def extract_lois_unsynchronized(
    run: RunRecord,
    logger_start_cpu_s: float,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """LOI extraction using the naive index-based mapping (baseline)."""
    naive = NaiveIndexSynchronizer(
        logger_start_cpu_s=logger_start_cpu_s, period_s=run.logger_period_s
    )
    wanted = set(execution_indices) if execution_indices is not None else None
    lois: list[LogOfInterest] = []
    for sample_index, reading in enumerate(run.readings):
        window_end = naive.cpu_time_of_index(sample_index)
        execution = match_execution(run.executions, window_end)
        if execution is None:
            continue
        if wanted is not None and execution.index not in wanted:
            continue
        lois.append(_loi_from(run.run_index, reading, window_end, execution))
    return lois


def synchronizer_for_run(
    run: RunRecord, calibration: DelayCalibration | None = None
) -> ClockSynchronizer:
    """Build the per-run synchroniser from the run's anchor."""
    return ClockSynchronizer(
        anchor=run.anchor,
        counter_frequency_hz=run.counter_frequency_hz,
        calibration=calibration,
    )


__all__ = [
    "ClockSynchronizer",
    "NaiveIndexSynchronizer",
    "match_execution",
    "extract_lois",
    "extract_lois_unsynchronized",
    "synchronizer_for_run",
]
