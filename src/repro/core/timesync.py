"""CPU-GPU time synchronisation and LOI/TOI identification (paper S2).

The on-GPU power logger tags samples with GPU timestamp-counter values and is
agnostic of kernel start/end events, which the host observes in its own clock
domain.  FinGraV bridges the two domains with a single anchor per run -- a GPU
timestamp read from the CPU just before the executions -- plus a separately
benchmarked read delay:

    capture_cpu_time ~= cpu_time_after_read - round_trip + one_way_delay
    cpu_time(ticks)  = capture_cpu_time + (ticks - anchor_ticks) / counter_hz

With the mapping in hand, each power reading's averaging window can be placed
on the CPU timeline, matched to the execution it overlaps (the log of
interest, LOI) and to the position within that execution where the window
ended (the time of interest, TOI).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Iterable, Sequence

import numpy as np

from .records import (
    DelayCalibration,
    ExecutionTiming,
    ExecutionTimings,
    LogOfInterest,
    PowerReading,
    RunRecord,
    TimestampAnchor,
)


@dataclass(frozen=True)
class ClockSynchronizer:
    """Maps GPU timestamp-counter ticks to CPU time for one run."""

    anchor: TimestampAnchor
    counter_frequency_hz: float
    calibration: DelayCalibration | None = None

    def __post_init__(self) -> None:
        if self.counter_frequency_hz <= 0:
            raise ValueError("counter frequency must be positive")

    @property
    def anchor_capture_cpu_s(self) -> float:
        """Estimated CPU time at which the anchor ticks were captured on the GPU.

        The host observed the read *returning* at ``cpu_time_after_s`` after a
        measured ``round_trip_s``; the capture happened roughly one calibrated
        one-way delay after the read was issued.  Without a calibration we
        fall back to the midpoint of the round trip.
        """
        issue_time = self.anchor.cpu_time_after_s - self.anchor.round_trip_s
        if self.calibration is not None:
            return issue_time + self.calibration.one_way_delay_s
        return issue_time + self.anchor.round_trip_s / 2.0

    def cpu_time_of(self, gpu_ticks: int) -> float:
        """CPU time corresponding to a GPU timestamp-counter value."""
        delta_ticks = gpu_ticks - self.anchor.gpu_ticks
        return self.anchor_capture_cpu_s + delta_ticks / self.counter_frequency_hz

    def cpu_times_of(self, gpu_ticks: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`cpu_time_of` over an array of counter values.

        Performs the same float64 operations element-wise, so results are
        bit-identical to the scalar mapping.
        """
        ticks = np.asarray(gpu_ticks, dtype=np.int64)
        delta_ticks = ticks - self.anchor.gpu_ticks
        return self.anchor_capture_cpu_s + delta_ticks / self.counter_frequency_hz

    def gpu_ticks_of(self, cpu_time_s: float) -> int:
        """Inverse mapping (useful for tests and for window placement)."""
        delta_s = cpu_time_s - self.anchor_capture_cpu_s
        return self.anchor.gpu_ticks + int(round(delta_s * self.counter_frequency_hz))


@dataclass(frozen=True)
class NaiveIndexSynchronizer:
    """The *unsynchronised* baseline mapping (paper Figure 5, red profile).

    A common shortcut is to ignore the GPU timestamps entirely and assume the
    k-th sample in the collected buffer was taken k sampling periods after the
    host started the logger.  Because the logger free-runs on its own grid
    (and because of the CPU-GPU launch path), this mis-places samples by up to
    a full sampling period, attributing power to the wrong executions.
    """

    logger_start_cpu_s: float
    period_s: float

    def cpu_time_of_index(self, sample_index: int) -> float:
        if sample_index < 0:
            raise ValueError("sample index must be non-negative")
        return self.logger_start_cpu_s + (sample_index + 1) * self.period_s

    def cpu_times_of_indices(self, num_samples: int) -> np.ndarray:
        """Vectorized window-end times of samples ``0..num_samples-1``."""
        if num_samples < 0:
            raise ValueError("sample count must be non-negative")
        return self.logger_start_cpu_s + np.arange(1, num_samples + 1) * self.period_s


def match_execution(
    executions: Sequence[ExecutionTiming], cpu_time_s: float
) -> ExecutionTiming | None:
    """Return the execution whose span contains ``cpu_time_s`` (None if idle)."""
    for execution in executions:
        if execution.contains(cpu_time_s):
            return execution
    return None


def match_execution_positions(run: RunRecord, cpu_times_s: np.ndarray) -> np.ndarray:
    """Vectorized :func:`match_execution` over an array of CPU times.

    Returns, for every time, the position into ``run.executions`` of the
    execution whose (inclusive) span contains it, or ``-1`` when the time
    falls into idle.  Each time is matched against the sorted execution
    start/end arrays with one :func:`np.searchsorted`; a time landing exactly
    on a boundary shared by two back-to-back executions is attributed to the
    earlier one, matching the scalar first-match semantics for chronologically
    ordered executions.
    """
    times = np.asarray(cpu_times_s, dtype=float)
    result = np.full(times.shape, -1, dtype=np.int64)
    if not run.executions or times.size == 0:
        return result
    cols = run.execution_columns()
    starts, ends = cols.starts_s, cols.ends_s
    if cols.num_executions > 1 and bool(
        np.any(np.diff(ends) < 0)
        or np.any(cols.positions != np.arange(cols.num_executions))
    ):
        # Nested executions or a non-chronological tuple: binary search cannot
        # reproduce first-match semantics, fall back to the scalar scan.
        for i, t in enumerate(times):
            execution = match_execution(run.executions, float(t))
            if execution is not None:
                result[i] = run.executions.index(execution)
        return result
    pos = _first_containing_positions(starts, ends, times)
    valid = pos >= 0
    result[valid] = cols.positions[pos[valid]]
    return result


def _first_containing_positions(
    starts: np.ndarray, ends: np.ndarray, times: np.ndarray,
    same_group: np.ndarray | None = None, group_of_time: np.ndarray | None = None,
) -> np.ndarray:
    """Index of the first execution containing each time (-1 when none).

    ``starts`` and ``ends`` must both be non-decreasing (host-observed
    back-to-back executions may *slightly* overlap because of observation
    jitter, but their ends stay ordered).  A binary search finds the latest
    start at or before each time; a vectorized back-walk then shifts to the
    earliest execution still containing the time, which reproduces the scalar
    first-match exactly -- including shared-boundary and small-overlap cases.
    ``same_group``/``group_of_time`` optionally restrict matches to executions
    belonging to the same group (run) as the time being matched.
    """
    pos = np.searchsorted(starts, times, side="right") - 1
    if starts.shape[0] > 1:
        while True:
            prev = np.maximum(pos - 1, 0)
            can_shift = (pos > 0) & (times <= ends[prev])
            if same_group is not None:
                can_shift &= same_group[prev] == group_of_time
            if not bool(np.any(can_shift)):
                break
            pos = np.where(can_shift, pos - 1, pos)
    clipped = np.maximum(pos, 0)
    valid = (pos >= 0) & (times >= starts[clipped]) & (times <= ends[clipped])
    if same_group is not None:
        valid &= same_group[clipped] == group_of_time
    return np.where(valid, pos, -1)


def _lois_from_window_ends(
    run: RunRecord, window_ends: np.ndarray, wanted: set[int] | None
) -> list[LogOfInterest]:
    """Turn matched window-end times into :class:`LogOfInterest` objects."""
    positions = match_execution_positions(run, window_ends)
    lois: list[LogOfInterest] = []
    for i in np.nonzero(positions >= 0)[0]:
        execution = run.executions[positions[i]]
        if wanted is not None and execution.index not in wanted:
            continue
        lois.append(_loi_from(run.run_index, run.readings[i], float(window_ends[i]), execution))
    return lois


def _loi_from(
    run_index: int,
    reading: PowerReading,
    window_end_cpu_s: float,
    execution: ExecutionTiming,
) -> LogOfInterest:
    toi = window_end_cpu_s - execution.cpu_start_s
    duration = execution.duration_s
    fraction = toi / duration if duration > 0 else 0.0
    return LogOfInterest(
        run_index=run_index,
        execution_index=execution.index,
        reading=reading,
        window_end_cpu_s=window_end_cpu_s,
        toi_s=toi,
        toi_fraction=min(max(fraction, 0.0), 1.0),
    )


def _execution_starts(run: RunRecord) -> np.ndarray:
    """Execution start times in record order, without materialising objects."""
    executions = run.executions
    if isinstance(executions, ExecutionTimings):
        return executions.starts_s
    return np.fromiter(
        map(attrgetter("cpu_start_s"), executions), dtype=float, count=len(executions)
    )


def _execution_ends(run: RunRecord) -> np.ndarray:
    """Execution end times in record order, without materialising objects."""
    executions = run.executions
    if isinstance(executions, ExecutionTimings):
        return executions.ends_s
    return np.fromiter(
        map(attrgetter("cpu_end_s"), executions), dtype=float, count=len(executions)
    )


#: Per-run result of a batched extraction: the LOIs plus the reading-match
#: cache (window-end CPU times and matched execution positions, -1 for idle)
#: that profile builders reuse to avoid re-matching readings.
BatchExtraction = tuple[list[LogOfInterest], tuple[np.ndarray, np.ndarray]]


def extract_lois_batch(
    runs: Sequence[RunRecord],
    calibration: DelayCalibration | None = None,
    synchronize: bool = True,
) -> list[BatchExtraction] | None:
    """Extract the LOIs of many runs in one vectorized pass.

    All runs' readings are mapped to CPU time and matched against a single
    concatenated execution table with one binary search; a run-ownership check
    keeps a reading from ever matching another run's execution, so results
    are bit-identical to per-run extraction.  Requires every run to have
    executions, the concatenated execution starts *and* ends to be
    non-decreasing (true for records produced by a backend even when
    host-observation jitter makes back-to-back executions overlap slightly),
    and the runs' overall execution spans to be disjoint.  Returns ``None``
    when a precondition fails so callers can fall back to the per-run path.
    """
    if not runs:
        return []
    exec_counts = [run.num_executions for run in runs]
    if min(exec_counts) == 0:
        return None
    starts = np.concatenate([_execution_starts(run) for run in runs])
    ends = np.concatenate([_execution_ends(run) for run in runs])
    if starts.shape[0] > 1 and bool(
        np.any(np.diff(starts) < 0) or np.any(np.diff(ends) < 0)
    ):
        return None
    reading_counts = [len(run.readings) for run in runs]
    reading_offsets = np.concatenate([[0], np.cumsum(reading_counts)])
    exec_offsets = np.concatenate([[0], np.cumsum(exec_counts)])
    if len(runs) > 1:
        # Runs' execution spans must be disjoint: an execution of one run
        # overlapping another run's span would block the same-group back-walk
        # and silently diverge from per-run extraction.
        run_first_starts = starts[exec_offsets[:-1]]
        run_last_ends = ends[exec_offsets[1:] - 1]
        if bool(np.any(run_last_ends[:-1] > run_first_starts[1:])):
            return None
    run_ordinals = np.arange(len(runs))
    reading_owner = np.repeat(run_ordinals, reading_counts)
    exec_owner = np.repeat(run_ordinals, exec_counts)

    # The per-run columnar views (cached on the records and reused by every
    # later profile build) supply the ticks; reading *objects* are touched
    # only for the few matched LOIs below.
    ticks = np.concatenate(
        [run.reading_columns().gpu_timestamp_ticks for run in runs]
    )
    if synchronize:
        capture = np.asarray(
            [
                synchronizer_for_run(run, calibration).anchor_capture_cpu_s
                for run in runs
            ],
            dtype=float,
        )
        anchor_ticks = np.asarray([run.anchor.gpu_ticks for run in runs], dtype=np.int64)
        frequency = np.asarray([run.counter_frequency_hz for run in runs], dtype=float)
        delta = ticks - np.repeat(anchor_ticks, reading_counts)
        times = np.repeat(capture, reading_counts) + delta / np.repeat(
            frequency, reading_counts
        )
    else:
        logger_start = np.asarray(
            [
                float(run.metadata.get("logger_start_cpu_s", run.anchor.cpu_time_after_s))
                for run in runs
            ],
            dtype=float,
        )
        period = np.asarray([run.logger_period_s for run in runs], dtype=float)
        sample_index = np.arange(ticks.shape[0]) - np.repeat(
            reading_offsets[:-1], reading_counts
        )
        times = np.repeat(logger_start, reading_counts) + (
            sample_index + 1
        ) * np.repeat(period, reading_counts)

    pos = _first_containing_positions(
        starts, ends, times, same_group=exec_owner, group_of_time=reading_owner
    )
    local_positions = np.where(pos >= 0, pos - exec_offsets[reading_owner], -1)

    # Build the (few) LOI objects in one global pass, then slice the
    # reading-match arrays per run.
    lois_per_run: list[list[LogOfInterest]] = [[] for _ in runs]
    for i in np.nonzero(pos >= 0)[0]:
        ordinal = reading_owner[i]
        run = runs[ordinal]
        lois_per_run[ordinal].append(
            _loi_from(
                run.run_index,
                run.readings[i - reading_offsets[ordinal]],
                float(times[i]),
                run.executions[local_positions[i]],
            )
        )
    return [
        (
            lois_per_run[ordinal],
            (
                times[reading_offsets[ordinal]:reading_offsets[ordinal + 1]],
                local_positions[reading_offsets[ordinal]:reading_offsets[ordinal + 1]],
            ),
        )
        for ordinal in range(len(runs))
    ]


def extract_lois(
    run: RunRecord,
    synchronizer: ClockSynchronizer,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """Identify the logs of interest of one run (methodology step 7).

    A reading becomes an LOI when, after mapping its GPU timestamp into CPU
    time, its averaging-window end falls inside one of the run's executions.
    ``execution_indices`` optionally restricts the match to specific
    executions (e.g. only the SSP execution).

    All readings are mapped to CPU time in one array operation and matched
    against the sorted execution spans with a single binary search; the result
    is bit-identical to :func:`extract_lois_reference`.
    """
    wanted = set(execution_indices) if execution_indices is not None else None
    columns = run.reading_columns()
    if columns.num_readings == 0:
        return []
    window_ends = synchronizer.cpu_times_of(columns.gpu_timestamp_ticks)
    return _lois_from_window_ends(run, window_ends, wanted)


def extract_lois_reference(
    run: RunRecord,
    synchronizer: ClockSynchronizer,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """Pure-Python reference implementation of :func:`extract_lois`.

    One reading at a time, one linear execution scan per reading.  Kept for
    equivalence tests and for benchmarking the vectorized path against the
    original implementation.
    """
    wanted = set(execution_indices) if execution_indices is not None else None
    lois: list[LogOfInterest] = []
    for reading in run.readings:
        window_end = synchronizer.cpu_time_of(reading.gpu_timestamp_ticks)
        execution = match_execution(run.executions, window_end)
        if execution is None:
            continue
        if wanted is not None and execution.index not in wanted:
            continue
        lois.append(_loi_from(run.run_index, reading, window_end, execution))
    return lois


def extract_lois_unsynchronized(
    run: RunRecord,
    logger_start_cpu_s: float,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """LOI extraction using the naive index-based mapping (baseline)."""
    wanted = set(execution_indices) if execution_indices is not None else None
    if not run.readings:
        return []
    naive = NaiveIndexSynchronizer(
        logger_start_cpu_s=logger_start_cpu_s, period_s=run.logger_period_s
    )
    window_ends = naive.cpu_times_of_indices(len(run.readings))
    return _lois_from_window_ends(run, window_ends, wanted)


def extract_lois_unsynchronized_reference(
    run: RunRecord,
    logger_start_cpu_s: float,
    execution_indices: Iterable[int] | None = None,
) -> list[LogOfInterest]:
    """Pure-Python reference implementation of :func:`extract_lois_unsynchronized`."""
    naive = NaiveIndexSynchronizer(
        logger_start_cpu_s=logger_start_cpu_s, period_s=run.logger_period_s
    )
    wanted = set(execution_indices) if execution_indices is not None else None
    lois: list[LogOfInterest] = []
    for sample_index, reading in enumerate(run.readings):
        window_end = naive.cpu_time_of_index(sample_index)
        execution = match_execution(run.executions, window_end)
        if execution is None:
            continue
        if wanted is not None and execution.index not in wanted:
            continue
        lois.append(_loi_from(run.run_index, reading, window_end, execution))
    return lois


def synchronizer_for_run(
    run: RunRecord, calibration: DelayCalibration | None = None
) -> ClockSynchronizer:
    """Build the per-run synchroniser from the run's anchor."""
    return ClockSynchronizer(
        anchor=run.anchor,
        counter_frequency_hz=run.counter_frequency_hz,
        calibration=calibration,
    )


__all__ = [
    "ClockSynchronizer",
    "NaiveIndexSynchronizer",
    "match_execution",
    "match_execution_positions",
    "extract_lois",
    "extract_lois_batch",
    "extract_lois_reference",
    "extract_lois_unsynchronized",
    "extract_lois_unsynchronized_reference",
    "synchronizer_for_run",
]
