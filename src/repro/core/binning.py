"""Kernel execution-time binning and golden-run selection (paper S3).

Sub-millisecond kernels show run-to-run execution-time variation (challenge
C3), which makes it unsafe to correlate power measurements across runs
directly.  FinGraV bins runs by the execution time of their SSP execution and
keeps only the *golden runs*: the runs falling in the most populated bin,
where all execution times lie within the binning margin of each other
(methodology step 6).  Outlier runs are excluded from the common-case profile
(the paper discusses profiling outliers separately in Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class BinningResult:
    """Outcome of binning a set of per-run execution times."""

    margin: float
    selected_indices: tuple[int, ...]
    outlier_indices: tuple[int, ...]
    bin_low_s: float
    bin_high_s: float
    values_s: tuple[float, ...]

    @property
    def num_selected(self) -> int:
        return len(self.selected_indices)

    @property
    def num_outliers(self) -> int:
        return len(self.outlier_indices)

    @property
    def selection_ratio(self) -> float:
        total = len(self.values_s)
        return self.num_selected / total if total else 0.0

    @property
    def bin_center_s(self) -> float:
        return 0.5 * (self.bin_low_s + self.bin_high_s)

    def selected_values(self) -> list[float]:
        return [self.values_s[i] for i in self.selected_indices]

    def spread(self) -> float:
        """Relative spread (max/min - 1) of the selected execution times."""
        values = self.selected_values()
        if not values:
            return 0.0
        low, high = min(values), max(values)
        return high / low - 1.0 if low > 0 else 0.0


class ExecutionTimeBinner:
    """Selects the most-populated execution-time bin within a relative margin."""

    def __init__(self, margin: float) -> None:
        if margin <= 0:
            raise ValueError("binning margin must be positive")
        self._margin = margin

    @property
    def margin(self) -> float:
        return self._margin

    def bin(self, values_s: Sequence[float]) -> BinningResult:
        """Bin execution times and return the golden selection.

        The bin is found with a sliding window over the sorted values: the
        largest contiguous group whose extremes differ by at most ``margin``
        (relative to the group's minimum) wins.  Ties prefer the group with
        the smaller internal spread, which favours the tighter cluster.
        """
        if not values_s:
            raise ValueError("cannot bin an empty set of execution times")
        for value in values_s:
            if value <= 0:
                raise ValueError("execution times must be positive")

        order = np.argsort(values_s)
        sorted_values = np.asarray(values_s, dtype=float)[order]
        n = len(sorted_values)

        best_start, best_end = 0, 1
        best_count = 1
        best_spread = 0.0
        start = 0
        for end in range(1, n + 1):
            # Shrink the window until it satisfies the margin.
            while sorted_values[end - 1] > sorted_values[start] * (1.0 + self._margin):
                start += 1
            count = end - start
            spread = sorted_values[end - 1] / sorted_values[start] - 1.0
            if count > best_count or (count == best_count and spread < best_spread):
                best_count = count
                best_spread = spread
                best_start, best_end = start, end

        selected_sorted_positions = range(best_start, best_end)
        selected = tuple(sorted(int(order[pos]) for pos in selected_sorted_positions))
        selected_set = set(selected)
        outliers = tuple(i for i in range(n) if i not in selected_set)
        return BinningResult(
            margin=self._margin,
            selected_indices=selected,
            outlier_indices=outliers,
            bin_low_s=float(sorted_values[best_start]),
            bin_high_s=float(sorted_values[best_end - 1]),
            values_s=tuple(float(v) for v in values_s),
        )

    def bin_around(self, values_s: Sequence[float], target_s: float) -> BinningResult:
        """Select runs whose execution time lies within the margin of ``target_s``.

        This is the variant the paper suggests for profiling *outlier*
        executions (Section VI): instead of the most populated bin, focus on a
        specific execution time.
        """
        if target_s <= 0:
            raise ValueError("target execution time must be positive")
        if not values_s:
            raise ValueError("cannot bin an empty set of execution times")
        low = target_s / (1.0 + self._margin)
        high = target_s * (1.0 + self._margin)
        selected = tuple(i for i, v in enumerate(values_s) if low <= v <= high)
        selected_set = set(selected)
        outliers = tuple(i for i in range(len(values_s)) if i not in selected_set)
        chosen = [values_s[i] for i in selected]
        return BinningResult(
            margin=self._margin,
            selected_indices=selected,
            outlier_indices=outliers,
            bin_low_s=min(chosen) if chosen else target_s,
            bin_high_s=max(chosen) if chosen else target_s,
            values_s=tuple(float(v) for v in values_s),
        )


def histogram_of_durations(
    values_s: Sequence[float], bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of execution times (counts, bin edges); convenience for reports."""
    if not values_s:
        raise ValueError("cannot histogram an empty set of execution times")
    counts, edges = np.histogram(np.asarray(values_s, dtype=float), bins=bins)
    return counts, edges


__all__ = ["BinningResult", "ExecutionTimeBinner", "histogram_of_durations"]
