"""Kernel execution-time binning and golden-run selection (paper S3).

Sub-millisecond kernels show run-to-run execution-time variation (challenge
C3), which makes it unsafe to correlate power measurements across runs
directly.  FinGraV bins runs by the execution time of their SSP execution and
keeps only the *golden runs*: the runs falling in the most populated bin,
where all execution times lie within the binning margin of each other
(methodology step 6).  Outlier runs are excluded from the common-case profile
(the paper discusses profiling outliers separately in Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class BinningResult:
    """Outcome of binning a set of per-run execution times."""

    margin: float
    selected_indices: tuple[int, ...]
    outlier_indices: tuple[int, ...]
    bin_low_s: float
    bin_high_s: float
    values_s: tuple[float, ...]

    @property
    def num_selected(self) -> int:
        return len(self.selected_indices)

    @property
    def is_empty(self) -> bool:
        """True when no run fell into the bin (``bin_around`` with no hits)."""
        return not self.selected_indices

    @property
    def num_outliers(self) -> int:
        return len(self.outlier_indices)

    @property
    def selection_ratio(self) -> float:
        total = len(self.values_s)
        return self.num_selected / total if total else 0.0

    @property
    def bin_center_s(self) -> float:
        return 0.5 * (self.bin_low_s + self.bin_high_s)

    def selected_values(self) -> list[float]:
        return [self.values_s[i] for i in self.selected_indices]

    def spread(self) -> float:
        """Relative spread (max/min - 1) of the selected execution times."""
        values = self.selected_values()
        if not values:
            return 0.0
        low, high = min(values), max(values)
        return high / low - 1.0 if low > 0 else 0.0


class ExecutionTimeBinner:
    """Selects the most-populated execution-time bin within a relative margin.

    :meth:`bin` is the stateless reference implementation (one pure-Python
    sliding window over a fresh sort).  :meth:`extend` is its incremental
    counterpart for the profiler's top-up loop: the binner keeps the sorted
    value array across calls, merges each new batch with ``O(batch log n)``
    binary searches (plus one array splice) and re-selects the golden window
    with vectorized array operations instead of re-scanning every duration in
    Python.  Both produce bit-identical :class:`BinningResult`\\ s.
    """

    def __init__(self, margin: float) -> None:
        if margin <= 0:
            raise ValueError("binning margin must be positive")
        self._margin = margin
        # Incremental state (used only by extend()).
        self._values: list[float] = []
        self._sorted: np.ndarray = np.empty(0, dtype=float)
        self._sorted_index: np.ndarray = np.empty(0, dtype=np.int64)

    @property
    def margin(self) -> float:
        return self._margin

    @property
    def num_values(self) -> int:
        """How many execution times the incremental state currently holds."""
        return len(self._values)

    def bin(self, values_s: Sequence[float]) -> BinningResult:
        """Bin execution times and return the golden selection.

        The bin is found with a sliding window over the sorted values: the
        largest contiguous group whose extremes differ by at most ``margin``
        (relative to the group's minimum) wins.  Ties prefer the group with
        the smaller internal spread, which favours the tighter cluster.
        """
        if not values_s:
            raise ValueError("cannot bin an empty set of execution times")
        for value in values_s:
            if value <= 0:
                raise ValueError("execution times must be positive")

        order = np.argsort(values_s)
        sorted_values = np.asarray(values_s, dtype=float)[order]
        n = len(sorted_values)

        best_start, best_end = 0, 1
        best_count = 1
        best_spread = 0.0
        start = 0
        for end in range(1, n + 1):
            # Shrink the window until it satisfies the margin.
            while sorted_values[end - 1] > sorted_values[start] * (1.0 + self._margin):
                start += 1
            count = end - start
            spread = sorted_values[end - 1] / sorted_values[start] - 1.0
            if count > best_count or (count == best_count and spread < best_spread):
                best_count = count
                best_spread = spread
                best_start, best_end = start, end

        selected_sorted_positions = range(best_start, best_end)
        selected = tuple(sorted(int(order[pos]) for pos in selected_sorted_positions))
        selected_set = set(selected)
        outliers = tuple(i for i in range(n) if i not in selected_set)
        return BinningResult(
            margin=self._margin,
            selected_indices=selected,
            outlier_indices=outliers,
            bin_low_s=float(sorted_values[best_start]),
            bin_high_s=float(sorted_values[best_end - 1]),
            values_s=tuple(float(v) for v in values_s),
        )

    def extend(self, new_values_s: Sequence[float]) -> BinningResult:
        """Add a batch of execution times and re-select the golden bin.

        Equivalent to calling :meth:`bin` on all values seen so far (the
        equivalence is pinned by tests), but without re-sorting or re-scanning
        the accumulated durations: the new batch is merged into the maintained
        sorted array, and the sliding-window selection runs as array
        operations.  Indices in the returned result refer to the order the
        values were supplied across all :meth:`extend` calls.
        """
        new = np.asarray(list(new_values_s), dtype=float)
        if new.size and bool(np.any(new <= 0)):
            raise ValueError("execution times must be positive")
        base = len(self._values)
        self._values.extend(float(value) for value in new)
        if not self._values:
            raise ValueError("cannot bin an empty set of execution times")
        if new.size:
            order = np.argsort(new, kind="stable")
            batch = new[order]
            batch_index = (base + order).astype(np.int64)
            if self._sorted.size == 0:
                self._sorted = batch
                self._sorted_index = batch_index
            else:
                positions = np.searchsorted(self._sorted, batch, side="left")
                self._sorted = np.insert(self._sorted, positions, batch)
                self._sorted_index = np.insert(self._sorted_index, positions, batch_index)
        return self._select_window()

    def _select_window(self) -> BinningResult:
        """Vectorized golden-window selection over the maintained sorted array.

        Replicates the scalar two-pointer scan of :meth:`bin` exactly: for the
        window ending at each sorted position, the minimal start satisfying
        the margin is found by binary search and then corrected with the
        *same multiplication predicate* the scalar code uses (the division in
        the search key may round differently at bin boundaries); the winner is
        the first window, in end order, with maximal count and minimal spread.
        """
        sorted_values = self._sorted
        n = sorted_values.size
        limit = 1.0 + self._margin
        start = np.searchsorted(sorted_values, sorted_values / limit, side="left")
        while True:
            invalid = sorted_values > sorted_values[start] * limit
            if not bool(invalid.any()):
                break
            start = start + invalid
        while True:
            previous = np.maximum(start - 1, 0)
            can_grow = (start > 0) & (sorted_values <= sorted_values[previous] * limit)
            if not bool(can_grow.any()):
                break
            start = start - can_grow
        counts = np.arange(1, n + 1) - start
        spreads = sorted_values / sorted_values[start] - 1.0
        best_count = int(counts.max())
        candidate_spreads = np.where(counts == best_count, spreads, np.inf)
        best_end = int(np.argmin(candidate_spreads))  # first occurrence = scan order
        best_start = int(start[best_end])
        selected = tuple(
            sorted(int(i) for i in self._sorted_index[best_start:best_end + 1])
        )
        selected_set = set(selected)
        outliers = tuple(i for i in range(n) if i not in selected_set)
        return BinningResult(
            margin=self._margin,
            selected_indices=selected,
            outlier_indices=outliers,
            bin_low_s=float(sorted_values[best_start]),
            bin_high_s=float(sorted_values[best_end]),
            values_s=tuple(self._values),
        )

    def bin_around(self, values_s: Sequence[float], target_s: float) -> BinningResult:
        """Select runs whose execution time lies within the margin of ``target_s``.

        This is the variant the paper suggests for profiling *outlier*
        executions (Section VI): instead of the most populated bin, focus on a
        specific execution time.  When no value falls within the margin the
        result is an explicit empty bin (``is_empty`` true, NaN bounds) rather
        than a fake zero-width bin at ``target_s``.
        """
        if target_s <= 0:
            raise ValueError("target execution time must be positive")
        if not values_s:
            raise ValueError("cannot bin an empty set of execution times")
        low = target_s / (1.0 + self._margin)
        high = target_s * (1.0 + self._margin)
        selected = tuple(i for i, v in enumerate(values_s) if low <= v <= high)
        selected_set = set(selected)
        outliers = tuple(i for i in range(len(values_s)) if i not in selected_set)
        chosen = [values_s[i] for i in selected]
        return BinningResult(
            margin=self._margin,
            selected_indices=selected,
            outlier_indices=outliers,
            bin_low_s=min(chosen) if chosen else float("nan"),
            bin_high_s=max(chosen) if chosen else float("nan"),
            values_s=tuple(float(v) for v in values_s),
        )


def histogram_of_durations(
    values_s: Sequence[float], bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of execution times (counts, bin edges); convenience for reports."""
    if not values_s:
        raise ValueError("cannot histogram an empty set of execution times")
    counts, edges = np.histogram(np.asarray(values_s, dtype=float), bins=bins)
    return counts, edges


__all__ = ["BinningResult", "ExecutionTimeBinner", "histogram_of_durations"]
