"""FinGraV methodology: fine-grain GPU power profiling (the paper's contribution).

The core package is platform-agnostic: it drives any
:class:`~repro.core.backend.ProfilingBackend` through the nine methodology
steps of paper Section IV-B and produces :class:`~repro.core.profile.FineGrainProfile`
objects (SSE, SSP, and whole-run views), together with the guidance table,
binning, time-sync and differentiation building blocks.
"""

from .backend import PrecedingWork, ProfilingBackend
from .baselines import (
    CoarseSamplerEstimator,
    CoverageReport,
    full_methodology_profiler,
    no_binning_profiler,
    reduced_runs_profiler,
    sse_only_profiler,
    unsynchronized_profiler,
)
from .binning import BinningResult, ExecutionTimeBinner, histogram_of_durations
from .differentiation import (
    DifferentiationPlan,
    StabilitySearchResult,
    WarmupAnalysis,
    analyze_warmups,
    build_plan,
    detect_throttling,
    search_power_stable_executions,
    ssp_execution_count,
)
from .guidance import GuidanceEntry, GuidanceTable, PAPER_GUIDANCE, paper_guidance_table
from .profile import (
    FineGrainProfile,
    ProfileColumns,
    ProfileKind,
    ProfilePoint,
    columns_from_lois,
    measurement_error,
    profile_from_lois,
    profile_from_lois_reference,
)
from .profiler import (
    PROFILE_SECTIONS,
    FinGraVProfiler,
    FinGraVResult,
    ProfilerConfig,
    SlimFinGraVResult,
    normalize_profile_sections,
)
from .records import (
    COMPONENT_KEYS,
    DelayCalibration,
    ExecutionColumns,
    ExecutionRole,
    ExecutionTiming,
    LogOfInterest,
    PowerReading,
    ReadingColumns,
    RunRecord,
    TimestampAnchor,
)
from .report import (
    comparative_report,
    format_duration,
    format_table,
    guidance_report,
    profile_summary_row,
    result_report,
)
from .session import ProfileSession, ProfileSnapshot, STOP_REASONS
from .stitching import ProfileStitcher, StitchedRunSeries
from .timesync import (
    ClockSynchronizer,
    NaiveIndexSynchronizer,
    extract_lois,
    extract_lois_reference,
    extract_lois_unsynchronized,
    extract_lois_unsynchronized_reference,
    match_execution,
    match_execution_positions,
    synchronizer_for_run,
)

__all__ = [
    "PrecedingWork",
    "ProfilingBackend",
    "CoarseSamplerEstimator",
    "CoverageReport",
    "full_methodology_profiler",
    "no_binning_profiler",
    "reduced_runs_profiler",
    "sse_only_profiler",
    "unsynchronized_profiler",
    "BinningResult",
    "ExecutionTimeBinner",
    "histogram_of_durations",
    "DifferentiationPlan",
    "StabilitySearchResult",
    "WarmupAnalysis",
    "analyze_warmups",
    "build_plan",
    "detect_throttling",
    "search_power_stable_executions",
    "ssp_execution_count",
    "GuidanceEntry",
    "GuidanceTable",
    "PAPER_GUIDANCE",
    "paper_guidance_table",
    "FineGrainProfile",
    "ProfileColumns",
    "ProfileKind",
    "ProfilePoint",
    "columns_from_lois",
    "measurement_error",
    "profile_from_lois",
    "profile_from_lois_reference",
    "FinGraVProfiler",
    "FinGraVResult",
    "SlimFinGraVResult",
    "ProfilerConfig",
    "PROFILE_SECTIONS",
    "normalize_profile_sections",
    "COMPONENT_KEYS",
    "DelayCalibration",
    "ExecutionColumns",
    "ExecutionRole",
    "ExecutionTiming",
    "LogOfInterest",
    "PowerReading",
    "ReadingColumns",
    "RunRecord",
    "TimestampAnchor",
    "comparative_report",
    "format_duration",
    "format_table",
    "guidance_report",
    "profile_summary_row",
    "result_report",
    "ProfileSession",
    "ProfileSnapshot",
    "STOP_REASONS",
    "ProfileStitcher",
    "StitchedRunSeries",
    "ClockSynchronizer",
    "NaiveIndexSynchronizer",
    "extract_lois",
    "extract_lois_reference",
    "extract_lois_unsynchronized",
    "extract_lois_unsynchronized_reference",
    "match_execution",
    "match_execution_positions",
    "synchronizer_for_run",
]
