"""CSV / JSON export of profiles and experiment tables.

Keeps the experiment drivers and examples free of serialisation boilerplate:
profiles and row-lists can be written to disk for downstream plotting with any
external tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.profile import FineGrainProfile, ProfileColumns, ProfileKind, load_npz_payload


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of homogeneous row mappings to a CSV file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def rows_to_json(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of row mappings to a JSON file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump([dict(row) for row in rows], handle, indent=2, default=float)
    return path


def profile_to_csv(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile's points to CSV.

    Streams the profile's column arrays directly; when every component is
    fully present (the normal case) no per-point dictionaries are built.
    """
    if profile.is_empty:
        raise ValueError(f"profile of {profile.kernel_name} is empty")
    cols = profile.columns()
    if cols.masks:
        # Ragged component presence: fall back to per-row dictionaries.
        return rows_to_csv(profile.to_rows(), path)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = ["time_s", *(f"{name}_w" for name in cols.powers_w),
                  "run_index", "execution_index"]
    columns = [cols.time_s, *cols.powers_w.values(), cols.run_index, cols.execution_index]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fieldnames)
        writer.writerows(zip(*columns))
    return path


#: Scalar npz members carried next to the column arrays by the profile export.
_PROFILE_SCALARS = ("kernel", "kind", "execution_time_s")


def profile_to_npz(
    profile: FineGrainProfile, path: str | Path, compressed: bool = True
) -> Path:
    """Write a profile's column arrays to an ``.npz`` bundle.

    The lossless array-native export, sharing the canonical
    :meth:`ProfileColumns.to_payload` layout (``time_s`` / ``run_index`` /
    ``execution_index`` / ``components`` plus one ``power_<component>_w``
    array and, for partially present components, a ``mask_<component>``
    boolean array) with three scalar members for the profile identity.
    ``compressed=False`` writes a stored (uncompressed) archive whose arrays
    :func:`profile_from_npz` can memory-map.
    """
    if profile.is_empty:
        raise ValueError(f"profile of {profile.kernel_name} is empty")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    save = np.savez_compressed if compressed else np.savez
    with path.open("wb") as handle:
        save(
            handle,
            kernel=np.asarray(profile.kernel_name),
            kind=np.asarray(profile.kind.value),
            execution_time_s=np.asarray(profile.execution_time_s),
            **profile.columns().to_payload(),
        )
    return path


def profile_from_npz(
    path: str | Path,
    mmap_mode: str | None = None,
    metadata: Mapping[str, object] | None = None,
) -> FineGrainProfile:
    """Load a profile written by :func:`profile_to_npz`.

    The columnar inverse of the export: bit-identical arrays, masks included.
    ``mmap_mode="r"`` maps the arrays of an uncompressed archive instead of
    copying them (see :func:`repro.core.profile.load_npz_payload`).  Also
    reads pre-``components``-key archives from older exports.
    """
    payload = load_npz_payload(Path(path), mmap_mode=mmap_mode)
    missing = [key for key in _PROFILE_SCALARS if key not in payload]
    if missing:
        raise ValueError(f"{path} is not a profile export: missing {missing}")
    scalars = {key: payload.pop(key) for key in _PROFILE_SCALARS}
    return FineGrainProfile(
        kernel_name=str(scalars["kernel"]),
        kind=ProfileKind(str(scalars["kind"])),
        execution_time_s=float(scalars["execution_time_s"]),
        metadata=metadata,
        columns=ProfileColumns.from_payload(payload),
    )


def profile_to_json(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile (points + metadata) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "kernel": profile.kernel_name,
        "kind": profile.kind.value,
        "execution_time_s": profile.execution_time_s,
        "metadata": dict(profile.metadata),
        "points": profile.to_rows(),
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


__all__ = [
    "rows_to_csv",
    "rows_to_json",
    "profile_to_csv",
    "profile_to_json",
    "profile_to_npz",
    "profile_from_npz",
]
