"""CSV / JSON export of profiles and experiment tables.

Keeps the experiment drivers and examples free of serialisation boilerplate:
profiles and row-lists can be written to disk for downstream plotting with any
external tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from ..core.profile import FineGrainProfile


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of homogeneous row mappings to a CSV file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def rows_to_json(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of row mappings to a JSON file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump([dict(row) for row in rows], handle, indent=2, default=float)
    return path


def profile_to_csv(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile's points to CSV."""
    if profile.is_empty:
        raise ValueError(f"profile of {profile.kernel_name} is empty")
    return rows_to_csv(profile.to_rows(), path)


def profile_to_json(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile (points + metadata) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "kernel": profile.kernel_name,
        "kind": profile.kind.value,
        "execution_time_s": profile.execution_time_s,
        "metadata": dict(profile.metadata),
        "points": profile.to_rows(),
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


__all__ = ["rows_to_csv", "rows_to_json", "profile_to_csv", "profile_to_json"]
