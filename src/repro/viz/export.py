"""CSV / JSON export of profiles and experiment tables.

Keeps the experiment drivers and examples free of serialisation boilerplate:
profiles and row-lists can be written to disk for downstream plotting with any
external tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from ..core.profile import FineGrainProfile


def rows_to_csv(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of homogeneous row mappings to a CSV file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames: list[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow(dict(row))
    return path


def rows_to_json(rows: Sequence[Mapping[str, object]], path: str | Path) -> Path:
    """Write a list of row mappings to a JSON file."""
    if not rows:
        raise ValueError("nothing to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump([dict(row) for row in rows], handle, indent=2, default=float)
    return path


def profile_to_csv(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile's points to CSV.

    Streams the profile's column arrays directly; when every component is
    fully present (the normal case) no per-point dictionaries are built.
    """
    if profile.is_empty:
        raise ValueError(f"profile of {profile.kernel_name} is empty")
    cols = profile.columns()
    if cols.masks:
        # Ragged component presence: fall back to per-row dictionaries.
        return rows_to_csv(profile.to_rows(), path)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = ["time_s", *(f"{name}_w" for name in cols.powers_w),
                  "run_index", "execution_index"]
    columns = [cols.time_s, *cols.powers_w.values(), cols.run_index, cols.execution_index]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(fieldnames)
        writer.writerows(zip(*columns))
    return path


def profile_to_npz(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a profile's column arrays to a compressed ``.npz`` bundle.

    The lossless array-native export: ``time_s`` / ``run_index`` /
    ``execution_index`` plus one ``power_<component>_w`` array (and, for
    partially present components, a ``mask_<component>`` boolean array).
    """
    if profile.is_empty:
        raise ValueError(f"profile of {profile.kernel_name} is empty")
    cols = profile.columns()
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {
        "time_s": cols.time_s,
        "run_index": cols.run_index,
        "execution_index": cols.execution_index,
    }
    for name, values in cols.powers_w.items():
        arrays[f"power_{name}_w"] = values
    for name, mask in cols.masks.items():
        arrays[f"mask_{name}"] = mask
    np.savez_compressed(
        path,
        kernel=np.asarray(profile.kernel_name),
        kind=np.asarray(profile.kind.value),
        execution_time_s=np.asarray(profile.execution_time_s),
        **arrays,
    )
    return path


def profile_to_json(profile: FineGrainProfile, path: str | Path) -> Path:
    """Write a fine-grain profile (points + metadata) to JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "kernel": profile.kernel_name,
        "kind": profile.kind.value,
        "execution_time_s": profile.execution_time_s,
        "metadata": dict(profile.metadata),
        "points": profile.to_rows(),
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=2, default=float)
    return path


__all__ = [
    "rows_to_csv",
    "rows_to_json",
    "profile_to_csv",
    "profile_to_json",
    "profile_to_npz",
]
