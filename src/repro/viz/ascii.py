"""ASCII rendering of power profiles.

The offline environment has no plotting stack, so the examples and experiment
drivers render profiles as plain-text scatter/line charts.  The goal is not
beauty but being able to eyeball the same shapes the paper's figures show
(warm-up ramp, throttle dip, SSE-to-SSP rise) straight from a terminal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.profile import FineGrainProfile


def render_series(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 72,
    height: int = 16,
    x_label: str = "time",
    y_label: str = "power (W)",
    marker: str = "*",
) -> str:
    """Render an (x, y) scatter as an ASCII chart."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) == 0:
        return "(empty series)"
    if width < 16 or height < 4:
        raise ValueError("chart must be at least 16x4 characters")
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    x_min, x_max = float(xs.min()), float(xs.max())
    y_min, y_max = float(ys.min()), float(ys.max())
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(xs, ys):
        col = int((xi - x_min) / x_span * (width - 1))
        row = height - 1 - int((yi - y_min) / y_span * (height - 1))
        grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{y_max:8.1f} |"
        elif row_index == height - 1:
            label = f"{y_min:8.1f} |"
        else:
            label = " " * 9 + "|"
        lines.append(label + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{x_min:g}".ljust(width // 2)
        + f"{x_max:g}".rjust(width // 2)
    )
    lines.append(" " * 10 + f"x: {x_label}    y: {y_label}")
    return "\n".join(lines)


def render_profile(
    profile: FineGrainProfile,
    component: str = "total",
    width: int = 72,
    height: int = 16,
    time_unit: str = "ms",
) -> str:
    """Render a fine-grain profile as an ASCII scatter chart."""
    if profile.is_empty:
        return f"(profile of {profile.kernel_name} is empty)"
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}.get(time_unit)
    if scale is None:
        raise ValueError("time_unit must be one of 's', 'ms', 'us'")
    times, powers = profile.component_points(component)
    times = times * scale
    header = (
        f"{profile.kernel_name} [{profile.kind.value}] {component} power, "
        f"{len(profile)} points"
    )
    chart = render_series(
        times, powers, width=width, height=height,
        x_label=f"time ({time_unit})", y_label=f"{component} power (W)",
    )
    return header + "\n" + chart


def render_bar_chart(
    values: dict[str, float],
    width: int = 50,
    value_format: str = "{:.1f}",
) -> str:
    """Render a labelled horizontal bar chart (used for component comparisons)."""
    if not values:
        return "(no values)"
    label_width = max(len(label) for label in values)
    maximum = max(values.values())
    if maximum <= 0:
        raise ValueError("bar chart needs at least one positive value")
    lines = []
    for label, value in values.items():
        bar = "#" * max(int(round(value / maximum * width)), 0)
        lines.append(
            f"{label.ljust(label_width)} | {bar.ljust(width)} {value_format.format(value)}"
        )
    return "\n".join(lines)


__all__ = ["render_series", "render_profile", "render_bar_chart"]
