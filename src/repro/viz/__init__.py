"""Plain-text visualisation and export helpers (no plotting dependencies)."""

from .ascii import render_bar_chart, render_profile, render_series
from .export import (
    profile_from_npz,
    profile_to_csv,
    profile_to_json,
    profile_to_npz,
    rows_to_csv,
    rows_to_json,
)

__all__ = [
    "render_bar_chart",
    "render_profile",
    "render_series",
    "profile_to_csv",
    "profile_to_json",
    "profile_to_npz",
    "profile_from_npz",
    "rows_to_csv",
    "rows_to_json",
]
