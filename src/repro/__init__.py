"""FinGraV reproduction: fine-grain GPU power visibility and insights.

Reproduction of *FinGraV: Methodology for Fine-Grain GPU Power Visibility and
Insights* (ISPASS 2025) as a Python library:

* :mod:`repro.core`        -- the FinGraV methodology (time sync, binning,
  SSE/SSP differentiation, stitching, the nine-step profiler).
* :mod:`repro.gpu`         -- the simulated MI300X-class GPU, its power model,
  DVFS firmware and 1 ms averaging power logger (hardware substitute).
* :mod:`repro.kernels`     -- GEMM/GEMV and collective operator substrate.
* :mod:`repro.analysis`    -- comparative, interleaving, proportionality and
  insight analyses (paper Table II).
* :mod:`repro.experiments` -- one driver per paper table and figure.

Quickstart::

    from repro import SimulatedDeviceBackend, FinGraVProfiler, cb_gemm

    backend = SimulatedDeviceBackend(seed=0)
    profiler = FinGraVProfiler(backend)
    result = profiler.profile(cb_gemm(4096), runs=60)
    print(result.ssp_profile.mean_power_w("total"))
"""

from .core import (
    FineGrainProfile,
    FinGraVProfiler,
    FinGraVResult,
    GuidanceTable,
    ProfileKind,
    ProfilerConfig,
    paper_guidance_table,
)
from .gpu import (
    GPUSpec,
    InfinityPlatform,
    PlatformSpec,
    SimulatedDeviceBackend,
    SimulatedGPU,
    mi300x_platform_spec,
    mi300x_spec,
)
from .kernels import (
    CollectiveKernel,
    GemmKernel,
    GemvKernel,
    RCCLLikeLibrary,
    RocBLASLikeLibrary,
    all_gather,
    all_reduce,
    cb_gemm,
    cb_gemms,
    collective_suite,
    gemm_suite,
    interleaving_scenarios,
    mb_gemv,
    mb_gemvs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FineGrainProfile",
    "FinGraVProfiler",
    "FinGraVResult",
    "GuidanceTable",
    "ProfileKind",
    "ProfilerConfig",
    "paper_guidance_table",
    "GPUSpec",
    "InfinityPlatform",
    "PlatformSpec",
    "SimulatedDeviceBackend",
    "SimulatedGPU",
    "mi300x_platform_spec",
    "mi300x_spec",
    "CollectiveKernel",
    "GemmKernel",
    "GemvKernel",
    "RCCLLikeLibrary",
    "RocBLASLikeLibrary",
    "all_gather",
    "all_reduce",
    "cb_gemm",
    "cb_gemms",
    "collective_suite",
    "gemm_suite",
    "interleaving_scenarios",
    "mb_gemv",
    "mb_gemvs",
]
