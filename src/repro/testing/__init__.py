"""Test/ops harnesses that ship with the library (not test-suite-only code).

``repro.testing.faults`` is the deterministic fault-injection harness the
sweep engine's supervised dispatcher is validated against; it is wired
through the ``FINGRAV_FAULT_PLAN`` environment knob so operators can rehearse
worker crashes, hangs and cache corruption against a real sweep (see
``docs/sweep.md``).  The future distributed sweep service reuses the same
plans, which is why this lives in ``src`` rather than ``tests/``.
"""

from . import faults

__all__ = ["faults"]
