"""Deterministic fault injection for the sweep execution layer.

A :class:`FaultPlan` is a small, JSON-serialisable list of :class:`FaultSpec`
entries describing *where* a fault fires (a job id, or any job matching a
substring), *what* it does (kill the worker, hang, raise, corrupt the job's
cache entry) and *for how many attempts* it keeps firing.  Matching is purely
a function of ``(job id, attempt number)`` -- no wall clocks, no randomness,
no cross-process state -- so a faulted sweep is exactly as deterministic as a
clean one: a fault with ``attempts=1`` fires on a job's first attempt and
never again, which is what lets the fault tests assert bit-identical results
with and without injection.

Plans reach the sweep through the ``FINGRAV_FAULT_PLAN`` environment knob
(either inline JSON or ``@/path/to/plan.json``); worker processes honour the
same knob, and :class:`~repro.experiments.sweep.SweepRunner` additionally
ships the resolved plan with each dispatched job so spawn-style pools that do
not inherit a live environment behave identically.

Fault kinds:

``crash``
    The worker process exits hard (``os._exit``), modelling a segfaulting
    compiled provider.  The supervising dispatcher sees the broken pool,
    rebuilds it, and retries every job that was in flight.
``hang``
    The worker sleeps (default far longer than any sane job timeout),
    modelling a wedged job.  The dispatcher's watchdog times the job out,
    kills the pool and retries.  If no timeout is configured the sleep
    eventually elapses and raises :class:`TransientInjectedFault` so the
    sweep still terminates.
``exception``
    The job raises before running: :class:`TransientInjectedFault`
    (retryable) by default, :class:`InjectedFault` (fatal) with
    ``retryable=false``.
``cache_corrupt``
    Fires in the *parent* at cache-load time: the job's on-disk cache entry
    is overwritten with garbage before the load, exercising the
    quarantine-and-recompute path against genuine corruption.

``crash`` and ``hang`` need a worker pool to be survivable; if one matches a
job running inline (``workers=1``) the harness raises a fatal
:class:`InjectedFault` instead of killing or wedging the caller's process.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from pathlib import Path

#: Environment knob: inline JSON, or ``@/path/to/plan.json``.
ENV_FAULT_PLAN = "FINGRAV_FAULT_PLAN"

#: Kinds that fire inside job execution (worker side).
EXECUTE_KINDS = ("crash", "hang", "exception")

#: Kinds that fire at cache-load time (parent side).
CACHE_KINDS = ("cache_corrupt",)

FAULT_KINDS = EXECUTE_KINDS + CACHE_KINDS

#: Bytes an injected cache corruption stamps over the entry, so operators can
#: tell an injected corruption from a real one when inspecting quarantine.
_CORRUPTION_STAMP = b"\x00fingrav: injected cache corruption\x00"


class FaultPlanError(ValueError):
    """A fault plan failed to parse or validate."""


class InjectedFault(RuntimeError):
    """An injected, genuinely-fatal job failure (not retried)."""


class TransientInjectedFault(InjectedFault):
    """An injected transient failure; the retry taxonomy retries these."""


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it fires, what it does, how many attempts it haunts.

    ``job_id`` matches exactly; ``match`` matches any job id containing the
    substring; giving both requires both; giving neither matches every job.
    Execute-site faults fire while ``attempt < attempts`` (attempts are
    0-indexed), so a spec with ``attempts=1`` costs the job exactly one
    retry.  Cache faults ignore ``attempts``: they corrupt whatever entry is
    on disk, and quarantine removes it, so they naturally fire at most once
    per sweep.
    """

    kind: str
    job_id: str | None = None
    match: str | None = None
    attempts: int = 1
    #: Hang duration; long enough that any configured watchdog fires first.
    seconds: float = 600.0
    #: ``exception`` faults only: transient (retryable) vs fatal.
    retryable: bool = True
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )
        if self.attempts < 1:
            raise FaultPlanError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.seconds <= 0:
            raise FaultPlanError(f"fault seconds must be positive, got {self.seconds}")

    def matches_job(self, job_id: str) -> bool:
        if self.job_id is not None and job_id != self.job_id:
            return False
        if self.match is not None and self.match not in job_id:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of faults; first matching spec per site wins."""

    faults: tuple[FaultSpec, ...] = ()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_payload(cls, payload: object) -> "FaultPlan":
        """Build a plan from parsed JSON: a list of spec objects, or
        ``{"faults": [...]}``."""
        if isinstance(payload, dict):
            payload = payload.get("faults", None)
            if payload is None:
                raise FaultPlanError('fault plan object must carry a "faults" list')
        if not isinstance(payload, list):
            raise FaultPlanError(
                f"fault plan must be a JSON list of fault objects, got {type(payload).__name__}"
            )
        specs = []
        valid = {f for f in FaultSpec.__dataclass_fields__}
        for index, item in enumerate(payload):
            if not isinstance(item, dict):
                raise FaultPlanError(f"fault #{index} must be an object, got {item!r}")
            unknown = sorted(set(item) - valid)
            if unknown:
                raise FaultPlanError(
                    f"fault #{index} has unknown key(s) {unknown}; valid keys: {sorted(valid)}"
                )
            if "kind" not in item:
                raise FaultPlanError(f'fault #{index} is missing the required "kind"')
            specs.append(FaultSpec(**item))
        return cls(faults=tuple(specs))

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from JSON text (what ``FINGRAV_FAULT_PLAN`` holds)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_payload(payload)

    def to_payload(self) -> list[dict]:
        return [asdict(spec) for spec in self.faults]

    def to_json(self) -> str:
        return json.dumps(self.to_payload())

    # ------------------------------------------------------------------ #
    def execute_fault(self, job_id: str, attempt: int) -> FaultSpec | None:
        """The execute-site fault that fires for this (job, attempt), if any."""
        for spec in self.faults:
            if (
                spec.kind in EXECUTE_KINDS
                and spec.matches_job(job_id)
                and attempt < spec.attempts
            ):
                return spec
        return None

    def cache_fault(self, job_id: str) -> FaultSpec | None:
        """The cache-site fault that fires for this job's entry, if any."""
        for spec in self.faults:
            if spec.kind in CACHE_KINDS and spec.matches_job(job_id):
                return spec
        return None


def active_plan(environ: os._Environ | dict | None = None) -> FaultPlan | None:
    """The plan named by ``FINGRAV_FAULT_PLAN``, or None when unset/empty.

    The value is inline JSON, or ``@path`` to read the JSON from a file.
    Malformed plans raise :class:`FaultPlanError` -- a typo'd plan must never
    silently run a fault-free sweep that claims to have been faulted.
    """
    raw = (environ if environ is not None else os.environ).get(ENV_FAULT_PLAN, "")
    raw = raw.strip()
    if not raw:
        return None
    if raw.startswith("@"):
        path = Path(raw[1:])
        try:
            raw = path.read_text()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan file {path}: {exc}") from exc
    return FaultPlan.parse(raw)


def fire(spec: FaultSpec, *, in_worker: bool) -> None:
    """Trigger an execute-site fault (called from inside job execution)."""
    if spec.kind == "exception":
        exc_class = TransientInjectedFault if spec.retryable else InjectedFault
        raise exc_class(
            f"{spec.message} (kind=exception, retryable={spec.retryable})"
        )
    if not in_worker:
        # Killing or wedging the caller's own process is never survivable;
        # degrade to a fatal (non-retryable) in-process failure instead.
        raise InjectedFault(
            f"fault kind {spec.kind!r} requires a worker pool (workers > 1); "
            f"refusing to {spec.kind} the supervising process"
        )
    if spec.kind == "crash":
        os._exit(77)  # hard exit: no cleanup, models a segfaulting worker
    if spec.kind == "hang":
        time.sleep(spec.seconds)
        raise TransientInjectedFault(
            f"{spec.message} (kind=hang elapsed {spec.seconds}s without a "
            f"watchdog timeout)"
        )
    raise FaultPlanError(f"cannot fire fault kind {spec.kind!r} at the execute site")


def corrupt_entry(path: Path) -> bool:
    """Overwrite the head of ``path`` with garbage and truncate it.

    Models a half-written/truncated cache pickle.  Returns True when the file
    existed and was corrupted, False when there was nothing to corrupt.
    """
    try:
        with path.open("r+b") as handle:
            handle.write(_CORRUPTION_STAMP)
            handle.truncate(len(_CORRUPTION_STAMP))
        return True
    except FileNotFoundError:
        return False
    except OSError:
        return False


__all__ = [
    "ENV_FAULT_PLAN",
    "EXECUTE_KINDS",
    "CACHE_KINDS",
    "FAULT_KINDS",
    "FaultPlanError",
    "InjectedFault",
    "TransientInjectedFault",
    "FaultSpec",
    "FaultPlan",
    "active_plan",
    "fire",
    "corrupt_entry",
]
