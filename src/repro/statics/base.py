"""Shared plumbing of the static-analysis suite: files, findings, pragmas.

Checkers operate on a :class:`Project` -- a root directory holding a
``repro``-shaped source tree (in production ``src/repro`` itself; in the
self-tests a temporary copy with a seeded mutation).  They emit
:class:`Finding` records; :func:`apply_pragmas` then folds in the per-line
``# statics: allow[rule] -- reason`` suppressions and reports pragma hygiene
problems (missing reason, pragma that suppresses nothing) as findings of
their own.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, replace
from pathlib import Path

#: One-line documentation per rule, surfaced by ``--list-rules`` and docs.
RULE_DOCS: dict[str, str] = {
    "wall-clock": (
        "wall-clock read (time.time, datetime.now, ...) in a "
        "deterministic-critical module"
    ),
    "unseeded-rng": (
        "RNG constructed or drawn without an explicit seed "
        "(np.random.default_rng(), np.random.*, random.*)"
    ),
    "identity-hash": (
        "builtin hash()/id() in a deterministic-critical module: values are "
        "process-unstable and must never feed persisted or cache-key data"
    ),
    "set-order": (
        "iteration over an unordered set where the order can escape into "
        "results (wrap in sorted(...) or suppress with a reason)"
    ),
    "cache-key": (
        "config dataclass field neither threaded into the sweep cache key "
        "nor explicitly exempted"
    ),
    "stale-exemption": (
        "cache-key exemption that no longer matches the code (field removed, "
        "renamed, or now keyed)"
    ),
    "key-structure": (
        "the cache-key construction in experiments/sweep.py no longer has "
        "the shape the completeness check understands"
    ),
    "kernel-parity": (
        "compiled kernel body drifted from the recorded parity manifest "
        "(run `python -m repro.statics update-parity` after a deliberate "
        "kernel change)"
    ),
    "c-parity": (
        "the hand-mirrored C source in gpu/_fastcore_cc.py disagrees with "
        "its Python twin (constants, layout defines, or signatures)"
    ),
    "pickle-contract": (
        "lambda/closure/local class handed to process-pool submission; "
        "fails only at pickle time when actually dispatched"
    ),
    "parse-error": "source file failed to parse",
    "bad-pragma": "malformed statics pragma (the reason after `--` is required)",
    "unused-pragma": "statics pragma that suppresses no finding on its line",
}

#: Rules that govern pragma hygiene itself; never suppressible by pragma.
_META_RULES = ("parse-error", "bad-pragma", "unused-pragma")

#: Paths (relative to the project root) that are deterministic-critical:
#: every simulation/result-producing code path must replay bit-identically.
DETERMINISM_CRITICAL: tuple[str, ...] = (
    "gpu",
    "core",
    "experiments/sweep.py",
    "testing/faults.py",
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    file: str
    line: int
    message: str
    suppressed: bool = False
    reason: str | None = None

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.file}:{self.line}: [{self.rule}]{tag} {self.message}"

    def to_payload(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class Pragma:
    """One parsed ``# statics: allow[...] -- reason`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


#: ``allow[rule-a,rule-b] -- reason``; the reason is validated separately so
#: a missing one can be reported precisely.
_PRAGMA_RE = re.compile(r"#\s*statics:\s*(.*)$")
_ALLOW_RE = re.compile(r"^allow\[([^\]]*)\]\s*(?:--\s*(\S.*))?$")


class SourceFile:
    """One parsed source file: text, AST, and its statics pragmas."""

    def __init__(self, rel: str, path: Path) -> None:
        self.rel = rel
        self.path = path
        self.text = path.read_text()
        self.lines = self.text.splitlines()
        self._tree: ast.Module | None = None
        self.parse_error: Finding | None = None
        self.pragmas: dict[int, Pragma] = {}
        self.pragma_findings: list[Finding] = []
        self._scan_pragmas()

    @property
    def tree(self) -> ast.Module | None:
        if self._tree is None and self.parse_error is None:
            try:
                self._tree = ast.parse(self.text)
            except SyntaxError as exc:
                self.parse_error = Finding(
                    "parse-error", self.rel, exc.lineno or 1, str(exc.msg)
                )
        return self._tree

    def _iter_comments(self):
        """(line, comment text) pairs -- real comments only, via tokenize,
        so pragma-shaped text inside strings and docstrings never counts."""
        reader = io.StringIO(self.text).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.string
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return  # unparseable files surface as parse-error findings

    def _scan_pragmas(self) -> None:
        for number, comment in self._iter_comments():
            match = _PRAGMA_RE.search(comment)
            if match is None:
                continue
            allow = _ALLOW_RE.match(match.group(1).strip())
            if allow is None:
                self.pragma_findings.append(Finding(
                    "bad-pragma", self.rel, number,
                    "expected `# statics: allow[rule] -- reason`",
                ))
                continue
            rules = tuple(
                rule.strip() for rule in allow.group(1).split(",") if rule.strip()
            )
            reason = (allow.group(2) or "").strip()
            if not rules:
                self.pragma_findings.append(Finding(
                    "bad-pragma", self.rel, number,
                    "pragma names no rule inside allow[...]",
                ))
                continue
            unknown = [rule for rule in rules if rule not in RULE_DOCS]
            if unknown:
                self.pragma_findings.append(Finding(
                    "bad-pragma", self.rel, number,
                    f"pragma names unknown rule(s) {unknown}",
                ))
                continue
            if not reason:
                self.pragma_findings.append(Finding(
                    "bad-pragma", self.rel, number,
                    f"pragma for {list(rules)} is missing its `-- reason`",
                ))
                continue
            self.pragmas[number] = Pragma(number, rules, reason)


class Project:
    """A ``repro``-shaped source tree under one root directory."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self._cache: dict[str, SourceFile] = {}

    def exists(self, rel: str) -> bool:
        return (self.root / rel).is_file()

    def file(self, rel: str) -> SourceFile:
        cached = self._cache.get(rel)
        if cached is None:
            cached = SourceFile(rel, self.root / rel)
            self._cache[rel] = cached
        return cached

    def iter_files(self, rel_paths: tuple[str, ...] | None = None) -> list[SourceFile]:
        """Source files under the given roots (default: the whole project)."""
        found: list[SourceFile] = []
        for rel in rel_paths if rel_paths is not None else ("",):
            target = self.root / rel if rel else self.root
            if target.is_file():
                found.append(self.file(rel))
                continue
            if not target.is_dir():
                continue
            for path in sorted(target.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                found.append(self.file(str(path.relative_to(self.root))))
        return found


def default_project() -> Project:
    """The installed ``repro`` package itself (``src/repro``)."""
    return Project(Path(__file__).resolve().parent.parent)


def apply_pragmas(
    project: Project, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Fold pragma suppressions into raw findings.

    Returns ``(active, suppressed)``: ``active`` contains every unsuppressed
    finding plus pragma-hygiene findings (malformed pragmas, pragmas that
    suppressed nothing); ``suppressed`` the findings a pragma silenced, each
    stamped with the pragma's reason.  Only files the checkers actually
    loaded are consulted, so fixture projects stay cheap.
    """
    active: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[tuple[str, int]] = set()
    for finding in findings:
        pragma = None
        if finding.rule not in _META_RULES and finding.file in project._cache:
            pragma = project._cache[finding.file].pragmas.get(finding.line)
        if pragma is not None and finding.rule in pragma.rules:
            used.add((finding.file, pragma.line))
            suppressed.append(
                replace(finding, suppressed=True, reason=pragma.reason)
            )
        else:
            active.append(finding)
    for rel, source in sorted(project._cache.items()):
        active.extend(source.pragma_findings)
        for line, pragma in sorted(source.pragmas.items()):
            if (rel, line) not in used:
                active.append(Finding(
                    "unused-pragma", rel, line,
                    f"pragma allow[{','.join(pragma.rules)}] suppresses no "
                    "finding on this line",
                ))
    return active, suppressed


# --------------------------------------------------------------------- #
# Small AST helpers shared by the checkers.
# --------------------------------------------------------------------- #
def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Local name -> imported dotted path, from a module's import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                aliases[item.asname or item.name.split(".")[0]] = item.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                aliases[item.asname or item.name] = f"{node.module}.{item.name}"
    return aliases


def dataclass_fields(tree: ast.Module, class_name: str) -> dict[str, int] | None:
    """Field name -> line for an annotated (dataclass-style) class body.

    Returns None when the class is missing.  Only annotated assignments count,
    matching how ``dataclasses`` collects fields; ``ClassVar`` annotations are
    skipped.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields: dict[str, int] = {}
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign):
                    continue
                if not isinstance(statement.target, ast.Name):
                    continue
                annotation = ast.unparse(statement.annotation)
                if "ClassVar" in annotation:
                    continue
                fields[statement.target.id] = statement.lineno
            return fields
    return None


def find_function(
    tree: ast.Module, name: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None
