"""Cache-key completeness: every config field is keyed or exempted.

The sweep cache (``experiments/sweep.py``) keys results by a sha256 over the
repr of the job payload: ``job_key`` takes ``asdict(job)``, pops the identity
fields, and hashes ``{_CACHE_SCHEMA}:{sorted(payload.items())!r}``.  That
design has one failure mode the test suite cannot see: someone adds a field
to one of the config dataclasses that *changes results* but never reaches the
key, and warm caches silently serve stale rows.

This checker closes the loop by static cross-reference:

* ``ProfileJob`` fields are keyed automatically (``asdict``), so every field
  ``payload.pop(...)`` removes must carry an exemption here, and every
  exemption must match a popped field.
* ``ProfilerConfig`` / ``BackendConfig`` fields are keyed only if
  ``execute_job`` threads a ``job.<attr>`` into the ``make_profiler`` /
  ``make_backend`` parameter that ``experiments/common.py`` feeds into that
  config field.  Fields that are *not* threaded must be exempted -- typically
  because ``make_*`` pins them at their defaults, in which case changing the
  default requires a ``_CACHE_SCHEMA`` bump (the exemption reason says so).
* ``SweepConfig`` fields never reach ``execute_job`` at all (fault-model
  scheduling knobs), so each needs an explicit exemption saying why it cannot
  affect a job's payload.

A field that is keyed *and* exempted raises ``stale-exemption`` (the record
no longer matches the code), as does an exemption naming a field that no
longer exists.  If the key construction itself stops looking like the shape
described above, the checker refuses to guess and raises ``key-structure``.

New exemptions are added to :data:`EXEMPTIONS` with a reason -- the point is
that excluding a field from the key is a recorded, reviewable act.
"""

from __future__ import annotations

import ast

from .base import Finding, Project, dataclass_fields, dotted_name, find_function

#: Class -> field -> why this field may stay out of the cache key.
EXEMPTIONS: dict[str, dict[str, str]] = {
    "ProfileJob": {
        "job_id": (
            "identity/labelling only; two jobs with different ids but equal "
            "payloads are the same computation and must share a cache row"
        ),
    },
    "SweepConfig": {
        "job_timeout_s": (
            "fault-model knob: decides when a hung job is killed, never what "
            "a completed job computed"
        ),
        "max_retries": (
            "fault-model knob: bounds re-dispatch of failed jobs; a retried "
            "job re-executes the identical payload"
        ),
        "backoff_base_s": (
            "retry scheduling only; backoff timing cannot reach the result "
            "payload"
        ),
        "backoff_cap_s": (
            "retry scheduling only; backoff timing cannot reach the result "
            "payload"
        ),
        "max_pool_rebuilds": (
            "supervision bound on pool reconstruction; affects whether a job "
            "completes, never its value"
        ),
    },
    "ProfilerConfig": {
        "runs": (
            "per-call override: profiler.profile(kernel, runs=job.runs) "
            "passes runs explicitly and job.runs is keyed via the payload"
        ),
        "binning_margin": (
            "pinned at its default (follow Table I) by make_profiler; "
            "changing the default requires a _CACHE_SCHEMA bump"
        ),
        "max_random_delay_periods": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "calibration_samples": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "timing_executions": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "components": (
            "pinned at its default (all components) by make_profiler; "
            "changing the default requires a _CACHE_SCHEMA bump"
        ),
        "warmup_tolerance": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "refine_ssp_with_power_search": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "ssp_tail_fraction": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "min_ssp_tail_executions": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "max_ssp_tail_executions": (
            "pinned at its default by make_profiler; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "vectorized": (
            "engine selection: the vectorized and reference stitching "
            "pipelines are pinned bit-identical by the equivalence tests"
        ),
        "columnar": (
            "profile construction layout: columnar and object-based profiles "
            "are pinned bit-identical by the equivalence tests"
        ),
        "convergence_rtol": (
            "adaptive-stopping knob pinned at its default by make_profiler "
            "(only the keyed 'adaptive' switch varies under the sweep); "
            "changing the default requires a _CACHE_SCHEMA bump"
        ),
        "min_runs": (
            "adaptive-stopping knob pinned at its default by make_profiler "
            "(only the keyed 'adaptive' switch varies under the sweep); "
            "changing the default requires a _CACHE_SCHEMA bump"
        ),
        "checkpoint_every": (
            "adaptive-stopping knob pinned at its default by make_profiler "
            "(only the keyed 'adaptive' switch varies under the sweep); "
            "changing the default requires a _CACHE_SCHEMA bump"
        ),
    },
    "BackendConfig": {
        "pre_padding_periods": (
            "pinned at its default by make_backend; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "post_padding_periods": (
            "pinned at its default by make_backend; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "park_s": (
            "pinned at its default by make_backend; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "reading_noise": (
            "pinned at its default by make_backend; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "instantaneous_period_s": (
            "pinned at its default by make_backend; changing the default "
            "requires a _CACHE_SCHEMA bump"
        ),
        "vectorized": (
            "deprecated engine pin: all time-advance engines are pinned "
            "bit-identical by the equivalence tests and the compiled "
            "self-check"
        ),
        "engine": (
            "engine selection only: all time-advance engines are pinned "
            "bit-identical by the equivalence tests and the compiled "
            "self-check"
        ),
    },
}

_SWEEP = "experiments/sweep.py"
_COMMON = "experiments/common.py"
_PROFILER = "core/profiler.py"
_BACKEND = "gpu/backend.py"


def _references(expr: ast.expr, name: str) -> bool:
    """Does ``expr`` read the plain name ``name`` anywhere (incl. ``name.x``)?"""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id == name:
            return True
    return False


def _parse_job_key(
    tree: ast.Module, rel: str, findings: list[Finding]
) -> set[str] | None:
    """The field names ``job_key`` pops out of the asdict payload.

    Returns None (after recording a ``key-structure`` finding) when the
    function no longer has the asdict/pop/sorted-repr shape this checker
    understands.
    """
    func = find_function(tree, "job_key")
    if func is None:
        findings.append(Finding(
            "key-structure", rel, 1, "job_key() not found in experiments/sweep.py"
        ))
        return None

    payload_var: str | None = None
    popped: set[str] = set()
    saw_schema = False
    saw_sorted_items = False
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and dotted_name(node.value.func) == "asdict"
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            payload_var = node.targets[0].id
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr == "pop"
                and payload_var is not None
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == payload_var
            ):
                if (
                    len(node.args) >= 1
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    popped.add(node.args[0].value)
                else:
                    findings.append(Finding(
                        "key-structure", rel, node.lineno,
                        "payload.pop(...) with a non-literal field name; the "
                        "completeness check cannot track it",
                    ))
                    return None
        if isinstance(node, ast.Name) and node.id == "_CACHE_SCHEMA":
            saw_schema = True
        if (
            isinstance(node, ast.Call)
            and dotted_name(node.func) == "sorted"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Attribute)
            and node.args[0].func.attr == "items"
        ):
            saw_sorted_items = True

    problems = []
    if payload_var is None:
        problems.append("no `payload = asdict(job)` assignment")
    if not saw_schema:
        problems.append("the hash input no longer mentions _CACHE_SCHEMA")
    if not saw_sorted_items:
        problems.append("the hash input no longer sorts payload.items()")
    if problems:
        findings.append(Finding(
            "key-structure", rel, func.lineno,
            "job_key() drifted from the audited shape: " + "; ".join(problems),
        ))
        return None
    return popped


def _threaded_params(
    tree: ast.Module, rel: str, maker: str, findings: list[Finding],
    common_tree: ast.Module,
) -> set[str] | None:
    """``make_*`` parameters that ``execute_job`` binds from a ``job.<attr>``."""
    func = find_function(tree, "execute_job")
    if func is None:
        findings.append(Finding(
            "key-structure", rel, 1, "execute_job() not found in experiments/sweep.py"
        ))
        return None
    maker_def = find_function(common_tree, maker)
    if maker_def is None:
        findings.append(Finding(
            "key-structure", rel, 1, f"{maker}() not found in experiments/common.py"
        ))
        return None
    param_names = [arg.arg for arg in maker_def.args.args]

    for node in ast.walk(func):
        if not (isinstance(node, ast.Call) and dotted_name(node.func) == maker):
            continue
        threaded: set[str] = set()
        for index, arg in enumerate(node.args):
            if index < len(param_names) and _references(arg, "job"):
                threaded.add(param_names[index])
        for keyword in node.keywords:
            if keyword.arg is None:
                findings.append(Finding(
                    "key-structure", rel, node.lineno,
                    f"{maker}(**kwargs) call; the completeness check cannot "
                    "track which job fields are threaded",
                ))
                return None
            if _references(keyword.value, "job"):
                threaded.add(keyword.arg)
        return threaded
    findings.append(Finding(
        "key-structure", rel, func.lineno,
        f"execute_job() no longer calls {maker}()",
    ))
    return None


def _config_feeds(
    common_tree: ast.Module, rel: str, maker: str, config_class: str,
    findings: list[Finding],
) -> dict[str, str] | None:
    """Config field -> ``make_*`` parameter feeding it, from common.py."""
    maker_def = find_function(common_tree, maker)
    if maker_def is None:
        return None  # already reported by _threaded_params
    params = {arg.arg for arg in maker_def.args.args}
    for node in ast.walk(maker_def):
        if not (
            isinstance(node, ast.Call) and dotted_name(node.func) == config_class
        ):
            continue
        if node.args:
            findings.append(Finding(
                "key-structure", rel, node.lineno,
                f"{config_class}(...) built with positional arguments; the "
                "completeness check needs keyword construction",
            ))
            return None
        feeds: dict[str, str] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                findings.append(Finding(
                    "key-structure", rel, node.lineno,
                    f"{config_class}(**kwargs) construction; the completeness "
                    "check cannot track it",
                ))
                return None
            for param in params:
                if _references(keyword.value, param):
                    feeds[keyword.arg] = param
                    break
        return feeds
    findings.append(Finding(
        "key-structure", rel, maker_def.lineno,
        f"{maker}() no longer constructs {config_class}(...)",
    ))
    return None


def _audit_class(
    class_name: str, fields: dict[str, int], keyed: set[str], rel: str,
    findings: list[Finding],
) -> None:
    exempt = EXEMPTIONS.get(class_name, {})
    for name, line in sorted(fields.items()):
        if name in keyed and name in exempt:
            findings.append(Finding(
                "stale-exemption", rel, line,
                f"{class_name}.{name} is threaded into the cache key but "
                "still carries an exemption; drop it from "
                "repro.statics.cachekey.EXEMPTIONS",
            ))
        elif name not in keyed and name not in exempt:
            findings.append(Finding(
                "cache-key", rel, line,
                f"{class_name}.{name} never reaches the sweep cache key; "
                "thread it through the key payload or record an exemption "
                "with a reason in repro.statics.cachekey.EXEMPTIONS",
            ))
    for name in sorted(exempt):
        if name not in fields:
            findings.append(Finding(
                "stale-exemption", rel, 1,
                f"exemption for {class_name}.{name} names a field that no "
                "longer exists",
            ))


def check_cache_key(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    trees: dict[str, ast.Module] = {}
    for rel in (_SWEEP, _COMMON, _PROFILER, _BACKEND):
        if not project.exists(rel):
            findings.append(Finding(
                "key-structure", rel, 1,
                f"expected source file {rel} is missing",
            ))
            return findings
        source = project.file(rel)
        tree = source.tree
        if tree is None:
            if source.parse_error is not None:
                findings.append(source.parse_error)
            return findings
        trees[rel] = tree

    # --- ProfileJob: asdict() keys everything except the popped fields. ---
    popped = _parse_job_key(trees[_SWEEP], _SWEEP, findings)
    job_fields = dataclass_fields(trees[_SWEEP], "ProfileJob")
    if job_fields is None:
        findings.append(Finding(
            "key-structure", _SWEEP, 1, "ProfileJob dataclass not found"
        ))
    elif popped is not None:
        keyed = set(job_fields) - popped
        unknown_pops = popped - set(job_fields)
        for name in sorted(unknown_pops):
            findings.append(Finding(
                "key-structure", _SWEEP, 1,
                f"job_key() pops {name!r}, which is not a ProfileJob field",
            ))
        _audit_class("ProfileJob", job_fields, keyed, _SWEEP, findings)

    # --- SweepConfig: fault-model only; nothing is keyed. -----------------
    sweep_fields = dataclass_fields(trees[_SWEEP], "SweepConfig")
    if sweep_fields is None:
        findings.append(Finding(
            "key-structure", _SWEEP, 1, "SweepConfig dataclass not found"
        ))
    else:
        _audit_class("SweepConfig", sweep_fields, set(), _SWEEP, findings)

    # --- ProfilerConfig / BackendConfig: keyed iff threaded end-to-end. ---
    for maker, config_class, rel in (
        ("make_profiler", "ProfilerConfig", _PROFILER),
        ("make_backend", "BackendConfig", _BACKEND),
    ):
        threaded = _threaded_params(
            trees[_SWEEP], _SWEEP, maker, findings, trees[_COMMON]
        )
        feeds = _config_feeds(
            trees[_COMMON], _COMMON, maker, config_class, findings
        )
        fields = dataclass_fields(trees[rel], config_class)
        if fields is None:
            findings.append(Finding(
                "key-structure", rel, 1, f"{config_class} dataclass not found"
            ))
            continue
        if threaded is None or feeds is None:
            continue
        keyed = {
            field for field, param in feeds.items() if param in threaded
        }
        _audit_class(config_class, fields, keyed, rel, findings)

    return findings
