"""``python -m repro.statics``: run every checker, gate on findings.

Exit status is 0 only when no unsuppressed finding remains, which is what the
CI ``statics`` leg keys on.  ``--json`` emits the machine format (one object
with ``findings``/``suppressed``/``ok``); ``update-parity`` re-records the
kernel digest manifest after a deliberate kernel edit (see docs/statics.md).
"""

from __future__ import annotations

import argparse
import json
import sys

from .base import RULE_DOCS, Finding, Project, apply_pragmas, default_project
from .cachekey import check_cache_key
from .contracts import check_contracts
from .determinism import check_determinism
from .parity import check_parity, write_manifest

#: The checker families, in report order.
CHECKERS = (
    ("determinism", check_determinism),
    ("cache-key", check_cache_key),
    ("parity", check_parity),
    ("contracts", check_contracts),
)


def run_all(project: Project | None = None) -> tuple[list[Finding], list[Finding]]:
    """Run every checker family; returns ``(active, suppressed)`` findings."""
    project = project if project is not None else default_project()
    findings: list[Finding] = []
    for _, checker in CHECKERS:
        findings.extend(checker(project))
    active, suppressed = apply_pragmas(project, findings)
    order = {rule: index for index, rule in enumerate(RULE_DOCS)}
    key = lambda f: (f.file, f.line, order.get(f.rule, len(order)))  # noqa: E731
    return sorted(active, key=key), sorted(suppressed, key=key)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.statics",
        description="Determinism & engine-parity static analysis "
        "(see docs/statics.md).",
    )
    parser.add_argument(
        "command", nargs="?", choices=("check", "update-parity"),
        default="check",
        help="check (default) runs every checker; update-parity re-records "
        "the kernel parity manifest after a deliberate kernel edit",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="audit a repro-shaped tree at DIR instead of the installed "
        "package (used by the self-tests)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the machine-readable format"
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print findings silenced by pragmas, with their reasons",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list every rule and exit"
    )
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule, doc in RULE_DOCS.items():
            print(f"{rule}: {doc}")
        return 0

    project = Project(options.root) if options.root else default_project()

    if options.command == "update-parity":
        path = write_manifest(project)
        print(f"parity manifest recorded: {path}")
        return 0

    active, suppressed = run_all(project)
    if options.json:
        print(json.dumps({
            "ok": not active,
            "findings": [finding.to_payload() for finding in active],
            "suppressed": [finding.to_payload() for finding in suppressed],
        }, indent=2))
        return 1 if active else 0

    for finding in active:
        print(finding.render())
    if options.show_suppressed:
        for finding in suppressed:
            print(f"{finding.render()} -- {finding.reason}")
    if active:
        print(f"\n{len(active)} finding(s), {len(suppressed)} suppressed.")
        return 1
    print(f"statics: clean ({len(suppressed)} finding(s) suppressed by pragma).")
    return 0
