"""Static analysis gating the repo's determinism and engine-parity invariants.

Every headline result of this reproduction rests on invariants that the test
suite can only enforce *dynamically*: the engine matrix is pinned bit-identical
by equivalence tests, the compiled providers by a runtime self-check, the sweep
cache by a repr-based content key.  This package enforces the same invariants
at *analysis time* -- before any test runs -- with four AST-based checker
families (stdlib ``ast`` only, no third-party parsers):

``determinism`` (:mod:`repro.statics.determinism`)
    In the declared deterministic-critical modules (``gpu/``, ``core/``,
    ``experiments/sweep.py``, ``testing/faults.py``): wall-clock reads,
    unseeded RNG construction, builtin ``hash()``/``id()`` (process-unstable
    values that must never feed persisted or cache-key data), and iteration
    over unordered sets where the order can escape into results.

``cache-key`` (:mod:`repro.statics.cachekey`)
    Cross-checks the dataclass fields of ``ProfileJob`` / ``SweepConfig`` /
    ``ProfilerConfig`` / ``BackendConfig`` against the key-payload
    construction in ``experiments/sweep.py``: a newly added field must either
    flow into the content key or carry an explicit exemption with a reason.

``parity`` (:mod:`repro.statics.parity`)
    Verifies the compiled kernel bodies in ``gpu/_fastcore_kernels.py`` match
    the recorded parity manifest (normalised-AST digests, modulo decorators/
    annotations/docstrings) and diffs the hand-mirrored C source in
    ``gpu/_fastcore_cc.py`` against its Python twins (float constants,
    layout ``#define`` values, function pairing and signatures).

``contracts`` (:mod:`repro.statics.contracts`)
    Detects lambdas, closures and local classes handed to process-pool
    submission -- payloads that only fail at pickle time today.

Findings are suppressible per line with a pragma that *requires* a reason::

    cutoff = time.time() - STALE_S  # statics: allow[wall-clock] -- GC cutoff

Run ``python -m repro.statics`` (``--json`` for the machine format); the repo
must come out clean.  See ``docs/statics.md`` for the rule catalogue.
"""

from .base import Finding, Project, RULE_DOCS
from .cli import main, run_all

__all__ = ["Finding", "Project", "RULE_DOCS", "main", "run_all"]
