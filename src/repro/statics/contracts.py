"""Cross-process contracts: payloads must survive pickling.

Everything a sweep hands to a worker pool -- the callable submitted, the job
payloads, the fault plan -- crosses a process boundary through pickle.
Lambdas, closures over local state and locally-defined classes all pickle
only by *reference to a module-level name they do not have*, so today they
fail at dispatch time, deep inside the pool machinery, with an error that
names none of the offending source.  This checker flags them at the call
site instead:

* a ``lambda`` anywhere inside the arguments of a pool-submission call
  (``pool.submit``, ``executor.map``, ``apply_async``, ``Process(target=...)``)
  or a fault-plan construction (``FaultSpec``/``FaultPlan``);
* a reference to a function or class *defined inside the enclosing function*
  (a closure or local class) passed the same way.

Module-level functions and classes are fine -- that is the contract the
sweep's ``_execute_job_guarded`` already honours.
"""

from __future__ import annotations

import ast

from .base import Finding, Project, dotted_name

#: Attribute calls that dispatch their first argument to another process.
_SUBMIT_METHODS = frozenset({"submit", "apply_async", "apply"})
#: ``map``-style attribute calls; gated on a pool/executor-like receiver to
#: keep builtin-alike ``.map`` methods out of scope.
_MAP_METHODS = frozenset({"map", "imap", "imap_unordered", "starmap"})
#: Constructors whose arguments ship across process boundaries.
_PAYLOAD_CTORS = ("Process", "FaultSpec", "FaultPlan")


def _pool_like(receiver: ast.expr) -> bool:
    name = dotted_name(receiver)
    if name is None:
        return False
    tail = name.split(".")[-1].lower()
    return "pool" in tail or "executor" in tail


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.findings: list[Finding] = []
        #: Names def-ed or class-ed inside the enclosing function scopes.
        self._local_defs: list[set[str]] = []

    # ----- scope tracking ------------------------------------------------
    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._local_defs:
            self._local_defs[-1].add(node.name)
        self._local_defs.append(set())
        self.generic_visit(node)
        self._local_defs.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._local_defs:
            self._local_defs[-1].add(node.name)
        # A class body is not a closure scope; defs inside it are methods.
        self._local_defs.append(set())
        self.generic_visit(node)
        self._local_defs.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._local_defs.append(set())
        self.generic_visit(node)
        self._local_defs.pop()

    def _is_local_def(self, name: str) -> bool:
        return any(name in scope for scope in self._local_defs)

    # ----- payload inspection --------------------------------------------
    def _audit_payload(self, expr: ast.expr, context: str) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                self.findings.append(Finding(
                    "pickle-contract", self.rel, node.lineno,
                    f"lambda handed to {context}; it cannot be pickled "
                    "across the process boundary -- use a module-level "
                    "function",
                ))
            elif isinstance(node, ast.Name) and self._is_local_def(node.id):
                self.findings.append(Finding(
                    "pickle-contract", self.rel, node.lineno,
                    f"locally-defined `{node.id}` handed to {context}; "
                    "closures and local classes cannot be pickled across "
                    "the process boundary -- hoist it to module level",
                ))

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        context: str | None = None
        payloads: list[ast.expr] = []
        if isinstance(func, ast.Attribute):
            if func.attr in _SUBMIT_METHODS or (
                func.attr in _MAP_METHODS and _pool_like(func.value)
            ):
                context = f".{func.attr}(...)"
                payloads = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
        name = dotted_name(func)
        if context is None and name is not None:
            tail = name.split(".")[-1]
            if tail in _PAYLOAD_CTORS:
                context = f"{tail}(...)"
                payloads = list(node.args) + [
                    keyword.value for keyword in node.keywords
                ]
        if context is not None:
            for payload in payloads:
                self._audit_payload(payload, context)
        self.generic_visit(node)


def check_contracts(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.iter_files():
        tree = source.tree
        if tree is None:
            if source.parse_error is not None:
                findings.append(source.parse_error)
            continue
        visitor = _Visitor(source.rel)
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return findings
