"""Engine parity: the compiled kernel sources cannot drift unnoticed.

The compiled tier rests on a transcription discipline: ``gpu/_fastcore_kernels.py``
is the single njit-able transcription of the device hot loops, and
``gpu/_fastcore_cc.py`` mirrors it line for line in C.  The runtime self-check
(docs/engines.md) catches value drift by executing both sides -- but only at
runtime, only on the trajectories it drives, and only in environments where a
provider actually loads.  This checker pins the *sources* at analysis time:

``kernel-parity``
    Every kernel body named by ``gpu/fastcore.py``'s ``_KERNEL_CHAIN`` is
    digested after normalisation (decorators, annotations and docstrings
    stripped -- the parts that may legitimately differ between the njit and
    plain-Python views of the same body) and compared against the recorded
    manifest ``statics/parity_manifest.json``.  Editing a kernel therefore
    requires the deliberate, reviewable act of regenerating the manifest with
    ``python -m repro.statics update-parity`` -- the same machine-checkable
    record discipline the sweep cache applies to results.

``c-parity``
    The hand-mirrored C source is diffed structurally against its Python
    twins, without compiling anything: every ``#define`` layout/state constant
    must equal the Python module-level constant of the same name (and vice
    versa); each paired function must use the same *set* of float literals
    (clamp bounds, epsilons, floors -- the values that drift when one side is
    edited alone; the C if-clamp spelling of Python's ``min(max(...))`` keeps
    literal order from being comparable, so sets, not sequences); and every
    Python kernel parameter must appear in the C signature (C adds explicit
    ``*_cap`` capacities that numpy shapes carry implicitly).
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
import re
from pathlib import Path

from .base import Finding, Project, find_function

_KERNELS = "gpu/_fastcore_kernels.py"
_CC = "gpu/_fastcore_cc.py"
_FASTCORE = "gpu/fastcore.py"

#: Manifest path relative to the project root (travels with tree copies).
MANIFEST_REL = "statics/parity_manifest.json"

#: Python kernel -> C function.  The C side folds the ``k_sequence`` entry
#: point's counter reset into ``fc_sequence`` itself, hence the rename; the
#: other bodies mirror under their own names.
C_PAIRS: dict[str, str] = {
    "fw_transition": "fw_transition",
    "fw_step": "fw_step",
    "fw_arrival": "fw_arrival",
    "control_boundary": "control_boundary",
    "idle_core": "idle_core",
    "execute_core": "execute_core",
    "sequence_core": "fc_sequence",
}

#: Module-level constant prefixes shared between the Python and C layouts.
_CONST_PREFIXES = ("S_", "P_", "FW_")
#: Python-only length constants (C indexes raw pointers; no length defines).
_PY_ONLY_CONSTANTS = frozenset({"STATE_LEN", "PARAM_LEN"})


# --------------------------------------------------------------------- #
# Python side: normalised kernel digests.
# --------------------------------------------------------------------- #
def normalized_digest(func: ast.FunctionDef) -> str:
    """sha256 of the body modulo decorators, annotations and docstring."""
    node = copy.deepcopy(func)
    node.decorator_list = []
    node.returns = None
    for arg in (
        *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs,
        *([node.args.vararg] if node.args.vararg else []),
        *([node.args.kwarg] if node.args.kwarg else []),
    ):
        arg.annotation = None
    body = node.body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        node.body = body[1:] or [ast.Pass()]
    dump = ast.dump(node, include_attributes=False)
    return hashlib.sha256(dump.encode()).hexdigest()


def _kernel_chain(project: Project, findings: list[Finding]) -> tuple[str, ...] | None:
    """The audited kernel names, read from ``_KERNEL_CHAIN`` in fastcore.py."""
    if not project.exists(_FASTCORE):
        findings.append(Finding(
            "kernel-parity", _FASTCORE, 1, "gpu/fastcore.py is missing"
        ))
        return None
    source = project.file(_FASTCORE)
    tree = source.tree
    if tree is None:
        if source.parse_error is not None:
            findings.append(source.parse_error)
        return None
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "_KERNEL_CHAIN"):
            continue
        if isinstance(node.value, ast.Tuple) and all(
            isinstance(element, ast.Constant) and isinstance(element.value, str)
            for element in node.value.elts
        ):
            return tuple(element.value for element in node.value.elts)
        findings.append(Finding(
            "kernel-parity", _FASTCORE, node.lineno,
            "_KERNEL_CHAIN is no longer a literal tuple of kernel names; the "
            "parity checker cannot enumerate the audited kernels",
        ))
        return None
    findings.append(Finding(
        "kernel-parity", _FASTCORE, 1,
        "_KERNEL_CHAIN not found in gpu/fastcore.py",
    ))
    return None


def kernel_digests(project: Project) -> tuple[dict[str, str], list[Finding]]:
    """Normalised digest per audited kernel (plus structural findings)."""
    findings: list[Finding] = []
    chain = _kernel_chain(project, findings)
    if chain is None:
        return {}, findings
    if not project.exists(_KERNELS):
        findings.append(Finding(
            "kernel-parity", _KERNELS, 1, "gpu/_fastcore_kernels.py is missing"
        ))
        return {}, findings
    source = project.file(_KERNELS)
    tree = source.tree
    if tree is None:
        if source.parse_error is not None:
            findings.append(source.parse_error)
        return {}, findings
    digests: dict[str, str] = {}
    for name in chain:
        func = find_function(tree, name)
        if func is None:
            findings.append(Finding(
                "kernel-parity", _KERNELS, 1,
                f"kernel {name}() named by _KERNEL_CHAIN does not exist",
            ))
            continue
        digests[name] = normalized_digest(func)
    return digests, findings


def manifest_path(project: Project) -> Path:
    return project.root / MANIFEST_REL


def write_manifest(project: Project) -> Path:
    """Record the current kernel digests (``update-parity``)."""
    digests, findings = kernel_digests(project)
    if findings:
        rendered = "; ".join(finding.render() for finding in findings)
        raise RuntimeError(f"cannot record parity manifest: {rendered}")
    path = manifest_path(project)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"schema": 1, "kernels": dict(sorted(digests.items()))}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def _check_manifest(project: Project) -> list[Finding]:
    digests, findings = kernel_digests(project)
    if findings:
        return findings
    path = manifest_path(project)
    if not path.is_file():
        return [Finding(
            "kernel-parity", MANIFEST_REL, 1,
            "parity manifest missing; run `python -m repro.statics "
            "update-parity` to record the trusted kernel digests",
        )]
    try:
        recorded = json.loads(path.read_text())["kernels"]
    except (ValueError, KeyError, TypeError):
        return [Finding(
            "kernel-parity", MANIFEST_REL, 1,
            "parity manifest is unreadable; regenerate it with "
            "`python -m repro.statics update-parity`",
        )]
    tree = project.file(_KERNELS).tree
    assert tree is not None  # kernel_digests already parsed it
    for name in sorted(set(digests) | set(recorded)):
        if name not in recorded:
            findings.append(Finding(
                "kernel-parity", MANIFEST_REL, 1,
                f"kernel {name}() has no recorded digest; run "
                "`python -m repro.statics update-parity`",
            ))
        elif name not in digests:
            findings.append(Finding(
                "kernel-parity", MANIFEST_REL, 1,
                f"manifest records digest for {name}(), which is no longer "
                "an audited kernel; run `python -m repro.statics update-parity`",
            ))
        elif digests[name] != recorded[name]:
            func = find_function(tree, name)
            findings.append(Finding(
                "kernel-parity", _KERNELS, func.lineno if func else 1,
                f"{name}() body drifted from the recorded parity manifest; "
                "if the change is deliberate, update the C mirror and run "
                "`python -m repro.statics update-parity`",
            ))
    return findings


# --------------------------------------------------------------------- #
# C side: structural diff against the Python twins.
# --------------------------------------------------------------------- #
_C_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_C_DEFINE_RE = re.compile(r"^#define\s+(\w+)\s+(-?\d+)\s*$", re.MULTILINE)
_C_FUNC_RE = re.compile(r"(?:static\s+)?int\s+(\w+)\s*\(")
#: A C floating literal: has a decimal point and/or an exponent.
_C_FLOAT_RE = re.compile(
    r"(?<![\w.])(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?"
    r"|\d+[eE][+-]?\d+)(?![\w.])"
)


def _extract_c_source(tree: ast.Module) -> str | None:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "_C_SOURCE"
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            return node.value.value
    return None


def _c_functions(source: str) -> dict[str, tuple[str, str]]:
    """C function name -> (parameter text, body text), comments stripped."""
    functions: dict[str, tuple[str, str]] = {}
    for match in _C_FUNC_RE.finditer(source):
        name = match.group(1)
        cursor = match.end() - 1  # at the opening parenthesis
        depth = 0
        param_end = None
        for index in range(cursor, len(source)):
            if source[index] == "(":
                depth += 1
            elif source[index] == ")":
                depth -= 1
                if depth == 0:
                    param_end = index
                    break
        if param_end is None:
            continue
        params = source[cursor + 1:param_end]
        brace = source.find("{", param_end)
        if brace < 0:
            continue
        depth = 0
        body_end = None
        for index in range(brace, len(source)):
            if source[index] == "{":
                depth += 1
            elif source[index] == "}":
                depth -= 1
                if depth == 0:
                    body_end = index
                    break
        if body_end is None:
            continue
        functions[name] = (params, source[brace + 1:body_end])
    return functions


def _c_param_names(params: str) -> set[str]:
    names: set[str] = set()
    for declaration in params.split(","):
        match = re.search(r"(\w+)\s*$", declaration.strip())
        if match:
            names.add(match.group(1))
    return names


def _py_module_constants(tree: ast.Module) -> dict[str, int]:
    """Module-level integer constants with the shared layout prefixes."""
    constants: dict[str, int] = {}
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        name = target.id
        if not name.startswith(_CONST_PREFIXES) and name not in _PY_ONLY_CONSTANTS:
            continue
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, int):
            constants[name] = node.value.value
    return constants


def _py_float_literals(func: ast.FunctionDef) -> set[float]:
    values: set[float] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            values.add(node.value)
    return values


def _c_float_literals(body: str) -> set[float]:
    return {float(token) for token in _C_FLOAT_RE.findall(body)}


def _py_param_names(func: ast.FunctionDef) -> set[str]:
    return {arg.arg for arg in (*func.args.posonlyargs, *func.args.args)}


def _check_c_parity(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for rel in (_KERNELS, _CC):
        if not project.exists(rel):
            findings.append(Finding("c-parity", rel, 1, f"{rel} is missing"))
            return findings
    kernels_tree = project.file(_KERNELS).tree
    cc_source_file = project.file(_CC)
    cc_tree = cc_source_file.tree
    for source in (project.file(_KERNELS), cc_source_file):
        if source.tree is None and source.parse_error is not None:
            findings.append(source.parse_error)
    if kernels_tree is None or cc_tree is None:
        return findings

    c_source = _extract_c_source(cc_tree)
    if c_source is None:
        findings.append(Finding(
            "c-parity", _CC, 1,
            "_C_SOURCE string literal not found; the C mirror cannot be audited",
        ))
        return findings
    c_source = _C_COMMENT_RE.sub(" ", c_source)

    # ---- layout/state constants: #define vs module-level Python ints. ----
    defines = {name: int(value) for name, value in _C_DEFINE_RE.findall(c_source)}
    constants = _py_module_constants(kernels_tree)
    for name in sorted(set(defines) | set(constants)):
        if name in _PY_ONLY_CONSTANTS:
            continue
        if name not in defines:
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"Python constant {name} = {constants[name]} has no C "
                "#define twin",
            ))
        elif name not in constants:
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"C #define {name} {defines[name]} has no Python constant twin",
            ))
        elif defines[name] != constants[name]:
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"constant {name} drifted: C #define says {defines[name]}, "
                f"Python says {constants[name]}",
            ))

    # ---- paired functions: signatures and float-literal sets. -----------
    c_functions = _c_functions(c_source)
    for py_name, c_name in C_PAIRS.items():
        func = find_function(kernels_tree, py_name)
        if func is None:
            findings.append(Finding(
                "c-parity", _KERNELS, 1,
                f"paired kernel {py_name}() not found in _fastcore_kernels",
            ))
            continue
        if c_name not in c_functions:
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"C twin {c_name}() of {py_name}() not found in _C_SOURCE",
            ))
            continue
        params, body = c_functions[c_name]
        missing_params = _py_param_names(func) - _c_param_names(params)
        if missing_params:
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"{c_name}() is missing Python parameter(s) "
                f"{sorted(missing_params)} of {py_name}()",
            ))
        py_floats = _py_float_literals(func)
        c_floats = _c_float_literals(body)
        if py_floats != c_floats:
            only_py = sorted(py_floats - c_floats)
            only_c = sorted(c_floats - py_floats)
            detail = []
            if only_py:
                detail.append(f"only in Python: {only_py}")
            if only_c:
                detail.append(f"only in C: {only_c}")
            findings.append(Finding(
                "c-parity", _CC, 1,
                f"float constants of {py_name}()/{c_name}() drifted "
                f"({'; '.join(detail)})",
            ))
    return findings


def check_parity(project: Project) -> list[Finding]:
    return _check_manifest(project) + _check_c_parity(project)
