"""Determinism lint over the deterministic-critical modules.

The critical scope (:data:`repro.statics.base.DETERMINISM_CRITICAL`) is the
code whose outputs are pinned bit-identical by the equivalence suites and the
sweep cache: the simulated device and engines (``gpu/``), the methodology
core (``core/``), the sweep engine (``experiments/sweep.py``) and the fault
harness (``testing/faults.py``).  Inside it, four things are flagged:

``wall-clock``
    Reads of the wall clock (``time.time``, ``datetime.now``, ...).  Monotonic
    *duration* measurement (``time.perf_counter``, ``time.monotonic``) is
    deliberately not flagged: elapsed-seconds observability never feeds
    results.  Absolute timestamps that do have a legitimate operational use
    (manifest stamps, mtime-based GC) carry a pragma explaining why.

``unseeded-rng``
    RNG construction or draws with no explicit seed: ``np.random.default_rng()``
    without arguments, the legacy ``np.random.*`` module-level draw/seed
    functions (global hidden state), and the stdlib ``random`` module's
    global functions.  Seeded construction (``default_rng(seed)``) is fine.

``identity-hash``
    Builtin ``hash()`` / ``id()`` calls.  Both are process-unstable (string
    hash randomisation; allocator-dependent ids), so neither may ever feed
    persisted or cache-key data.  Legitimate in-memory identity caches carry
    a pragma saying the value never escapes the process.

``set-order``
    Iteration over unordered sets (or materialising one into an ordered
    container) where the order could escape into results.  ``sorted(...)``
    over a set is always fine.
"""

from __future__ import annotations

import ast

from .base import (
    DETERMINISM_CRITICAL,
    Finding,
    Project,
    SourceFile,
    dotted_name,
    import_aliases,
)

#: Fully-qualified wall-clock reads (after import-alias resolution).
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.localtime",
    "time.gmtime",
    "time.ctime",
    "time.asctime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: numpy.random attributes that are fine to touch (seeded-constructor API).
_NP_RANDOM_OK = frozenset({"Generator", "SeedSequence", "BitGenerator", "PCG64",
                           "PCG64DXSM", "Philox", "SFC64", "MT19937"})

#: numpy.random constructors that are fine *with* a seed argument only.
_NP_RANDOM_CTORS = frozenset({"default_rng", "RandomState"})

#: stdlib ``random`` global-state functions (always nondeterministic).
_STDLIB_RANDOM = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate", "weibullvariate",
})


def _resolve(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """The called name with its root import alias expanded."""
    name = dotted_name(call.func)
    if name is None:
        return None
    root, _, rest = name.partition(".")
    expanded = aliases.get(root)
    if expanded is None:
        return name
    return f"{expanded}.{rest}" if rest else expanded


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class _Visitor(ast.NodeVisitor):
    def __init__(self, source: SourceFile, aliases: dict[str, str]) -> None:
        self.source = source
        self.aliases = aliases
        self.findings: list[Finding] = []

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(rule, self.source.rel, node.lineno, message))

    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        self._check_call(node)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call) -> None:
        resolved = _resolve(node, self.aliases)
        if resolved is None:
            return
        if resolved in WALL_CLOCK_CALLS:
            self._flag(
                "wall-clock", node,
                f"wall-clock read `{resolved}()` in a deterministic-critical "
                "module",
            )
            return
        if resolved in ("hash", "id"):
            self._flag(
                "identity-hash", node,
                f"builtin `{resolved}()` is process-unstable and must never "
                "feed persisted or cache-key data",
            )
            return
        parts = resolved.split(".")
        if len(parts) >= 2 and parts[0] == "numpy" and parts[1] == "random":
            attr = parts[2] if len(parts) > 2 else ""
            if attr in _NP_RANDOM_CTORS:
                if not node.args and not node.keywords:
                    self._flag(
                        "unseeded-rng", node,
                        f"`{resolved}()` without a seed draws entropy from "
                        "the OS; pass an explicit seed",
                    )
            elif attr and attr not in _NP_RANDOM_OK:
                self._flag(
                    "unseeded-rng", node,
                    f"legacy `{resolved}()` uses numpy's hidden global RNG "
                    "state; use a seeded np.random.default_rng(seed)",
                )
            return
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in _STDLIB_RANDOM or parts[1] == "SystemRandom":
                self._flag(
                    "unseeded-rng", node,
                    f"`{resolved}()` uses the stdlib's global (or OS) RNG "
                    "state; use a seeded np.random.default_rng(seed)",
                )
            elif parts[1] == "Random" and not node.args and not node.keywords:
                self._flag(
                    "unseeded-rng", node,
                    "`random.Random()` without a seed; pass one explicitly",
                )

    # ------------------------------------------------------------------ #
    def visit_For(self, node: ast.For) -> None:
        if _is_set_expr(node.iter):
            self._flag(
                "set-order", node.iter,
                "iteration over an unordered set; wrap in sorted(...) if the "
                "order can reach results",
            )
        self.generic_visit(node)

    def _check_ordering_call(self, node: ast.Call) -> None:
        func = node.func
        candidates: list[ast.expr] = []
        if isinstance(func, ast.Name) and func.id in (
            "list", "tuple", "enumerate", "iter",
        ):
            candidates = node.args[:1]
        elif isinstance(func, ast.Name) and func.id == "map":
            candidates = node.args[1:]
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            candidates = node.args[:1]
        for arg in candidates:
            if _is_set_expr(arg):
                self._flag(
                    "set-order", arg,
                    "an unordered set is materialised into an ordered "
                    "container; wrap in sorted(...) if the order can reach "
                    "results",
                )

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Call):
            self._check_ordering_call(node)
        super().generic_visit(node)


def check_determinism(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.iter_files(DETERMINISM_CRITICAL):
        tree = source.tree
        if tree is None:
            if source.parse_error is not None:
                findings.append(source.parse_error)
            continue
        visitor = _Visitor(source, import_aliases(tree))
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return findings
