"""C provider of the compiled slice/boundary core.

Mirrors ``_fastcore_kernels`` line for line in C, compiles it once with the
system C compiler (``$CC``, ``gcc`` or ``cc``) into a shared library cached
by source hash, and binds it through :mod:`ctypes`.  This is the fallback
compiled tier for environments without Numba (the repo's own CI container,
for one): same data layout, same return-code protocol, and -- because the
build pins ``-fno-fast-math -ffp-contract=off`` -- the same IEEE-754 doubles
as the Python engines (libm ``pow``/``exp`` are exactly what CPython floats
use; contraction off keeps the compiler from fusing the multiply-adds the
Python engine evaluates separately).  The fastcore self-check verifies the
bit-for-bit contract against the Python kernel bodies before the provider is
ever selected.

The compiled library is cached under ``$REPRO_FASTCORE_CACHE`` (default: a
``repro-fastcore`` directory in the system temp dir) keyed by the source
digest, so concurrent processes -- e.g. a sweep worker pool -- compile at
most once and land on the same file via an atomic rename.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

_C_SOURCE = r"""
#include <math.h>

/* State indices -- see _fastcore_kernels for the layout contract. */
#define S_NOW 0
#define S_WARMTH 1
#define S_CEN 2
#define S_CTM 3
#define S_CAC 4
#define S_NEXT 5
#define S_FWST 6
#define S_FREQ 7
#define S_OVER 8
#define S_THROT 9
#define S_IDLEAC 10
#define S_LASTP 11

#define P_PERIOD 0
#define P_IDLE_X 1
#define P_IDLE_I 2
#define P_IDLE_H 3
#define P_IDLE_TOT 4
#define P_NOM 5
#define P_PEXP 6
#define P_XIDLE 7
#define P_XDYN 8
#define P_IIDLE 9
#define P_IDYN 10
#define P_HIDLE 11
#define P_HDYN 12
#define P_SWING 13
#define P_COUPLE 14
#define P_HEAT_TAU 15
#define P_COOL_TAU 16
#define P_LIMIT 17
#define P_EXC_THRESH 18
#define P_EXC_WIN 19
#define P_T_HOLD 20
#define P_REC_STEP 21
#define P_RAMP_STEP 22
#define P_CAP_TGT 23
#define P_CAP_HYST 24
#define P_IDLE_PARK 25
#define P_F_IDLE 26
#define P_F_BOOST 27
#define P_F_SUST 28
#define P_RETENTION 29
#define P_MINFACT 30

#define FW_IDLE 0
#define FW_RAMPING 1
#define FW_BOOST 2
#define FW_THROTTLED 3
#define FW_RECOVERING 4
#define FW_CAPPED 5

static int fw_transition(double *st, const double *pp, double *ev, long ev_cap,
                         long *lens, double now, int state, double freq,
                         double power) {
    int changed = (state != (int)st[S_FWST]) || (freq != st[S_FREQ]);
    double clamped = freq;
    st[S_FWST] = (double)state;
    if (clamped < pp[P_F_IDLE]) clamped = pp[P_F_IDLE];
    if (clamped > pp[P_F_BOOST]) clamped = pp[P_F_BOOST];
    st[S_FREQ] = clamped;
    if (changed) {
        long k = lens[1];
        if (k >= ev_cap) return 2;
        ev[k * 4 + 0] = now;
        ev[k * 4 + 1] = (double)state;
        ev[k * 4 + 2] = clamped;
        ev[k * 4 + 3] = power;
        lens[1] = k + 1;
    }
    return 0;
}

static int fw_step(double *st, const double *pp, double *ev, long ev_cap,
                   long *lens, double now, double dt, double power,
                   int resident) {
    double limit, new_frequency, target, boost;
    int s;
    if (dt == 0.0) return 0;
    st[S_LASTP] = power;
    if (resident == 0) {
        st[S_IDLEAC] += dt;
        st[S_OVER] = 0.0;
        if (st[S_IDLEAC] >= pp[P_IDLE_PARK] && (int)st[S_FWST] != FW_IDLE)
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_IDLE,
                                 pp[P_F_IDLE], power);
        return 0;
    }
    st[S_IDLEAC] = 0.0;
    limit = pp[P_LIMIT];
    if (power > limit * pp[P_EXC_THRESH])
        st[S_OVER] += dt;
    else
        st[S_OVER] = 0.0;
    s = (int)st[S_FWST];
    if (s == FW_IDLE || s == FW_RAMPING) {
        target = pp[P_F_BOOST];
        new_frequency = st[S_FREQ] + pp[P_RAMP_STEP];
        if (new_frequency > target) new_frequency = target;
        return fw_transition(st, pp, ev, ev_cap, lens, now,
                             new_frequency >= target ? FW_BOOST : FW_RAMPING,
                             new_frequency, power);
    }
    if (s == FW_BOOST) {
        if (st[S_OVER] >= pp[P_EXC_WIN]) {
            st[S_THROT] = now + pp[P_T_HOLD];
            st[S_OVER] = 0.0;
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_THROTTLED,
                                 pp[P_F_SUST], power);
        }
        return 0;
    }
    if (s == FW_THROTTLED) {
        if (now >= st[S_THROT])
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_RECOVERING,
                                 st[S_FREQ], power);
        return 0;
    }
    if (s == FW_RECOVERING) {
        if (power >= limit * pp[P_CAP_TGT])
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_CAPPED,
                                 st[S_FREQ], power);
        boost = pp[P_F_BOOST];
        new_frequency = st[S_FREQ] + pp[P_REC_STEP];
        if (new_frequency > boost) new_frequency = boost;
        if (new_frequency >= boost)
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_BOOST,
                                 new_frequency, power);
        return fw_transition(st, pp, ev, ev_cap, lens, now, FW_RECOVERING,
                             new_frequency, power);
    }
    if (s == FW_CAPPED) {
        if (power > limit) {
            new_frequency = st[S_FREQ] - pp[P_REC_STEP];
            if (new_frequency < pp[P_F_SUST]) new_frequency = pp[P_F_SUST];
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_CAPPED,
                                 new_frequency, power);
        }
        if (power < limit * (pp[P_CAP_TGT] - pp[P_CAP_HYST]))
            return fw_transition(st, pp, ev, ev_cap, lens, now, FW_RECOVERING,
                                 st[S_FREQ], power);
        return 0;
    }
    return 0;
}

static int fw_arrival(double *st, const double *pp, double *ev, long ev_cap,
                      long *lens, double now) {
    int s;
    st[S_IDLEAC] = 0.0;
    s = (int)st[S_FWST];
    if (s == FW_IDLE || s == FW_RAMPING)
        return fw_transition(st, pp, ev, ev_cap, lens, now, FW_BOOST,
                             pp[P_F_BOOST], st[S_LASTP]);
    return 0;
}

static int control_boundary(double *st, const double *pp, double *ev,
                            long ev_cap, long *lens) {
    double now = st[S_NOW];
    double c_time = st[S_CTM];
    double mean_power, period, next_control;
    int resident, rc;
    mean_power = c_time > 0 ? st[S_CEN] / c_time : pp[P_IDLE_TOT];
    resident = (c_time > 0 && st[S_CAC] >= 0.5 * c_time) ? 1 : 0;
    rc = fw_step(st, pp, ev, ev_cap, lens, now, c_time, mean_power, resident);
    if (rc != 0) return rc;
    st[S_CEN] = 0.0;
    st[S_CTM] = 0.0;
    st[S_CAC] = 0.0;
    period = pp[P_PERIOD];
    next_control = st[S_NEXT];
    while (next_control <= now + 1e-12) next_control += period;
    st[S_NEXT] = next_control;
    return 0;
}

static int idle_core(double *st, const double *pp, double duration, int record,
                     double *seg, long seg_cap, double *ev, long ev_cap,
                     long *lens) {
    double now, end, idle_x, idle_i, idle_h, total_w, cool_tau;
    double remaining, dt, alpha, warmth;
    long k;
    int rc;
    if (duration <= 1e-12) return 0;
    now = st[S_NOW];
    end = now + duration;
    idle_x = pp[P_IDLE_X];
    idle_i = pp[P_IDLE_I];
    idle_h = pp[P_IDLE_H];
    total_w = pp[P_IDLE_TOT];
    cool_tau = pp[P_COOL_TAU];
    if (end + 1e-12 < st[S_NEXT]) {
        if (record != 0) {
            k = lens[0];
            if (k >= seg_cap) return 1;
            seg[k * 5 + 0] = now;
            seg[k * 5 + 1] = end;
            seg[k * 5 + 2] = idle_x;
            seg[k * 5 + 3] = idle_i;
            seg[k * 5 + 4] = idle_h;
            lens[0] = k + 1;
        }
        st[S_CEN] += total_w * duration;
        st[S_CTM] += duration;
        st[S_NOW] = end;
        alpha = 1.0 - exp(-duration / cool_tau);
        warmth = st[S_WARMTH];
        warmth += (0.0 - warmth) * alpha;
        if (warmth < 0.0) warmth = 0.0;
        if (warmth > 1.0) warmth = 1.0;
        st[S_WARMTH] = warmth;
        return 0;
    }
    remaining = duration;
    while (remaining > 1e-12) {
        dt = st[S_NEXT] - now;
        if (dt < 1e-9) dt = 1e-9;
        if (remaining < dt) dt = remaining;
        end = now + dt;
        if (record != 0 && end > now) {
            k = lens[0];
            if (k >= seg_cap) return 1;
            seg[k * 5 + 0] = now;
            seg[k * 5 + 1] = end;
            seg[k * 5 + 2] = idle_x;
            seg[k * 5 + 3] = idle_i;
            seg[k * 5 + 4] = idle_h;
            lens[0] = k + 1;
        }
        st[S_CEN] += total_w * dt;
        st[S_CTM] += dt;
        st[S_NOW] = end;
        remaining -= dt;
        now = end;
        if (now + 1e-12 >= st[S_NEXT]) {
            rc = control_boundary(st, pp, ev, ev_cap, lens);
            if (rc != 0) return rc;
        }
    }
    alpha = 1.0 - exp(-duration / cool_tau);
    warmth = st[S_WARMTH];
    warmth += (0.0 - warmth) * alpha;
    if (warmth < 0.0) warmth = 0.0;
    if (warmth > 1.0) warmth = 1.0;
    st[S_WARMTH] = warmth;
    return 0;
}

static int execute_core(double *st, const double *pp, const double *desc,
                        double time_factor, int cold, int record, double *seg,
                        long seg_cap, double *ev, long ev_cap, long *lens,
                        double *out8) {
    double now, start_s, end, dt, work_dt, frac_mid;
    double nominal, power_exponent, xcd_idle_w, xcd_dynamic_w, iod_idle_w;
    double iod_dynamic_w, hbm_idle_w, hbm_dynamic_w, warmth_swing, iod_coupling;
    double heat_tau, base_duration, sensitivity, frequency, duration_full;
    double freq_scale, warmth, clamped, warm_scale, iod_freq_scale;
    double x_w, i_w, h_w, total_w, total_j, alpha;
    double energy_j, xcd_j, iod_j, hbm_j, freq_time_weighted;
    double work_remaining, end_s, duration;
    long row, k;
    int n_phases, p, rc;
    now = st[S_NOW];
    start_s = now;
    rc = fw_arrival(st, pp, ev, ev_cap, lens, start_s);
    if (rc != 0) return rc;
    nominal = pp[P_NOM];
    power_exponent = pp[P_PEXP];
    xcd_idle_w = pp[P_XIDLE];
    xcd_dynamic_w = pp[P_XDYN];
    iod_idle_w = pp[P_IIDLE];
    iod_dynamic_w = pp[P_IDYN];
    hbm_idle_w = pp[P_HIDLE];
    hbm_dynamic_w = pp[P_HDYN];
    warmth_swing = pp[P_SWING];
    iod_coupling = pp[P_COUPLE];
    heat_tau = pp[P_HEAT_TAU];
    base_duration = desc[0];
    sensitivity = desc[1];
    n_phases = (int)desc[4];

    frequency = st[S_FREQ];
    duration_full = base_duration * pow(nominal / frequency, sensitivity);
    if (cold != 0) duration_full *= desc[2];
    duration_full *= time_factor;
    end = now + duration_full;
    if (end + 1e-12 < st[S_NEXT]) {
        row = 5 + 5 * (long)(n_phases - 1);
        for (p = 0; p < n_phases; p++) {
            if (0.5 < desc[5 + 5 * p]) {
                row = 5 + 5 * (long)p;
                break;
            }
        }
        dt = duration_full;
        freq_scale = pow(frequency / nominal, power_exponent);
        warmth = st[S_WARMTH];
        clamped = warmth;
        if (clamped < 0.0) clamped = 0.0;
        if (clamped > 1.0) clamped = 1.0;
        warm_scale = 1.0 - warmth_swing * (1.0 - clamped);
        iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0);
        x_w = xcd_idle_w + xcd_dynamic_w * desc[row + 1] * freq_scale * warm_scale;
        i_w = iod_idle_w + iod_dynamic_w * desc[row + 2] * iod_freq_scale * warm_scale;
        h_w = hbm_idle_w + hbm_dynamic_w * (cold != 0 ? desc[row + 4] : desc[row + 3]);
        if (record != 0 && end > now) {
            k = lens[0];
            if (k >= seg_cap) return 1;
            seg[k * 5 + 0] = now;
            seg[k * 5 + 1] = end;
            seg[k * 5 + 2] = x_w;
            seg[k * 5 + 3] = i_w;
            seg[k * 5 + 4] = h_w;
            lens[0] = k + 1;
        }
        total_w = x_w + i_w + h_w;
        total_j = total_w * dt;
        st[S_CEN] += total_j;
        st[S_CTM] += dt;
        st[S_CAC] += dt;
        alpha = 1.0 - exp(-dt / heat_tau);
        warmth += (1.0 - warmth) * alpha;
        if (warmth < 0.0) warmth = 0.0;
        if (warmth > 1.0) warmth = 1.0;
        st[S_WARMTH] = warmth;
        st[S_NOW] = end;
        energy_j = total_j;
        xcd_j = x_w * dt;
        iod_j = i_w * dt;
        hbm_j = h_w * dt;
        freq_time_weighted = frequency * dt;
        now = end;
    } else {
        work_remaining = 1.0;
        energy_j = 0.0;
        xcd_j = 0.0;
        iod_j = 0.0;
        hbm_j = 0.0;
        freq_time_weighted = 0.0;
        while (work_remaining > 1e-9) {
            frequency = st[S_FREQ];
            duration_full = base_duration * pow(nominal / frequency, sensitivity);
            if (cold != 0) duration_full *= desc[2];
            duration_full *= time_factor;
            dt = st[S_NEXT] - now;
            if (dt < 1e-9) dt = 1e-9;
            work_dt = work_remaining * duration_full;
            if (work_dt < dt) dt = work_dt;
            frac_mid = (1.0 - work_remaining) + 0.5 * dt / duration_full;
            row = 5 + 5 * (long)(n_phases - 1);
            for (p = 0; p < n_phases; p++) {
                if (frac_mid < desc[5 + 5 * p]) {
                    row = 5 + 5 * (long)p;
                    break;
                }
            }
            freq_scale = pow(frequency / nominal, power_exponent);
            warmth = st[S_WARMTH];
            clamped = warmth;
            if (clamped < 0.0) clamped = 0.0;
            if (clamped > 1.0) clamped = 1.0;
            warm_scale = 1.0 - warmth_swing * (1.0 - clamped);
            iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0);
            x_w = xcd_idle_w + xcd_dynamic_w * desc[row + 1] * freq_scale * warm_scale;
            i_w = iod_idle_w + iod_dynamic_w * desc[row + 2] * iod_freq_scale * warm_scale;
            h_w = hbm_idle_w + hbm_dynamic_w * (cold != 0 ? desc[row + 4] : desc[row + 3]);
            end = now + dt;
            if (record != 0 && end > now) {
                k = lens[0];
                if (k >= seg_cap) return 1;
                seg[k * 5 + 0] = now;
                seg[k * 5 + 1] = end;
                seg[k * 5 + 2] = x_w;
                seg[k * 5 + 3] = i_w;
                seg[k * 5 + 4] = h_w;
                lens[0] = k + 1;
            }
            total_w = x_w + i_w + h_w;
            total_j = total_w * dt;
            st[S_CEN] += total_j;
            st[S_CTM] += dt;
            st[S_CAC] += dt;
            alpha = 1.0 - exp(-dt / heat_tau);
            warmth += (1.0 - warmth) * alpha;
            if (warmth < 0.0) warmth = 0.0;
            if (warmth > 1.0) warmth = 1.0;
            st[S_WARMTH] = warmth;
            st[S_NOW] = end;
            energy_j += total_j;
            xcd_j += x_w * dt;
            iod_j += i_w * dt;
            hbm_j += h_w * dt;
            freq_time_weighted += frequency * dt;
            work_remaining -= dt / duration_full;
            now = end;
            if (now + 1e-12 >= st[S_NEXT]) {
                rc = control_boundary(st, pp, ev, ev_cap, lens);
                if (rc != 0) return rc;
            }
        }
    }
    end_s = now;
    duration = end_s - start_s;
    out8[0] = start_s;
    out8[1] = end_s;
    out8[2] = cold != 0 ? 1.0 : 0.0;
    out8[3] = freq_time_weighted / duration;
    out8[4] = energy_j;
    out8[5] = xcd_j / duration;
    out8[6] = iod_j / duration;
    out8[7] = hbm_j / duration;
    return 0;
}

int fc_idle(double *st, const double *pp, double duration, int record,
            double *seg, long seg_cap, double *ev, long ev_cap, long *lens) {
    lens[0] = 0;
    lens[1] = 0;
    return idle_core(st, pp, duration, record, seg, seg_cap, ev, ev_cap, lens);
}

int fc_execute(double *st, const double *pp, const double *desc,
               double time_factor, int cold, int record, double *seg,
               long seg_cap, double *ev, long ev_cap, long *lens,
               double *out8) {
    lens[0] = 0;
    lens[1] = 0;
    return execute_core(st, pp, desc, time_factor, cold, record, seg, seg_cap,
                        ev, ev_cap, lens, out8);
}

int fc_sequence(double *st, const double *pp, const double *desc,
                double *cache, long executions, const double *variates,
                int has_rv, double run_factor, double execution_cv,
                double latency_mean, double latency_jitter, double error_std,
                double gap_s, int record, double *seg, long seg_cap,
                double *ev, long ev_cap, long *lens, double *exec_rows,
                double *cpu_starts, double *cpu_ends) {
    double min_factor = pp[P_MINFACT];
    double retention = pp[P_RETENTION];
    double cold_executions = desc[3];
    double launch_latency, jitter, time_factor, cpu_start, cpu_end;
    double *row8;
    long i, cursor = 0;
    int cold, rc;
    lens[0] = 0;
    lens[1] = 0;
    for (i = 0; i < executions; i++) {
        if (i > 0 && gap_s > 0.0) {
            rc = idle_core(st, pp, gap_s, record, seg, seg_cap, ev, ev_cap, lens);
            if (rc != 0) return rc;
        }
        launch_latency = latency_mean + latency_jitter * variates[cursor];
        if (launch_latency < 0.2e-6) launch_latency = 0.2e-6;
        jitter = exp(0.0 + execution_cv * variates[cursor + 1]);
        if (jitter < min_factor) jitter = min_factor;
        rc = idle_core(st, pp, launch_latency, record, seg, seg_cap, ev, ev_cap, lens);
        if (rc != 0) return rc;
        if (st[S_NOW] - cache[1] > retention) cache[0] = 0.0;
        cold = cache[0] < cold_executions ? 1 : 0;
        time_factor = has_rv == 0 ? jitter : run_factor * jitter;
        row8 = exec_rows + i * 8;
        rc = execute_core(st, pp, desc, time_factor, cold, record, seg, seg_cap,
                          ev, ev_cap, lens, row8);
        if (rc != 0) return rc;
        cache[0] += 1.0;
        cache[1] = row8[1];
        cpu_start = row8[0] + error_std * variates[cursor + 2];
        cpu_end = row8[1] + error_std * variates[cursor + 3];
        if (cpu_end < cpu_start) cpu_end = cpu_start;
        cpu_starts[i] = cpu_start;
        cpu_ends[i] = cpu_end;
        cursor += 4;
    }
    return 0;
}
"""

#: Compile flags that keep the C core bit-identical to the Python engines:
#: no fast-math value substitutions, no FMA contraction of separate ops.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")


def source_digest() -> str:
    """Hash of the C source; keys the compiled-library cache."""
    return hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]


def find_compiler() -> str | None:
    """Locate a C compiler (``$CC``, then ``gcc``, then ``cc``)."""
    for candidate in (os.environ.get("CC"), "gcc", "cc"):
        if candidate:
            path = shutil.which(candidate)
            if path:
                return path
    return None


def cache_dir() -> Path:
    configured = os.environ.get("REPRO_FASTCORE_CACHE")
    if configured:
        return Path(configured)
    return Path(tempfile.gettempdir()) / "repro-fastcore"


def build_library(compiler: str | None = None) -> Path:
    """Compile (or reuse) the shared library; returns its path.

    The library lands at a digest-keyed path via an atomic rename, so
    concurrent builders (sweep worker pools) race benignly.
    """
    compiler = compiler or find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (set $CC, or install gcc/cc)")
    directory = cache_dir()
    lib_path = directory / f"fastcore-{source_digest()}.so"
    if lib_path.exists():
        return lib_path
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_src = tempfile.mkstemp(suffix=".c", dir=directory)
    tmp_lib = tmp_src[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(_C_SOURCE)
        result = subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp_lib, tmp_src],
            capture_output=True,
            text=True,
        )
        if result.returncode != 0:
            raise RuntimeError(
                f"fastcore C build failed ({compiler}): {result.stderr.strip()}"
            )
        os.replace(tmp_lib, lib_path)
    finally:
        for leftover in (tmp_src, tmp_lib):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return lib_path


class CcKernels:
    """ctypes binding presenting the uniform fastcore kernel API.

    ``idle`` / ``execute`` / ``sequence`` take the same numpy-array arguments
    as the ``_fastcore_kernels`` entry points (capacities are read off the
    array shapes here and passed explicitly to C).

    Arrays are passed as raw data pointers cached per array identity: the
    device reuses the same state/param/scratch buffers for the lifetime of a
    run, and ``ndpointer`` (or even ``arr.ctypes.data``) conversion on every
    call costs an order of magnitude more than the short-span kernels
    themselves.  The cache pins each array it has seen, so a recycled ``id``
    can never alias a stale pointer; it is cleared when it outgrows the
    handful of long-lived buffers it exists for.
    """

    name = "cc"

    def __init__(self, lib_path: Path) -> None:
        self.lib_path = lib_path
        lib = ctypes.CDLL(str(lib_path))
        ptr = ctypes.c_void_p
        lib.fc_idle.restype = ctypes.c_int
        lib.fc_idle.argtypes = [
            ptr, ptr, ctypes.c_double, ctypes.c_int,
            ptr, ctypes.c_long, ptr, ctypes.c_long, ptr,
        ]
        lib.fc_execute.restype = ctypes.c_int
        lib.fc_execute.argtypes = [
            ptr, ptr, ptr, ctypes.c_double, ctypes.c_int, ctypes.c_int,
            ptr, ctypes.c_long, ptr, ctypes.c_long, ptr, ptr,
        ]
        lib.fc_sequence.restype = ctypes.c_int
        lib.fc_sequence.argtypes = [
            ptr, ptr, ptr, ptr, ctypes.c_long, ptr, ctypes.c_int,
            ctypes.c_double, ctypes.c_double, ctypes.c_double, ctypes.c_double,
            ctypes.c_double, ctypes.c_double, ctypes.c_int,
            ptr, ctypes.c_long, ptr, ctypes.c_long, ptr, ptr, ptr, ptr,
        ]
        self._lib = lib
        self._ptrs: dict[int, tuple] = {}

    def _ptr(self, arr) -> int:
        cached = self._ptrs.get(id(arr))  # statics: allow[identity-hash] -- pointer cache; the pinned array reference keeps the id stable
        if cached is not None and cached[0] is arr:
            return cached[1]
        if not arr.flags["C_CONTIGUOUS"]:
            raise ValueError("fastcore kernel arrays must be C-contiguous")
        if len(self._ptrs) > 64:  # scratch arrays from tests/self-checks
            self._ptrs.clear()
        address = arr.ctypes.data
        self._ptrs[id(arr)] = (arr, address)  # statics: allow[identity-hash] -- cached address is per-process by nature and never persisted
        return address

    def idle(self, st, pp, duration, record, seg, ev, lens):
        p = self._ptr
        return self._lib.fc_idle(
            p(st), p(pp), duration, record,
            p(seg), seg.shape[0], p(ev), ev.shape[0], p(lens),
        )

    def execute(self, st, pp, desc, time_factor, cold, record, seg, ev, lens, out8):
        p = self._ptr
        return self._lib.fc_execute(
            p(st), p(pp), p(desc), time_factor, cold, record,
            p(seg), seg.shape[0], p(ev), ev.shape[0], p(lens), p(out8),
        )

    def sequence(
        self, st, pp, desc, cache, executions, variates, has_rv, run_factor,
        execution_cv, latency_mean, latency_jitter, error_std, gap_s, record,
        seg, ev, lens, exec_rows, cpu_starts, cpu_ends,
    ):
        p = self._ptr
        return self._lib.fc_sequence(
            p(st), p(pp), p(desc), p(cache), executions, p(variates), has_rv,
            run_factor, execution_cv, latency_mean, latency_jitter, error_std,
            gap_s, record, p(seg), seg.shape[0], p(ev), ev.shape[0], p(lens),
            p(exec_rows), p(cpu_starts), p(cpu_ends),
        )


def load() -> CcKernels:
    """Build (if needed) and bind the C core."""
    return CcKernels(build_library())


__all__ = ["CcKernels", "load", "build_library", "find_compiler", "source_digest"]
