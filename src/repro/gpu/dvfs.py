"""Power-management firmware: DVFS control loop with power-cap throttling.

The paper observes (Section V-C1, Figure 6) that the first executions of a
compute-heavy GEMM "considerably stress power, invoking the power management
firmware to throttle frequency in order to manage power excursions", after
which power drops to the steady-state-execution (SSE) level and then slowly
rises again to the steady-state-power (SSP) level.  This module reproduces
that behaviour with a small control loop:

* the clock ramps from the idle frequency toward boost when work arrives;
* if total board power stays above the limit for a sustained interval
  (an *excursion*), the firmware throttles hard to the sustained frequency;
* after a hold-off it recovers the clock in small steps until power reaches a
  target just below the limit, then holds.

The asymmetric throttle-hard / recover-slowly policy is what creates the
visible SSE-to-SSP power spread for kernels that are power-limited, while
kernels that never exceed the limit simply sit at boost.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from .spec import DVFSSpec, PowerBudget


class FirmwareState(str, enum.Enum):
    """Discrete states of the power-management control loop."""

    IDLE = "idle"
    RAMPING = "ramping"
    BOOST = "boost"
    THROTTLED = "throttled"
    RECOVERING = "recovering"
    CAPPED = "capped"


@dataclass
class FirmwareEvent:
    """A state transition of the firmware, recorded for analysis and tests.

    All fields are finite: transitions that happen between control steps
    (kernel-arrival boosts) record the last-known mean power rather than NaN,
    so aggregations over the event history are always well-defined.
    """

    time_s: float
    state: FirmwareState
    frequency_ghz: float
    power_w: float


@dataclass
class FirmwareConfig:
    """Tunables of the power-management loop."""

    #: Fraction of the board limit that must be exceeded to count as overdraw.
    excursion_threshold: float = 1.0
    #: Continuous overdraw duration that triggers a hard throttle (seconds).
    excursion_window_s: float = 800e-6
    #: Time the firmware holds the sustained clock after a hard throttle.
    throttle_hold_s: float = 1.6e-3
    #: Clock increase per control period while recovering (GHz).
    recovery_step_ghz: float = 0.010
    #: Clock increase per control period while ramping out of idle (GHz).
    ramp_step_ghz: float = 0.5
    #: Power target after a throttle event, as a fraction of the board limit.
    #: The firmware recovers conservatively (with a small hysteresis margin)
    #: rather than riding the limit, so the post-throttle steady state sits
    #: just below the board limit.
    cap_target: float = 0.985
    #: Hysteresis below ``cap_target`` (as a fraction of the board limit) that
    #: power must clear before a capped controller releases the cap and starts
    #: recovering the clock.  Keeps the cap from chattering when power hovers
    #: around the target.
    cap_release_hysteresis: float = 0.03
    #: Time with no resident kernel after which the clock parks at idle.
    idle_park_s: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.cap_release_hysteresis < 0:
            raise ValueError("cap-release hysteresis cannot be negative")


class PowerManagementFirmware:
    """Stateful DVFS controller stepped by the device every control period."""

    def __init__(
        self,
        dvfs: DVFSSpec,
        budget: PowerBudget,
        config: FirmwareConfig | None = None,
    ) -> None:
        self._dvfs = dvfs
        self._budget = budget
        self._config = config or FirmwareConfig()
        self._state = FirmwareState.IDLE
        self._frequency_ghz = dvfs.idle_frequency_ghz
        self._overdraw_accum_s = 0.0
        self._throttle_until_s = 0.0
        self._idle_accum_s = 0.0
        self._last_power_w = 0.0
        self._events: list[FirmwareEvent] = []

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> FirmwareState:
        return self._state

    @property
    def frequency_ghz(self) -> float:
        return self._frequency_ghz

    @property
    def config(self) -> FirmwareConfig:
        return self._config

    @property
    def events(self) -> list[FirmwareEvent]:
        """State-transition history (oldest first)."""
        return list(self._events)

    def reset(self) -> None:
        """Return the controller to the parked/idle state."""
        self._state = FirmwareState.IDLE
        self._frequency_ghz = self._dvfs.idle_frequency_ghz
        self._overdraw_accum_s = 0.0
        self._throttle_until_s = 0.0
        self._idle_accum_s = 0.0
        self._last_power_w = 0.0
        self._events.clear()

    # ------------------------------------------------------------------ #
    # Control loop.
    # ------------------------------------------------------------------ #
    def notify_kernel_arrival(self, now_s: float) -> float:
        """Raise clocks immediately when work arrives on an idle device.

        Real firmware ramps clocks within tens of microseconds of a kernel
        launch -- much faster than the power-management control period -- so
        the device calls this hook at kernel start instead of waiting for the
        next control step.  Returns the (possibly boosted) clock.

        The boost happens between control steps, so no power measurement is
        available for the transition event; the last-known mean power (0.0
        before the first control step) is recorded instead so that every
        :class:`FirmwareEvent` field stays finite and aggregations over
        :meth:`events` are never NaN-poisoned.
        """
        self._idle_accum_s = 0.0
        if self._state in (FirmwareState.IDLE, FirmwareState.RAMPING):
            self._transition(
                now_s, FirmwareState.BOOST, self._dvfs.boost_frequency_ghz, self._last_power_w
            )
        return self._frequency_ghz

    def step(self, now_s: float, dt_s: float, total_power_w: float, kernel_resident: bool) -> float:
        """Advance the controller by ``dt_s`` and return the new core clock.

        Parameters
        ----------
        now_s:
            Current simulated time.
        dt_s:
            Duration of the elapsed control interval.
        total_power_w:
            Average total board power over the elapsed interval.
        kernel_resident:
            Whether a kernel was executing during the interval.

        Note: ``SimulatedGPU._idle_fast`` inlines the non-resident branch for
        an already-IDLE controller (it cannot transition, so the bookkeeping
        is three attribute writes) and :meth:`idle_span` replays a whole run
        of non-resident steps in closed form; if either branch's behaviour
        changes here, keep both in lockstep -- the idle scenarios of the
        device equivalence suite pin the three against each other.

        A zero-length interval is a no-op: no time elapsed, so there is no
        power measurement to ingest.  (Acting on it used to overwrite
        ``_last_power_w`` with whatever the caller passed and could drive
        recover/hold-cap transitions on no elapsed time.)
        """
        if dt_s < 0:
            raise ValueError("control interval cannot be negative")
        if dt_s == 0:
            return self._frequency_ghz
        self._last_power_w = float(total_power_w)
        cfg = self._config
        dvfs = self._dvfs
        limit = self._budget.board_limit_w

        if not kernel_resident:
            self._idle_accum_s += dt_s
            self._overdraw_accum_s = 0.0
            if self._idle_accum_s >= cfg.idle_park_s and self._state is not FirmwareState.IDLE:
                self._transition(now_s, FirmwareState.IDLE, dvfs.idle_frequency_ghz, total_power_w)
            return self._frequency_ghz

        self._idle_accum_s = 0.0

        # Track sustained overdraw regardless of state.
        if total_power_w > limit * cfg.excursion_threshold:
            self._overdraw_accum_s += dt_s
        else:
            self._overdraw_accum_s = 0.0

        if self._state in (FirmwareState.IDLE, FirmwareState.RAMPING):
            self._ramp(now_s, total_power_w)
        elif self._state is FirmwareState.BOOST:
            if self._overdraw_accum_s >= cfg.excursion_window_s:
                self._throttle(now_s, total_power_w)
        elif self._state is FirmwareState.THROTTLED:
            if now_s >= self._throttle_until_s:
                self._transition(now_s, FirmwareState.RECOVERING, self._frequency_ghz, total_power_w)
        elif self._state is FirmwareState.RECOVERING:
            self._recover(now_s, total_power_w)
        elif self._state is FirmwareState.CAPPED:
            self._hold_cap(now_s, total_power_w)
        return self._frequency_ghz

    def idle_span(
        self,
        start_s: float,
        duration_s: float,
        power_w: float,
        boundary_times_s: np.ndarray,
        boundary_dts_s: np.ndarray,
    ) -> float:
        """Advance the controller over N idle control periods in closed form.

        Batched equivalent of N consecutive non-resident :meth:`step` calls,
        one per control period of an idle span starting at ``start_s`` and
        lasting ``duration_s`` (the two scalars pin the grid to the span:
        every boundary must lie inside ``(start_s, start_s + duration_s]``
        up to a nanosecond of slack, and a misaligned grid is rejected; the
        controller arithmetic is driven by the grid alone):
        ``boundary_times_s[k]`` is the simulated time
        of the k-th control boundary and ``boundary_dts_s[k]`` the elapsed
        interval it closes (both positive, chronological -- the device's
        fp-exact boundary grid).  ``power_w`` is the constant total idle power
        over the span; each interval's mean power replays the accumulator
        arithmetic ``(power_w * dt) / dt`` of the per-period loop.

        A run of non-resident steps can produce at most one transition -- the
        IDLE park once ``_idle_accum_s`` crosses ``idle_park_s`` (after
        parking, further non-resident steps only accumulate) -- so its
        boundary index is computed directly from the running idle accumulation
        and the identical :class:`FirmwareEvent` is synthesized at that
        boundary; ``_idle_accum_s`` / ``_last_power_w`` / ``_overdraw_accum_s``
        end up exactly as N inlined ``step()`` calls would leave them
        (``np.add.accumulate`` replays the iterated float additions of
        ``_idle_accum_s += dt_s`` bit for bit).

        Note: this is the batched half of the lockstep contract documented on
        :meth:`step` -- ``SimulatedGPU._idle_fast`` drives it for the interior
        boundaries of multi-period idle spans, and the device equivalence
        suite pins it against the per-period loop.  Keep the bookkeeping here
        in lockstep with ``step()``'s non-resident branch.
        """
        n = len(boundary_times_s)
        if n != len(boundary_dts_s):
            raise ValueError("boundary times and intervals must align")
        if duration_s < 0:
            raise ValueError("idle span cannot be negative")
        if n == 0:
            return self._frequency_ghz
        if not (
            start_s < boundary_times_s[0]
            and boundary_times_s[-1] <= start_s + duration_s + 1e-9
        ):
            raise ValueError("boundary grid does not lie within the idle span")
        dts = np.asarray(boundary_dts_s, dtype=float)
        # _idle_accum_s += dt, iterated: add.accumulate is sequential, so the
        # running sums carry the exact floats of the per-period loop.
        accum = np.empty(n + 1)
        accum[0] = self._idle_accum_s
        accum[1:] = dts
        np.add.accumulate(accum, out=accum)
        if self._state is not FirmwareState.IDLE:
            park = int(np.searchsorted(accum[1:], self._config.idle_park_s, side="left"))
            if park < n:
                dt_k = float(dts[park])
                mean_k = (power_w * dt_k) / dt_k
                self._transition(
                    float(boundary_times_s[park]),
                    FirmwareState.IDLE,
                    self._dvfs.idle_frequency_ghz,
                    mean_k,
                )
        self._idle_accum_s = float(accum[-1])
        self._overdraw_accum_s = 0.0
        dt_last = float(dts[-1])
        self._last_power_w = (power_w * dt_last) / dt_last
        return self._frequency_ghz

    # ------------------------------------------------------------------ #
    # State handlers.
    # ------------------------------------------------------------------ #
    def _ramp(self, now_s: float, power_w: float) -> None:
        dvfs = self._dvfs
        target = dvfs.boost_frequency_ghz
        new_frequency = min(self._frequency_ghz + self._config.ramp_step_ghz, target)
        state = FirmwareState.BOOST if new_frequency >= target else FirmwareState.RAMPING
        self._transition(now_s, state, new_frequency, power_w)

    def _throttle(self, now_s: float, power_w: float) -> None:
        dvfs = self._dvfs
        self._throttle_until_s = now_s + self._config.throttle_hold_s
        self._overdraw_accum_s = 0.0
        self._transition(now_s, FirmwareState.THROTTLED, dvfs.sustained_frequency_ghz, power_w)

    def _recover(self, now_s: float, power_w: float) -> None:
        cfg = self._config
        dvfs = self._dvfs
        limit = self._budget.board_limit_w
        if power_w >= limit * cfg.cap_target:
            self._transition(now_s, FirmwareState.CAPPED, self._frequency_ghz, power_w)
            return
        new_frequency = min(self._frequency_ghz + cfg.recovery_step_ghz, dvfs.boost_frequency_ghz)
        if new_frequency >= dvfs.boost_frequency_ghz:
            self._transition(now_s, FirmwareState.BOOST, new_frequency, power_w)
        else:
            self._transition(now_s, FirmwareState.RECOVERING, new_frequency, power_w)

    def _hold_cap(self, now_s: float, power_w: float) -> None:
        cfg = self._config
        dvfs = self._dvfs
        limit = self._budget.board_limit_w
        if power_w > limit:
            new_frequency = max(self._frequency_ghz - cfg.recovery_step_ghz, dvfs.sustained_frequency_ghz)
            self._transition(now_s, FirmwareState.CAPPED, new_frequency, power_w)
        elif power_w < limit * (cfg.cap_target - cfg.cap_release_hysteresis):
            # The workload got lighter; allow the clock to creep back up.
            self._transition(now_s, FirmwareState.RECOVERING, self._frequency_ghz, power_w)

    def _transition(
        self, now_s: float, state: FirmwareState, frequency_ghz: float, power_w: float
    ) -> None:
        changed = state is not self._state or frequency_ghz != self._frequency_ghz
        self._state = state
        self._frequency_ghz = float(
            min(max(frequency_ghz, self._dvfs.idle_frequency_ghz), self._dvfs.boost_frequency_ghz)
        )
        if changed:
            self._events.append(
                FirmwareEvent(
                    time_s=now_s,
                    state=state,
                    frequency_ghz=self._frequency_ghz,
                    power_w=power_w,
                )
            )

    # ------------------------------------------------------------------ #
    # Analysis helpers.
    # ------------------------------------------------------------------ #
    def throttle_count(self) -> int:
        """Number of hard-throttle events recorded so far."""
        return sum(1 for event in self._events if event.state is FirmwareState.THROTTLED)

    def was_power_limited(self) -> bool:
        """True when the controller hard-throttled or is holding the cap."""
        return self.throttle_count() > 0 or self._state is FirmwareState.CAPPED


__all__ = [
    "FirmwareState",
    "FirmwareEvent",
    "FirmwareConfig",
    "PowerManagementFirmware",
]
