"""Power telemetry of the simulated GPU.

Three samplers are modelled, mirroring the tooling landscape the paper
describes:

* :class:`AveragingPowerLogger` -- the on-GPU 1 ms logger the paper harnesses
  (solution S1).  Every sample is the average of instantaneous power over the
  trailing averaging window and is tagged with a GPU timestamp-counter value.
  The averaging semantics are what create the SSE/SSP power-profile split and
  the sensitivity of short kernels to whatever ran just before them.
* :class:`CoarsePowerSampler` -- an amd-smi-like external sampler with a
  period of tens of milliseconds (challenge C1 baseline).
* :class:`InstantaneousPowerSampler` -- an idealised point sampler used for
  ablations (paper Section V-C3 notes that with an instantaneous sampler the
  interleaving caveat disappears).

All samplers are *post-processing* views over the instantaneous power timeline
recorded by the device -- either a :class:`~repro.gpu.device.PowerSegment`
list (reference engine) or a columnar
:class:`~repro.gpu.device.SegmentArray` (vectorized engine, ingested without
re-packing dataclasses) -- which keeps the simulation simple while preserving
the observable behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .clocks import GPUTimestampCounter
from .device import PowerSegment, SegmentArray
from .power_model import ComponentPower


@dataclass(frozen=True)
class TelemetrySample:
    """One sample emitted by a power sampler.

    ``gpu_timestamp_ticks`` is what a real logger exposes; ``window_end_s`` is
    the ground-truth simulated time of the sample and is retained only for
    validation in tests -- the FinGraV methodology never reads it.
    """

    gpu_timestamp_ticks: int
    window_end_s: float
    window_s: float
    power: ComponentPower

    @property
    def total_w(self) -> float:
        return self.power.total_w


def _average_power_over(
    segments: Sequence[PowerSegment],
    window_start_s: float,
    window_end_s: float,
    fill_power: ComponentPower,
) -> ComponentPower:
    """Time-weighted average power over a window, filling gaps with ``fill_power``."""
    window = window_end_s - window_start_s
    if window <= 0:
        raise ValueError("averaging window must have positive length")
    xcd = iod = hbm = 0.0
    covered = 0.0
    for segment in segments:
        overlap_start = max(segment.start_s, window_start_s)
        overlap_end = min(segment.end_s, window_end_s)
        overlap = overlap_end - overlap_start
        if overlap <= 0:
            continue
        xcd += segment.power.xcd_w * overlap
        iod += segment.power.iod_w * overlap
        hbm += segment.power.hbm_w * overlap
        covered += overlap
    uncovered = max(window - covered, 0.0)
    if uncovered > 0:
        xcd += fill_power.xcd_w * uncovered
        iod += fill_power.iod_w * uncovered
        hbm += fill_power.hbm_w * uncovered
    return ComponentPower(xcd_w=xcd / window, iod_w=iod / window, hbm_w=hbm / window)


def _instantaneous_power_at(
    segments: Sequence[PowerSegment], time_s: float, fill_power: ComponentPower
) -> ComponentPower:
    """Instantaneous power at ``time_s`` (the segment covering it, else idle)."""
    for segment in segments:
        if segment.start_s <= time_s < segment.end_s:
            return segment.power
    return fill_power


class _SegmentTimeline:
    """Vectorized view over a recording's power segments.

    Builds a piecewise-constant (xcd, iod, hbm) power timeline -- segment
    power inside segments, ``fill_power`` in the gaps and outside the recorded
    span -- together with a cumulative-energy table at every segment boundary.
    Window averages then reduce to two cumulative-energy lookups per window
    instead of a scan over all segments, turning the per-sample O(segments)
    averaging into O(log segments).

    Requires chronologically sorted, non-overlapping segments (what the device
    records); ``usable`` is False otherwise and callers fall back to the
    scalar helpers, which also handle overlap.

    Long idle spans reach this layer as one gapless boundary grid: the
    device's batched idle-span engine bulk-appends a whole grid of
    control-period slices per span, so a recording dominated by parks and
    padding is ingested here as a single contiguous :class:`SegmentArray`
    taking the gapless fast path below -- no per-slice Python on either side.
    """

    def __init__(self, segments: Sequence[PowerSegment], fill_power: ComponentPower) -> None:
        self._fill = np.array(
            [fill_power.xcd_w, fill_power.iod_w, fill_power.hbm_w], dtype=float
        )
        n = len(segments)
        self._gapless = False
        if n == 0:
            self.usable = True
            self._bounds = np.zeros(1, dtype=float)
            self._powers = np.empty((0, 3), dtype=float)
            self._cumulative = np.zeros((1, 3), dtype=float)
            return
        if isinstance(segments, SegmentArray):
            # Columnar recordings from the vectorized device are ingested
            # directly -- no per-segment dataclass unpacking.
            starts = segments.starts_s
            ends = segments.ends_s
            segment_powers = segments.powers
        else:
            starts = np.asarray([s.start_s for s in segments], dtype=float)
            ends = np.asarray([s.end_s for s in segments], dtype=float)
            segment_powers = np.asarray(
                [[s.power.xcd_w, s.power.iod_w, s.power.hbm_w] for s in segments],
                dtype=float,
            )
        self.usable = bool(
            (ends >= starts).all() and (starts[1:] >= ends[:-1]).all()
        )
        if not self.usable:
            return
        if n > 1 and (starts[1:] == ends[:-1]).all():
            # Gapless recording (the device emits contiguous slices): every
            # interval is a segment, so the zero-width gap intervals of the
            # general layout can be dropped.  Cumulative energies are
            # identical -- the dropped gaps contribute exactly 0.0.
            bounds = np.empty(n + 1, dtype=float)
            bounds[:n] = starts
            bounds[n] = ends[n - 1]
            powers = segment_powers
            self._gapless = True
        else:
            # Boundaries interleave starts and ends; interval 2i is segment i,
            # odd intervals are the gaps in between (filled with idle power).
            bounds = np.empty(2 * n, dtype=float)
            bounds[0::2] = starts
            bounds[1::2] = ends
            powers = np.empty((2 * n - 1, 3), dtype=float)
            powers[0::2] = segment_powers
            powers[1::2] = self._fill
        m = powers.shape[0]
        cumulative = np.zeros((m + 1, 3), dtype=float)
        np.cumsum(powers * np.diff(bounds)[:, None], axis=0, out=cumulative[1:])
        self._bounds = bounds
        self._powers = powers
        self._cumulative = cumulative

    def energy_between(self, starts_s: np.ndarray, ends_s: np.ndarray) -> np.ndarray:
        """Per-component energy over each ``[start, end]`` window (shape (m, 3))."""
        return self._energy_at(ends_s) - self._energy_at(starts_s)

    def _energy_at(self, times_s: np.ndarray) -> np.ndarray:
        """Cumulative per-component energy from the first boundary to ``t``.

        Negative for times before the first boundary (idle fill extends to
        infinity on both sides), which cancels in :meth:`energy_between`.
        ``times_s`` must be ascending (the samplers' grids are), which lets
        the out-of-range fixups test only the first/last interval index.
        """
        times = np.asarray(times_s, dtype=float)
        bounds = self._bounds
        last = bounds.shape[0] - 1
        interval = bounds.searchsorted(times, side="right") - 1
        clipped = np.minimum(np.maximum(interval, 0), last - 1 if last > 1 else 0)
        if self._powers.shape[0]:
            energy = (
                self._cumulative[clipped]
                + self._powers[clipped] * (times - bounds[clipped])[:, None]
            )
        else:
            energy = np.zeros((times.shape[0], 3), dtype=float)
        if times.shape[0]:
            if interval[0] < 0:
                before = interval < 0
                energy[before] = (times[before] - bounds[0])[:, None] * self._fill
            if interval[-1] >= last:
                after = interval >= last
                energy[after] = (
                    self._cumulative[last]
                    + (times[after] - bounds[last])[:, None] * self._fill
                )
        return energy

    def power_at(self, times_s: np.ndarray) -> np.ndarray:
        """Instantaneous per-component power at each time (shape (m, 3)).

        Matches :func:`_instantaneous_power_at`: half-open ``[start, end)``
        segment spans, idle fill elsewhere.
        """
        times = np.asarray(times_s, dtype=float)
        interval = np.searchsorted(self._bounds, times, side="right") - 1
        inside = (interval >= 0) & (interval < self._powers.shape[0])
        if not self._gapless:
            # In the interleaved layout only even intervals are segments.
            inside &= interval % 2 == 0
        power = np.broadcast_to(self._fill, (times.shape[0], 3)).copy()
        if self._powers.shape[0]:
            power[inside] = self._powers[interval[inside]]
        return power


class AveragingPowerLogger:
    """The on-GPU trailing-window averaging power logger (paper S1).

    The logger free-runs: sample boundaries sit on a fixed absolute grid of
    the simulated timeline (``phase_offset_s`` sets the grid phase), so the
    position of a kernel execution relative to sample boundaries depends on
    when the host happened to launch it -- which is precisely why FinGraV adds
    random delays before kernel executions to cover different times of
    interest (methodology step 5).
    """

    def __init__(
        self,
        counter: GPUTimestampCounter,
        period_s: float,
        idle_power: ComponentPower,
        phase_offset_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("logger period must be positive")
        self._counter = counter
        self._period_s = period_s
        self._idle_power = idle_power
        self._phase_offset_s = phase_offset_s % period_s

    @property
    def period_s(self) -> float:
        return self._period_s

    def sample_times_between(self, start_s: float, end_s: float) -> list[float]:
        """Absolute times of the sample boundaries within ``(start_s, end_s]``.

        A boundary coinciding exactly with the logger start is excluded: its
        averaging window would lie entirely before the logger was running.
        """
        return [float(t) for t in self._sample_times_array(start_s, end_s)]

    def _sample_times_array(self, start_s: float, end_s: float) -> np.ndarray:
        if end_s < start_s:
            raise ValueError("end time must not precede start time")
        first_index = math.ceil((start_s - self._phase_offset_s) / self._period_s)
        # One extra candidate on each side absorbs floor/ceil float rounding;
        # the filters reproduce the boundary conditions of the scalar loop.
        last_index = math.floor((end_s + 1e-12 - self._phase_offset_s) / self._period_s) + 1
        indices = np.arange(first_index, max(last_index, first_index) + 1)
        times = self._phase_offset_s + indices * self._period_s
        return times[(times > start_s + 1e-12) & (times <= end_s + 1e-12)]

    def sample_columns(
        self,
        segments: Sequence[PowerSegment],
        logger_start_s: float,
        logger_stop_s: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Columnar samples: ``(gpu_ticks, window_end_s, powers, window_s)``.

        ``powers`` has one xcd/iod/hbm row per sample.  This is the raw form
        the vectorized backend consumes directly; :meth:`samples` wraps the
        same columns into :class:`TelemetrySample` objects.

        Segment-to-sample averaging runs on the cumulative-energy timeline:
        every window average is the difference of two cumulative-energy
        lookups, evaluated for all samples in one vectorized pass.
        """
        times = self._sample_times_array(logger_start_s, logger_stop_s)
        if times.shape[0] == 0:
            return times.astype(np.int64), times, np.empty((0, 3)), self._period_s
        timeline = _SegmentTimeline(segments, self._idle_power)
        if timeline.usable:
            energies = timeline.energy_between(times - self._period_s, times)
            powers = energies / self._period_s
        else:
            # Overlapping segments: fall back to the per-window scalar average.
            averages = [
                _average_power_over(segments, t - self._period_s, t, self._idle_power)
                for t in times
            ]
            powers = np.asarray(
                [[p.xcd_w, p.iod_w, p.hbm_w] for p in averages], dtype=float
            )
        ticks = self._counter.ticks_at_many(times)
        return ticks, times, powers, self._period_s

    def samples(
        self,
        segments: Sequence[PowerSegment],
        logger_start_s: float,
        logger_stop_s: float,
    ) -> list[TelemetrySample]:
        """Compute the samples the logger would have reported for a recording."""
        ticks, times, powers, window_s = self.sample_columns(
            segments, logger_start_s, logger_stop_s
        )
        return [
            TelemetrySample(
                gpu_timestamp_ticks=int(ticks[i]),
                window_end_s=float(times[i]),
                window_s=window_s,
                power=ComponentPower(
                    xcd_w=float(powers[i, 0]),
                    iod_w=float(powers[i, 1]),
                    hbm_w=float(powers[i, 2]),
                ),
            )
            for i in range(times.shape[0])
        ]


class CoarsePowerSampler(AveragingPowerLogger):
    """An external, amd-smi-like sampler with a period of tens of milliseconds.

    Functionally identical to the averaging logger but with a much longer
    period; used as the challenge-C1 baseline showing that coarse sampling can
    miss sub-millisecond kernels entirely.
    """

    DEFAULT_PERIOD_S = 20e-3

    def __init__(
        self,
        counter: GPUTimestampCounter,
        idle_power: ComponentPower,
        period_s: float = DEFAULT_PERIOD_S,
        phase_offset_s: float = 0.0,
    ) -> None:
        super().__init__(counter, period_s, idle_power, phase_offset_s)


class InstantaneousPowerSampler:
    """An idealised point sampler (no averaging), used for ablations."""

    def __init__(
        self,
        counter: GPUTimestampCounter,
        period_s: float,
        idle_power: ComponentPower,
        phase_offset_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("sampler period must be positive")
        self._counter = counter
        self._period_s = period_s
        self._idle_power = idle_power
        self._phase_offset_s = phase_offset_s % period_s

    @property
    def period_s(self) -> float:
        return self._period_s

    def sample_columns(
        self,
        segments: Sequence[PowerSegment],
        start_s: float,
        stop_s: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Columnar samples ``(gpu_ticks, sample_time_s, powers, window_s=0.0)``."""
        first_index = math.ceil((start_s - self._phase_offset_s) / self._period_s)
        last_index = math.floor((stop_s + 1e-12 - self._phase_offset_s) / self._period_s) + 1
        indices = np.arange(first_index, max(last_index, first_index) + 1)
        times = self._phase_offset_s + indices * self._period_s
        times = times[times <= stop_s + 1e-12]
        if times.shape[0] == 0:
            return times.astype(np.int64), times, np.empty((0, 3)), 0.0
        timeline = _SegmentTimeline(segments, self._idle_power)
        if timeline.usable:
            powers = timeline.power_at(times)
        else:
            points = [_instantaneous_power_at(segments, t, self._idle_power) for t in times]
            powers = np.asarray([[p.xcd_w, p.iod_w, p.hbm_w] for p in points], dtype=float)
        ticks = self._counter.ticks_at_many(times)
        return ticks, times, powers, 0.0

    def samples(
        self,
        segments: Sequence[PowerSegment],
        start_s: float,
        stop_s: float,
    ) -> list[TelemetrySample]:
        ticks, times, powers, window_s = self.sample_columns(segments, start_s, stop_s)
        return [
            TelemetrySample(
                gpu_timestamp_ticks=int(ticks[i]),
                window_end_s=float(times[i]),
                window_s=window_s,
                power=ComponentPower(
                    xcd_w=float(powers[i, 0]),
                    iod_w=float(powers[i, 1]),
                    hbm_w=float(powers[i, 2]),
                ),
            )
            for i in range(times.shape[0])
        ]


__all__ = [
    "TelemetrySample",
    "AveragingPowerLogger",
    "CoarsePowerSampler",
    "InstantaneousPowerSampler",
]
