"""Power telemetry of the simulated GPU.

Three samplers are modelled, mirroring the tooling landscape the paper
describes:

* :class:`AveragingPowerLogger` -- the on-GPU 1 ms logger the paper harnesses
  (solution S1).  Every sample is the average of instantaneous power over the
  trailing averaging window and is tagged with a GPU timestamp-counter value.
  The averaging semantics are what create the SSE/SSP power-profile split and
  the sensitivity of short kernels to whatever ran just before them.
* :class:`CoarsePowerSampler` -- an amd-smi-like external sampler with a
  period of tens of milliseconds (challenge C1 baseline).
* :class:`InstantaneousPowerSampler` -- an idealised point sampler used for
  ablations (paper Section V-C3 notes that with an instantaneous sampler the
  interleaving caveat disappears).

All samplers are *post-processing* views over the instantaneous power timeline
(:class:`~repro.gpu.device.PowerSegment` lists) recorded by the device, which
keeps the simulation simple while preserving the observable behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .clocks import GPUTimestampCounter
from .device import PowerSegment
from .power_model import ComponentPower


@dataclass(frozen=True)
class TelemetrySample:
    """One sample emitted by a power sampler.

    ``gpu_timestamp_ticks`` is what a real logger exposes; ``window_end_s`` is
    the ground-truth simulated time of the sample and is retained only for
    validation in tests -- the FinGraV methodology never reads it.
    """

    gpu_timestamp_ticks: int
    window_end_s: float
    window_s: float
    power: ComponentPower

    @property
    def total_w(self) -> float:
        return self.power.total_w


def _average_power_over(
    segments: Sequence[PowerSegment],
    window_start_s: float,
    window_end_s: float,
    fill_power: ComponentPower,
) -> ComponentPower:
    """Time-weighted average power over a window, filling gaps with ``fill_power``."""
    window = window_end_s - window_start_s
    if window <= 0:
        raise ValueError("averaging window must have positive length")
    xcd = iod = hbm = 0.0
    covered = 0.0
    for segment in segments:
        overlap_start = max(segment.start_s, window_start_s)
        overlap_end = min(segment.end_s, window_end_s)
        overlap = overlap_end - overlap_start
        if overlap <= 0:
            continue
        xcd += segment.power.xcd_w * overlap
        iod += segment.power.iod_w * overlap
        hbm += segment.power.hbm_w * overlap
        covered += overlap
    uncovered = max(window - covered, 0.0)
    if uncovered > 0:
        xcd += fill_power.xcd_w * uncovered
        iod += fill_power.iod_w * uncovered
        hbm += fill_power.hbm_w * uncovered
    return ComponentPower(xcd_w=xcd / window, iod_w=iod / window, hbm_w=hbm / window)


def _instantaneous_power_at(
    segments: Sequence[PowerSegment], time_s: float, fill_power: ComponentPower
) -> ComponentPower:
    """Instantaneous power at ``time_s`` (the segment covering it, else idle)."""
    for segment in segments:
        if segment.start_s <= time_s < segment.end_s:
            return segment.power
    return fill_power


class AveragingPowerLogger:
    """The on-GPU trailing-window averaging power logger (paper S1).

    The logger free-runs: sample boundaries sit on a fixed absolute grid of
    the simulated timeline (``phase_offset_s`` sets the grid phase), so the
    position of a kernel execution relative to sample boundaries depends on
    when the host happened to launch it -- which is precisely why FinGraV adds
    random delays before kernel executions to cover different times of
    interest (methodology step 5).
    """

    def __init__(
        self,
        counter: GPUTimestampCounter,
        period_s: float,
        idle_power: ComponentPower,
        phase_offset_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("logger period must be positive")
        self._counter = counter
        self._period_s = period_s
        self._idle_power = idle_power
        self._phase_offset_s = phase_offset_s % period_s

    @property
    def period_s(self) -> float:
        return self._period_s

    def sample_times_between(self, start_s: float, end_s: float) -> list[float]:
        """Absolute times of the sample boundaries within ``(start_s, end_s]``.

        A boundary coinciding exactly with the logger start is excluded: its
        averaging window would lie entirely before the logger was running.
        """
        if end_s < start_s:
            raise ValueError("end time must not precede start time")
        first_index = math.ceil((start_s - self._phase_offset_s) / self._period_s)
        times: list[float] = []
        index = first_index
        while True:
            t = self._phase_offset_s + index * self._period_s
            if t > end_s + 1e-12:
                break
            if t > start_s + 1e-12:
                times.append(t)
            index += 1
        return times

    def samples(
        self,
        segments: Sequence[PowerSegment],
        logger_start_s: float,
        logger_stop_s: float,
    ) -> list[TelemetrySample]:
        """Compute the samples the logger would have reported for a recording."""
        samples: list[TelemetrySample] = []
        for sample_time in self.sample_times_between(logger_start_s, logger_stop_s):
            window_start = sample_time - self._period_s
            power = _average_power_over(segments, window_start, sample_time, self._idle_power)
            samples.append(
                TelemetrySample(
                    gpu_timestamp_ticks=self._counter.ticks_at(sample_time),
                    window_end_s=sample_time,
                    window_s=self._period_s,
                    power=power,
                )
            )
        return samples


class CoarsePowerSampler(AveragingPowerLogger):
    """An external, amd-smi-like sampler with a period of tens of milliseconds.

    Functionally identical to the averaging logger but with a much longer
    period; used as the challenge-C1 baseline showing that coarse sampling can
    miss sub-millisecond kernels entirely.
    """

    DEFAULT_PERIOD_S = 20e-3

    def __init__(
        self,
        counter: GPUTimestampCounter,
        idle_power: ComponentPower,
        period_s: float = DEFAULT_PERIOD_S,
        phase_offset_s: float = 0.0,
    ) -> None:
        super().__init__(counter, period_s, idle_power, phase_offset_s)


class InstantaneousPowerSampler:
    """An idealised point sampler (no averaging), used for ablations."""

    def __init__(
        self,
        counter: GPUTimestampCounter,
        period_s: float,
        idle_power: ComponentPower,
        phase_offset_s: float = 0.0,
    ) -> None:
        if period_s <= 0:
            raise ValueError("sampler period must be positive")
        self._counter = counter
        self._period_s = period_s
        self._idle_power = idle_power
        self._phase_offset_s = phase_offset_s % period_s

    @property
    def period_s(self) -> float:
        return self._period_s

    def samples(
        self,
        segments: Sequence[PowerSegment],
        start_s: float,
        stop_s: float,
    ) -> list[TelemetrySample]:
        samples: list[TelemetrySample] = []
        first_index = math.ceil((start_s - self._phase_offset_s) / self._period_s)
        index = first_index
        while True:
            t = self._phase_offset_s + index * self._period_s
            if t > stop_s + 1e-12:
                break
            power = _instantaneous_power_at(segments, t, self._idle_power)
            samples.append(
                TelemetrySample(
                    gpu_timestamp_ticks=self._counter.ticks_at(t),
                    window_end_s=t,
                    window_s=0.0,
                    power=power,
                )
            )
            index += 1
        return samples


__all__ = [
    "TelemetrySample",
    "AveragingPowerLogger",
    "CoarsePowerSampler",
    "InstantaneousPowerSampler",
]
