"""Simulated MI300X-class GPU substrate.

This subpackage stands in for the hardware and vendor tooling the paper uses:
the MI300X chiplet GPU (XCDs / IODs / HBM), its DVFS and power-cap firmware,
the on-GPU 1 ms averaging power logger, the CPU-side launch path, and the
8-GPU Infinity Platform.  See DESIGN.md for the substitution rationale.
"""

from .activity import (
    KernelActivityDescriptor,
    PhaseSpec,
    VariationSpec,
    XCDOccupancyMode,
)
from .backend import BackendConfig, SimulatedDeviceBackend
from .clocks import CPUClock, GPUTimestampCounter, SimulationClock, TimestampReadResult
from .device import KernelExecutionResult, PowerSegment, SimulatedGPU
from .dvfs import FirmwareConfig, FirmwareState, PowerManagementFirmware
from .platform import InfinityPlatform, TransferEstimate
from .power_model import ComponentPower, OperatingPoint, PowerModel
from .scheduler import KernelLauncher, LaunchConfig, ObservedExecution
from .spec import (
    GPUSpec,
    PlatformSpec,
    PowerBudget,
    mi300x_platform_spec,
    mi300x_spec,
)
from .telemetry import (
    AveragingPowerLogger,
    CoarsePowerSampler,
    InstantaneousPowerSampler,
    TelemetrySample,
)
from .thermal import ThermalModel, ThermalSpec
from .variation import ExecutionTimeVariationModel, RunVariation

__all__ = [
    "KernelActivityDescriptor",
    "PhaseSpec",
    "VariationSpec",
    "XCDOccupancyMode",
    "BackendConfig",
    "SimulatedDeviceBackend",
    "CPUClock",
    "GPUTimestampCounter",
    "SimulationClock",
    "TimestampReadResult",
    "KernelExecutionResult",
    "PowerSegment",
    "SimulatedGPU",
    "FirmwareConfig",
    "FirmwareState",
    "PowerManagementFirmware",
    "InfinityPlatform",
    "TransferEstimate",
    "ComponentPower",
    "OperatingPoint",
    "PowerModel",
    "KernelLauncher",
    "LaunchConfig",
    "ObservedExecution",
    "GPUSpec",
    "PlatformSpec",
    "PowerBudget",
    "mi300x_platform_spec",
    "mi300x_spec",
    "AveragingPowerLogger",
    "CoarsePowerSampler",
    "InstantaneousPowerSampler",
    "TelemetrySample",
    "ThermalModel",
    "ThermalSpec",
    "ExecutionTimeVariationModel",
    "RunVariation",
]
