"""Per-component power model of the simulated GPU.

The model maps *what the kernel is doing* (a :class:`KernelActivityDescriptor`
plus the active phase) and *how the device is operating* (core clock, thermal
warmth, cold/warm caches) to instantaneous power for each component class:

* **XCD** (accelerator complex dies) -- dominated by issue activity.  A large
  fraction of XCD dynamic power is burned merely by keeping the compute units
  occupied (clock trees, sequencers, LDS), which is what makes compute-light
  and compute-heavy GEMMs draw similar XCD power (paper takeaway #4).
* **IOD** (I/O dies) -- driven by Infinity-Cache bandwidth and Infinity-Fabric
  traffic; memory-bound GEMVs and bandwidth-bound collectives stress it.
* **HBM** -- driven by HBM bandwidth; does not scale with the core clock.

Dynamic power of the clocked components scales as ``(f / f_nominal) ** k``
with ``k`` folding the voltage curve (f * V**2), so boosting raises power
super-linearly -- this is what produces the power excursions of the largest
GEMMs that invoke the throttling firmware (paper Section V-C1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .activity import KernelActivityDescriptor, PhaseSpec, XCDOccupancyMode
from .spec import GPUSpec


#: Fraction of the XCD frequency/voltage scaling applied to IOD dynamic power
#: (the IODs run partly in their own clock domain).
IOD_FREQUENCY_COUPLING = 0.5

#: Small extra XCD issue activity attributed to address generation and control
#: flow even for kernels that are stalled on memory most of the time.
MEMORY_KERNEL_COMPUTE_OVERHEAD = 0.03


@dataclass(frozen=True)
class ComponentPower:
    """Instantaneous power of each component class, in watts."""

    xcd_w: float
    iod_w: float
    hbm_w: float

    @property
    def total_w(self) -> float:
        return self.xcd_w + self.iod_w + self.hbm_w

    def scaled(self, factor: float) -> "ComponentPower":
        return ComponentPower(self.xcd_w * factor, self.iod_w * factor, self.hbm_w * factor)

    def __add__(self, other: "ComponentPower") -> "ComponentPower":
        return ComponentPower(
            self.xcd_w + other.xcd_w,
            self.iod_w + other.iod_w,
            self.hbm_w + other.hbm_w,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "total": self.total_w,
            "xcd": self.xcd_w,
            "iod": self.iod_w,
            "hbm": self.hbm_w,
        }


@dataclass(frozen=True)
class OperatingPoint:
    """Device operating state relevant to power."""

    frequency_ghz: float
    #: Thermal/electrical settling state in [0, 1]; dynamic power rises a few
    #: percent as the die warms up under sustained load.
    warmth: float = 1.0
    #: Whether the kernel's working set is still cold (first executions).
    cold_caches: bool = False


class PowerModel:
    """Maps kernel activity and operating point to per-component power."""

    #: Relative increase in dynamic power between a cold die and a fully
    #: warmed-up die (leakage + voltage settling).
    WARMTH_DYNAMIC_SWING = 0.06

    def __init__(self, spec: GPUSpec) -> None:
        self._spec = spec
        self._budget = spec.power
        self._dvfs = spec.dvfs

    @property
    def spec(self) -> GPUSpec:
        return self._spec

    # ------------------------------------------------------------------ #
    # Scaling helpers.
    # ------------------------------------------------------------------ #
    def frequency_power_scale(self, frequency_ghz: float) -> float:
        """Dynamic power multiplier at a given core clock vs nominal."""
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        ratio = frequency_ghz / self._dvfs.nominal_frequency_ghz
        return ratio ** self._dvfs.power_exponent

    def warmth_scale(self, warmth: float) -> float:
        """Dynamic power multiplier for a given warmth state in [0, 1]."""
        warmth = min(max(warmth, 0.0), 1.0)
        return 1.0 - self.WARMTH_DYNAMIC_SWING * (1.0 - warmth)

    def xcd_activity(self, descriptor: KernelActivityDescriptor) -> float:
        """Fraction of peak XCD dynamic power drawn by the kernel at nominal clock."""
        budget = self._budget
        mode = descriptor.xcd_mode
        if mode is XCDOccupancyMode.MATRIX or mode is XCDOccupancyMode.VECTOR:
            floor = budget.xcd_activity_floor
            activity = floor + (1.0 - floor) * descriptor.compute_utilization
        elif mode is XCDOccupancyMode.STALLED:
            floor = budget.xcd_stalled_floor
            activity = floor + descriptor.compute_utilization + MEMORY_KERNEL_COMPUTE_OVERHEAD
        else:  # DMA
            activity = 0.08 + 0.5 * descriptor.compute_utilization + 0.12 * descriptor.fabric_utilization
        return min(max(activity, 0.0), 1.0)

    def iod_utilization(self, descriptor: KernelActivityDescriptor) -> float:
        """Fraction of peak IOD dynamic power drawn by the kernel at nominal clock."""
        util = descriptor.llc_utilization + 0.85 * descriptor.fabric_utilization
        return min(max(util, 0.0), 1.0)

    def hbm_utilization(self, descriptor: KernelActivityDescriptor, cold_caches: bool) -> float:
        if cold_caches:
            return min(max(descriptor.effective_hbm_utilization_cold, 0.0), 1.0)
        return min(max(descriptor.hbm_utilization, 0.0), 1.0)

    # ------------------------------------------------------------------ #
    # Power synthesis.
    # ------------------------------------------------------------------ #
    def idle_power(self) -> ComponentPower:
        """Power of an idle device (no kernels resident)."""
        budget = self._budget
        return ComponentPower(
            xcd_w=budget.xcd_idle_w,
            iod_w=budget.iod_idle_w,
            hbm_w=budget.hbm_idle_w,
        )

    def kernel_power(
        self,
        descriptor: KernelActivityDescriptor,
        operating_point: OperatingPoint,
        phase: PhaseSpec | None = None,
    ) -> ComponentPower:
        """Instantaneous power while ``descriptor`` executes at ``operating_point``.

        ``SimulatedGPU._advance_execution_fast`` inlines this exact float
        arithmetic (with the descriptor-level utilisations hoisted out of the
        slice loop); keep the two in lockstep -- the device equivalence suite
        pins them against each other.
        """
        budget = self._budget
        phase = phase or PhaseSpec(duration_fraction=1.0)
        freq_scale = self.frequency_power_scale(operating_point.frequency_ghz)
        warm_scale = self.warmth_scale(operating_point.warmth)
        iod_freq_scale = 1.0 + IOD_FREQUENCY_COUPLING * (freq_scale - 1.0)

        xcd_activity = min(self.xcd_activity(descriptor) * phase.xcd_scale, 1.0)
        iod_util = min(self.iod_utilization(descriptor) * phase.iod_scale, 1.0)
        hbm_util = min(
            self.hbm_utilization(descriptor, operating_point.cold_caches) * phase.hbm_scale, 1.0
        )

        xcd_w = budget.xcd_idle_w + budget.xcd_dynamic_w * xcd_activity * freq_scale * warm_scale
        iod_w = budget.iod_idle_w + budget.iod_dynamic_w * iod_util * iod_freq_scale * warm_scale
        hbm_w = budget.hbm_idle_w + budget.hbm_dynamic_w * hbm_util
        return ComponentPower(xcd_w=xcd_w, iod_w=iod_w, hbm_w=hbm_w)

    def estimate_peak_power(
        self, descriptor: KernelActivityDescriptor, frequency_ghz: float | None = None
    ) -> ComponentPower:
        """Power estimate at a given clock (default: boost), warm die, warm caches.

        Used by the firmware to reason about whether a kernel is power-limited
        and by the analysis layer for roofline-style summaries.
        """
        frequency = frequency_ghz or self._dvfs.boost_frequency_ghz
        point = OperatingPoint(frequency_ghz=frequency, warmth=1.0, cold_caches=False)
        return self.kernel_power(descriptor, point)

    def power_limited_frequency(self, descriptor: KernelActivityDescriptor) -> float:
        """Highest clock at which the kernel stays within the board power limit.

        Solves ``total_power(f) == board_limit`` analytically for the clocked
        share of the power and clamps the result to the DVFS range.  Used for
        analysis and for the firmware's steady-state target.
        """
        budget = self._budget
        dvfs = self._dvfs
        nominal_point = OperatingPoint(frequency_ghz=dvfs.nominal_frequency_ghz)
        nominal = self.kernel_power(descriptor, nominal_point)
        unclocked = budget.hbm_idle_w + budget.hbm_dynamic_w * self.hbm_utilization(descriptor, False)
        unclocked += budget.xcd_idle_w + budget.iod_idle_w
        clocked_at_nominal = nominal.total_w - unclocked
        headroom = budget.board_limit_w - unclocked
        if clocked_at_nominal <= 0:
            return dvfs.boost_frequency_ghz
        if headroom <= 0:
            return dvfs.sustained_frequency_ghz
        # clocked power ~ (f/f_nom)^k for the XCD part; the IOD coupling is
        # weaker, so this slightly underestimates the allowed clock -- a safe
        # direction for a power cap.
        ratio = (headroom / clocked_at_nominal) ** (1.0 / dvfs.power_exponent)
        frequency = dvfs.nominal_frequency_ghz * ratio
        return float(min(max(frequency, dvfs.sustained_frequency_ghz), dvfs.boost_frequency_ghz))

    def is_power_limited(self, descriptor: KernelActivityDescriptor) -> bool:
        """True when running the kernel at boost would exceed the board limit."""
        return self.estimate_peak_power(descriptor).total_w > self._budget.board_limit_w


__all__ = ["ComponentPower", "OperatingPoint", "PowerModel", "IOD_FREQUENCY_COUPLING"]
