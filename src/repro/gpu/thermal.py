"""Thermal / electrical settling model.

Power on a real GPU depends on voltage, frequency *and temperature* (paper
Section IV-A, solution S4).  As a die heats up under sustained load its
leakage rises and the voltage regulators settle, so dynamic power measured a
few milliseconds into a burst of executions is slightly higher than during the
very first executions.  FinGraV's SSP profile captures that settled state.

We model a single scalar *warmth* in [0, 1] with first-order dynamics:

* while a kernel is resident, warmth relaxes toward 1 with time constant
  ``heat_tau_s``;
* while idle, it relaxes toward 0 with the slower ``cool_tau_s``.

The power model (:class:`repro.gpu.power_model.PowerModel`) converts warmth to
a small multiplicative swing on dynamic power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ThermalSpec:
    """Time constants of the warmth dynamics."""

    heat_tau_s: float = 2.2e-3
    cool_tau_s: float = 9.0e-3
    initial_warmth: float = 0.0

    def validate(self) -> None:
        if self.heat_tau_s <= 0 or self.cool_tau_s <= 0:
            raise ValueError("thermal time constants must be positive")
        if not 0.0 <= self.initial_warmth <= 1.0:
            raise ValueError("initial warmth must lie in [0, 1]")


class ThermalModel:
    """First-order warmth dynamics stepped by the device."""

    __slots__ = ("_spec", "_warmth")

    def __init__(self, spec: ThermalSpec | None = None) -> None:
        self._spec = spec or ThermalSpec()
        self._spec.validate()
        self._warmth = self._spec.initial_warmth

    @property
    def spec(self) -> ThermalSpec:
        return self._spec

    @property
    def warmth(self) -> float:
        """Current warmth in [0, 1]."""
        return self._warmth

    def reset(self, warmth: float = 0.0) -> None:
        """Force the warmth state (e.g. when parking the device)."""
        if not 0.0 <= warmth <= 1.0:
            raise ValueError("warmth must lie in [0, 1]")
        self._warmth = warmth

    def step(self, dt_s: float, active: bool) -> float:
        """Advance by ``dt_s`` seconds and return the new warmth.

        ``active`` selects the heating (kernel resident) or cooling (idle)
        relaxation target and time constant.
        """
        if dt_s < 0:
            raise ValueError("time step cannot be negative")
        if dt_s == 0:
            return self._warmth
        target = 1.0 if active else 0.0
        tau = self._spec.heat_tau_s if active else self._spec.cool_tau_s
        alpha = 1.0 - math.exp(-dt_s / tau)
        self._warmth += (target - self._warmth) * alpha
        # Numerical guard.
        self._warmth = min(max(self._warmth, 0.0), 1.0)
        return self._warmth

    def relax_span(self, dt_s: float, active: bool) -> float:
        """Advance an entire multi-slice span with one closed-form relaxation.

        The first-order dynamics compose analytically: stepping ``dt1`` then
        ``dt2`` equals a single step of ``dt1 + dt2`` up to floating-point
        rounding, because ``exp(-dt1/tau) * exp(-dt2/tau) == exp(-(dt1+dt2)/tau)``.
        The vectorized device therefore applies one relaxation per idle span
        instead of one per slice -- its batched idle-span boundary engine
        emits hundreds of control-period slices without ever stepping warmth
        per slice, then calls this once for the whole span; the result agrees
        with the per-slice reference path to ~1 ulp (the device equivalence
        suite pins the tolerance).

        A zero-duration span is a no-op that leaves the warmth state
        untouched (mirroring :meth:`step`); negative durations raise.  The
        compiled idle kernel carries an identical twin of this arithmetic --
        keep them in lockstep.
        """
        if dt_s < 0:
            raise ValueError("relaxation span cannot be negative")
        if dt_s == 0:
            return self._warmth
        target = 1.0 if active else 0.0
        tau = self._spec.heat_tau_s if active else self._spec.cool_tau_s
        alpha = 1.0 - math.exp(-dt_s / tau)
        self._warmth += (target - self._warmth) * alpha
        self._warmth = min(max(self._warmth, 0.0), 1.0)
        return self._warmth

    def time_to_warmth(self, target: float, active: bool = True) -> float:
        """Seconds of continuous activity (or idleness) needed to reach ``target``.

        Useful in tests and for sizing warm-up counts; returns ``inf`` if the
        target is unreachable from the current state in the given direction.
        """
        if not 0.0 <= target <= 1.0:
            raise ValueError("target warmth must lie in [0, 1]")
        goal = 1.0 if active else 0.0
        tau = self._spec.heat_tau_s if active else self._spec.cool_tau_s
        current_gap = goal - self._warmth
        target_gap = goal - target
        if current_gap == 0:
            return 0.0 if target == goal else math.inf
        ratio = target_gap / current_gap
        if ratio <= 0:
            return math.inf
        if ratio >= 1:
            return 0.0
        return -tau * math.log(ratio)


__all__ = ["ThermalSpec", "ThermalModel"]
