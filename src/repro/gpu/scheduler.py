"""CPU-side kernel launch path.

Kernel scheduling is controlled by the CPU (paper challenge C4/C2): the host
enqueues a kernel, the launch takes a few microseconds to reach the GPU, and
the host observes kernel start/end through events whose timestamps carry a
small measurement error.  :class:`KernelLauncher` models this thin layer on
top of :class:`~repro.gpu.device.SimulatedGPU` and is what the profiling
backend (and therefore the FinGraV methodology) actually drives.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import exp

import numpy as np

from ..core.records import ExecutionArena, ExecutionTiming
from .activity import KernelActivityDescriptor
from .device import KernelExecutionResult, SimulatedGPU
from .variation import ExecutionTimeVariationModel, RunVariation


@dataclass(frozen=True)
class LaunchConfig:
    """Host-side launch overheads and instrumentation error."""

    #: Mean latency between the host enqueueing a kernel and the GPU starting it.
    launch_latency_s: float = 2.5e-6
    #: Jitter (std-dev) of the launch latency.
    launch_jitter_s: float = 0.5e-6
    #: Std-dev of the error on host-observed kernel start/end timestamps.
    event_timestamp_error_s: float = 0.6e-6
    #: Host-side gap between back-to-back executions in the same run.
    inter_execution_gap_s: float = 1.0e-6

    def validate(self) -> None:
        for name in ("launch_latency_s", "launch_jitter_s", "event_timestamp_error_s",
                     "inter_execution_gap_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ObservedExecution:
    """What the host can see about one kernel execution.

    ``cpu_start_s`` / ``cpu_end_s`` carry instrumentation error, but the
    observed duration is never negative (the launcher clamps inverted
    timestamps the way real event APIs do); the ``ground_truth`` result is
    kept for validation in tests and is not used by the methodology.
    """

    kernel_name: str
    execution_index: int
    cpu_submit_s: float
    cpu_start_s: float
    cpu_end_s: float
    ground_truth: KernelExecutionResult

    @property
    def cpu_duration_s(self) -> float:
        return self.cpu_end_s - self.cpu_start_s


class KernelLauncher:
    """Launches kernels on a device the way a host runtime would."""

    def __init__(self, device: SimulatedGPU, config: LaunchConfig | None = None) -> None:
        self._device = device
        self._config = config or LaunchConfig()
        self._config.validate()
        self._rng = device.rng
        config = self._config
        self._fast_consts = (
            config.launch_latency_s,
            config.launch_jitter_s,
            config.event_timestamp_error_s,
            config.inter_execution_gap_s,
        )

    @property
    def device(self) -> SimulatedGPU:
        return self._device

    @property
    def config(self) -> LaunchConfig:
        return self._config

    def _timestamp_error(self) -> float:
        if self._config.event_timestamp_error_s <= 0:
            return 0.0
        return float(self._rng.normal(0.0, self._config.event_timestamp_error_s))

    def launch(
        self,
        descriptor: KernelActivityDescriptor,
        execution_index: int = 0,
        run_variation: RunVariation | None = None,
    ) -> ObservedExecution:
        """Submit one kernel execution and wait for it to complete.

        When the device runs its vectorized engine the launcher takes a
        streamlined path that draws the same RNG stream and produces identical
        observations, but skips the frozen-dataclass constructor overhead; a
        device with ``vectorized=False`` keeps the original (pre-vectorization)
        launch path end to end.
        """
        device = self._device
        if device.vectorized:
            return self._launch_fast(descriptor, execution_index, run_variation)
        submit_s = device.now_s()
        launch_latency = device.variation_model.draw_launch_delay(
            self._config.launch_latency_s, self._config.launch_jitter_s
        )
        device.idle(launch_latency)
        result = device.execute_kernel(descriptor, run_variation=run_variation)
        cpu_start_s = result.start_s + self._timestamp_error()
        cpu_end_s = result.end_s + self._timestamp_error()
        if cpu_end_s < cpu_start_s:
            # Independent timestamp errors on start and end can invert the
            # observed ordering of sub-microsecond kernels; real event APIs
            # never report end before start, so clamp the observed duration
            # at zero.
            cpu_end_s = cpu_start_s
        return ObservedExecution(
            kernel_name=descriptor.name,
            execution_index=execution_index,
            cpu_submit_s=submit_s,
            cpu_start_s=cpu_start_s,
            cpu_end_s=cpu_end_s,
            ground_truth=result,
        )

    def _launch_fast(
        self,
        descriptor: KernelActivityDescriptor,
        execution_index: int,
        run_variation: RunVariation | None,
    ) -> ObservedExecution:
        """Hot-path launch: same draws and values as :meth:`launch`, built lean.

        The launch-delay draw inlines
        :meth:`ExecutionTimeVariationModel.draw_launch_delay` and the
        timestamp errors inline :meth:`_timestamp_error` (identical RNG
        calls); the idle and execute steps go straight to the device's
        vectorized engine.
        """
        device = self._device
        config = self._config
        rng = self._rng
        submit_s = device._sim_clock.now_s
        launch_latency = float(rng.normal(config.launch_latency_s, config.launch_jitter_s))
        if launch_latency < 0.2e-6:
            launch_latency = 0.2e-6
        device._idle_hot(launch_latency)
        result = device._execute_hot(descriptor, run_variation)
        error_std = config.event_timestamp_error_s
        if error_std > 0:
            # One batched draw is bit-identical to two sequential draws.
            errors = rng.normal(0.0, error_std, size=2)
            cpu_start_s = result.start_s + float(errors[0])
            cpu_end_s = result.end_s + float(errors[1])
            if cpu_end_s < cpu_start_s:
                cpu_end_s = cpu_start_s
        else:
            cpu_start_s = result.start_s
            cpu_end_s = result.end_s
        observed = ObservedExecution.__new__(ObservedExecution)
        fields = observed.__dict__
        fields["kernel_name"] = descriptor.name
        fields["execution_index"] = execution_index
        fields["cpu_submit_s"] = submit_s
        fields["cpu_start_s"] = cpu_start_s
        fields["cpu_end_s"] = cpu_end_s
        fields["ground_truth"] = result
        return observed

    def launch_sequence(
        self,
        descriptor: KernelActivityDescriptor,
        executions: int,
        run_variation: RunVariation | None = None,
        start_index: int = 0,
    ) -> list[ObservedExecution]:
        """Launch ``executions`` back-to-back executions of the same kernel."""
        if executions <= 0:
            raise ValueError("need at least one execution")
        observed: list[ObservedExecution] = []
        append = observed.append
        if self._device.vectorized:
            gap_s = self._config.inter_execution_gap_s
            idle_fast = self._device._idle_hot
            launch_fast = self._launch_fast
            for i in range(executions):
                if i > 0 and gap_s > 0:
                    idle_fast(gap_s)
                append(launch_fast(descriptor, start_index + i, run_variation))
            return observed
        for i in range(executions):
            if i > 0 and self._config.inter_execution_gap_s > 0:
                self._device.idle(self._config.inter_execution_gap_s)
            append(
                self.launch(descriptor, execution_index=start_index + i, run_variation=run_variation)
            )
        return observed

    def sequence_into(
        self,
        arena: ExecutionArena,
        descriptor: KernelActivityDescriptor,
        executions: int,
        run_variation: RunVariation | None = None,
        start_index: int = 0,
    ) -> None:
        """Stage a back-to-back sequence's host-observed timings into ``arena``.

        The instrumented-run hot path (vectorized device): identical simulated
        behaviour and values as :meth:`launch_sequence` followed by an
        :class:`ExecutionTiming` conversion, with two shortcuts --

        * all RNG variates of the sequence (launch latency, execution jitter
          and the two event-timestamp errors per execution, consumed in
          exactly that order) come from one batched ``standard_normal`` draw,
          which is bit-identical to the per-execution scalar draws;
        * no timing objects are built at all: each execution appends its two
          floats to the arena's columnar buffers, and the run record adopts
          the arena snapshot as a lazy :class:`ExecutionTimings` view.
        """
        if executions <= 0:
            raise ValueError("need at least one execution")
        device = self._device
        latency_mean, latency_jitter, error_std, gap_s = self._fast_consts
        execution_cv = descriptor.variation.execution_cv
        append_start, append_end = arena.stage(descriptor.name, start_index, executions)
        if not device.vectorized or execution_cv <= 0 or error_std <= 0:
            # Configurations whose reference path consumes a different draw
            # pattern fall back to the launch loop (identical by definition).
            for observed in self.launch_sequence(
                descriptor, executions, run_variation=run_variation, start_index=start_index
            ):
                append_start(observed.cpu_start_s)
                append_end(observed.cpu_end_s)
            return
        if device.engine == "compiled":
            # One fused kernel call simulates the whole sequence; the batched
            # variate draw is the identical RNG stream the loop below (and
            # the scalar launch path) consumes.
            variates = self._rng.standard_normal(4 * executions)
            cpu_starts, cpu_ends = device._sequence_compiled(
                descriptor, executions, variates, run_variation,
                execution_cv, latency_mean, latency_jitter, error_std, gap_s,
            )
            arena.stage_filled(cpu_starts, cpu_ends)
            return
        idle_fast = device._idle_hot
        execute_fast = device._execute_hot
        min_factor = ExecutionTimeVariationModel.MIN_FACTOR
        variates = self._rng.standard_normal(4 * executions).tolist()
        cursor = 0
        for i in range(executions):
            if i > 0 and gap_s > 0:
                idle_fast(gap_s)
            launch_latency = latency_mean + latency_jitter * variates[cursor]
            if launch_latency < 0.2e-6:
                launch_latency = 0.2e-6
            jitter = exp(0.0 + execution_cv * variates[cursor + 1])
            if jitter < min_factor:
                jitter = min_factor
            idle_fast(launch_latency)
            start_s, end_s = execute_fast(
                descriptor, run_variation, jitter, build_result=False
            )
            cpu_start_s = start_s + error_std * variates[cursor + 2]
            cpu_end_s = end_s + error_std * variates[cursor + 3]
            if cpu_end_s < cpu_start_s:
                cpu_end_s = cpu_start_s
            append_start(cpu_start_s)
            append_end(cpu_end_s)
            cursor += 4

    def sequence_timings(
        self,
        descriptor: KernelActivityDescriptor,
        executions: int,
        run_variation: RunVariation | None = None,
        start_index: int = 0,
    ) -> list[ExecutionTiming]:
        """Host-observed timings of a back-to-back sequence, as objects.

        Compatibility wrapper over :meth:`sequence_into`: stages the sequence
        in a throwaway arena and materialises the timings (same simulated
        behaviour, RNG stream and values).
        """
        arena = ExecutionArena()
        self.sequence_into(
            arena, descriptor, executions,
            run_variation=run_variation, start_index=start_index,
        )
        return list(arena.take())

    @staticmethod
    def _timing_of(observed: ObservedExecution) -> ExecutionTiming:
        return ExecutionTiming(
            index=observed.execution_index,
            cpu_start_s=observed.cpu_start_s,
            cpu_end_s=observed.cpu_end_s,
            kernel_name=observed.kernel_name,
        )


__all__ = ["LaunchConfig", "ObservedExecution", "KernelLauncher"]
