"""CPU-side kernel launch path.

Kernel scheduling is controlled by the CPU (paper challenge C4/C2): the host
enqueues a kernel, the launch takes a few microseconds to reach the GPU, and
the host observes kernel start/end through events whose timestamps carry a
small measurement error.  :class:`KernelLauncher` models this thin layer on
top of :class:`~repro.gpu.device.SimulatedGPU` and is what the profiling
backend (and therefore the FinGraV methodology) actually drives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activity import KernelActivityDescriptor
from .device import KernelExecutionResult, SimulatedGPU
from .variation import RunVariation


@dataclass(frozen=True)
class LaunchConfig:
    """Host-side launch overheads and instrumentation error."""

    #: Mean latency between the host enqueueing a kernel and the GPU starting it.
    launch_latency_s: float = 2.5e-6
    #: Jitter (std-dev) of the launch latency.
    launch_jitter_s: float = 0.5e-6
    #: Std-dev of the error on host-observed kernel start/end timestamps.
    event_timestamp_error_s: float = 0.6e-6
    #: Host-side gap between back-to-back executions in the same run.
    inter_execution_gap_s: float = 1.0e-6

    def validate(self) -> None:
        for name in ("launch_latency_s", "launch_jitter_s", "event_timestamp_error_s",
                     "inter_execution_gap_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class ObservedExecution:
    """What the host can see about one kernel execution.

    ``cpu_start_s`` / ``cpu_end_s`` carry instrumentation error; the
    ``ground_truth`` result is kept for validation in tests and is not used by
    the methodology.
    """

    kernel_name: str
    execution_index: int
    cpu_submit_s: float
    cpu_start_s: float
    cpu_end_s: float
    ground_truth: KernelExecutionResult

    @property
    def cpu_duration_s(self) -> float:
        return self.cpu_end_s - self.cpu_start_s


class KernelLauncher:
    """Launches kernels on a device the way a host runtime would."""

    def __init__(self, device: SimulatedGPU, config: LaunchConfig | None = None) -> None:
        self._device = device
        self._config = config or LaunchConfig()
        self._config.validate()
        self._rng = device.rng

    @property
    def device(self) -> SimulatedGPU:
        return self._device

    @property
    def config(self) -> LaunchConfig:
        return self._config

    def _timestamp_error(self) -> float:
        if self._config.event_timestamp_error_s <= 0:
            return 0.0
        return float(self._rng.normal(0.0, self._config.event_timestamp_error_s))

    def launch(
        self,
        descriptor: KernelActivityDescriptor,
        execution_index: int = 0,
        run_variation: RunVariation | None = None,
    ) -> ObservedExecution:
        """Submit one kernel execution and wait for it to complete."""
        device = self._device
        submit_s = device.now_s()
        launch_latency = device.variation_model.draw_launch_delay(
            self._config.launch_latency_s, self._config.launch_jitter_s
        )
        device.idle(launch_latency)
        result = device.execute_kernel(descriptor, run_variation=run_variation)
        return ObservedExecution(
            kernel_name=descriptor.name,
            execution_index=execution_index,
            cpu_submit_s=submit_s,
            cpu_start_s=result.start_s + self._timestamp_error(),
            cpu_end_s=result.end_s + self._timestamp_error(),
            ground_truth=result,
        )

    def launch_sequence(
        self,
        descriptor: KernelActivityDescriptor,
        executions: int,
        run_variation: RunVariation | None = None,
        start_index: int = 0,
    ) -> list[ObservedExecution]:
        """Launch ``executions`` back-to-back executions of the same kernel."""
        if executions <= 0:
            raise ValueError("need at least one execution")
        observed: list[ObservedExecution] = []
        for i in range(executions):
            if i > 0 and self._config.inter_execution_gap_s > 0:
                self._device.idle(self._config.inter_execution_gap_s)
            observed.append(
                self.launch(descriptor, execution_index=start_index + i, run_variation=run_variation)
            )
        return observed


__all__ = ["LaunchConfig", "ObservedExecution", "KernelLauncher"]
