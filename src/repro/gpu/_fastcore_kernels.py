"""Kernel bodies of the compiled slice/boundary core, in njit-able Python.

This module is the *single transcription* of the device's measured hot loops
-- the idle per-period loop of :meth:`SimulatedGPU._idle_fast`, the execution
slice loop of :meth:`SimulatedGPU._execute_fast`, the firmware control
boundary of :meth:`SimulatedGPU._maybe_step_firmware` /
:meth:`PowerManagementFirmware.step`, and the closed-form thermal relaxation
of :meth:`ThermalModel.relax_span` -- into a form Numba can ``@njit`` and a C
compiler can mirror line for line (``_fastcore_cc``).  Every expression is a
verbatim copy of the corresponding Python engine statement (same operand
order, same comparisons, same clamps), so the compiled engines replay the
vectorized engine's iterated-float arithmetic bit for bit; the equivalence
suite pins that contract.  When editing the device hot paths, keep this file
and the C source in ``_fastcore_cc`` in lockstep.

When Numba is importable every function below is compiled with
``@njit(cache=True)`` at import time; otherwise the plain Python definitions
remain, which makes this module double as the ``python`` provider (slow --
used only to validate the kernel algorithm without Numba, never selected
automatically).

Data layout (shared with the C core)
------------------------------------
``st`` -- float64[12] mutable simulation state:
  [0] clock now_s            [1] thermal warmth
  [2] control energy_j       [3] control time_s       [4] control active_time_s
  [5] next_control_s         [6] firmware state code  [7] firmware frequency_ghz
  [8] overdraw_accum_s       [9] throttle_until_s     [10] idle_accum_s
  [11] last_power_w

``pp`` -- float64[31] immutable device parameters (see ``P_*`` below).

``desc`` -- float64[5 + 5 * n_phases] descriptor profile:
  [0] base_duration_s  [1] frequency_sensitivity  [2] cold_duration_multiplier
  [3] cold_executions  [4] n_phases, then per phase
  (cumulative_fraction, xcd_act, iod_util, hbm_warm, hbm_cold) -- the exact
  rows of ``SimulatedGPU._descriptor_profile``.

``seg`` -- float64[cap, 5] output power slices (start, end, xcd, iod, hbm).
``ev``  -- float64[cap, 4] output firmware events (time, state code, freq, power).
``lens`` -- int64[2] output row counts (segments, events).
``out8`` -- float64[8] one execution's ground truth row
  (start, end, cold, mean_freq, energy, xcd_w, iod_w, hbm_w) -- the exact
  ``_ExecutionLog`` row layout.

Kernels return 0 on success, 1 on segment-buffer overflow and 2 on
event-buffer overflow; on overflow the caller restores its state snapshot,
grows the buffer and retries (no RNG is consumed inside the kernels, so a
retry is deterministic).
"""

from __future__ import annotations

from math import exp

try:  # pragma: no cover - exercised only when Numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the in-repo CI container path
    HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        def decorate(func):
            return func

        return decorate


# --------------------------------------------------------------------- #
# State indices.
# --------------------------------------------------------------------- #
S_NOW = 0
S_WARMTH = 1
S_CEN = 2
S_CTM = 3
S_CAC = 4
S_NEXT = 5
S_FWST = 6
S_FREQ = 7
S_OVER = 8
S_THROT = 9
S_IDLEAC = 10
S_LASTP = 11
STATE_LEN = 12

# Parameter indices.
P_PERIOD = 0
P_IDLE_X = 1
P_IDLE_I = 2
P_IDLE_H = 3
P_IDLE_TOT = 4
P_NOM = 5
P_PEXP = 6
P_XIDLE = 7
P_XDYN = 8
P_IIDLE = 9
P_IDYN = 10
P_HIDLE = 11
P_HDYN = 12
P_SWING = 13
P_COUPLE = 14
P_HEAT_TAU = 15
P_COOL_TAU = 16
P_LIMIT = 17
P_EXC_THRESH = 18
P_EXC_WIN = 19
P_T_HOLD = 20
P_REC_STEP = 21
P_RAMP_STEP = 22
P_CAP_TGT = 23
P_CAP_HYST = 24
P_IDLE_PARK = 25
P_F_IDLE = 26
P_F_BOOST = 27
P_F_SUST = 28
P_RETENTION = 29
P_MINFACT = 30
PARAM_LEN = 31

# Firmware state codes -- indices into SimulatedGPU._FC_STATES.
FW_IDLE = 0
FW_RAMPING = 1
FW_BOOST = 2
FW_THROTTLED = 3
FW_RECOVERING = 4
FW_CAPPED = 5


# --------------------------------------------------------------------- #
# Firmware (PowerManagementFirmware, transcribed).
# --------------------------------------------------------------------- #
@_njit(cache=True)
def fw_transition(st, pp, ev, lens, now, state, freq, power):
    """``PowerManagementFirmware._transition``: clamp, record on change."""
    changed = state != int(st[S_FWST]) or freq != st[S_FREQ]
    st[S_FWST] = float(state)
    # min(max(freq, idle), boost), written as two clamps.
    clamped = freq
    if clamped < pp[P_F_IDLE]:
        clamped = pp[P_F_IDLE]
    if clamped > pp[P_F_BOOST]:
        clamped = pp[P_F_BOOST]
    st[S_FREQ] = clamped
    if changed:
        k = lens[1]
        if k >= ev.shape[0]:
            return 2
        ev[k, 0] = now
        ev[k, 1] = float(state)
        ev[k, 2] = clamped
        ev[k, 3] = power
        lens[1] = k + 1
    return 0


@_njit(cache=True)
def fw_step(st, pp, ev, lens, now, dt, power, resident):
    """``PowerManagementFirmware.step``: one control update."""
    if dt == 0.0:
        return 0
    st[S_LASTP] = power
    if resident == 0:
        st[S_IDLEAC] += dt
        st[S_OVER] = 0.0
        if st[S_IDLEAC] >= pp[P_IDLE_PARK] and int(st[S_FWST]) != FW_IDLE:
            return fw_transition(st, pp, ev, lens, now, FW_IDLE, pp[P_F_IDLE], power)
        return 0
    st[S_IDLEAC] = 0.0
    limit = pp[P_LIMIT]
    if power > limit * pp[P_EXC_THRESH]:
        st[S_OVER] += dt
    else:
        st[S_OVER] = 0.0
    s = int(st[S_FWST])
    if s == FW_IDLE or s == FW_RAMPING:
        # _ramp: min(freq + ramp_step, boost).
        target = pp[P_F_BOOST]
        new_frequency = st[S_FREQ] + pp[P_RAMP_STEP]
        if new_frequency > target:
            new_frequency = target
        next_state = FW_BOOST if new_frequency >= target else FW_RAMPING
        return fw_transition(st, pp, ev, lens, now, next_state, new_frequency, power)
    if s == FW_BOOST:
        if st[S_OVER] >= pp[P_EXC_WIN]:
            # _throttle.
            st[S_THROT] = now + pp[P_T_HOLD]
            st[S_OVER] = 0.0
            return fw_transition(st, pp, ev, lens, now, FW_THROTTLED, pp[P_F_SUST], power)
        return 0
    if s == FW_THROTTLED:
        if now >= st[S_THROT]:
            return fw_transition(st, pp, ev, lens, now, FW_RECOVERING, st[S_FREQ], power)
        return 0
    if s == FW_RECOVERING:
        # _recover: cap check, then min(freq + recovery_step, boost).
        if power >= limit * pp[P_CAP_TGT]:
            return fw_transition(st, pp, ev, lens, now, FW_CAPPED, st[S_FREQ], power)
        boost = pp[P_F_BOOST]
        new_frequency = st[S_FREQ] + pp[P_REC_STEP]
        if new_frequency > boost:
            new_frequency = boost
        if new_frequency >= boost:
            return fw_transition(st, pp, ev, lens, now, FW_BOOST, new_frequency, power)
        return fw_transition(st, pp, ev, lens, now, FW_RECOVERING, new_frequency, power)
    if s == FW_CAPPED:
        # _hold_cap: max(freq - recovery_step, sustained) on overdraw.
        if power > limit:
            new_frequency = st[S_FREQ] - pp[P_REC_STEP]
            if new_frequency < pp[P_F_SUST]:
                new_frequency = pp[P_F_SUST]
            return fw_transition(st, pp, ev, lens, now, FW_CAPPED, new_frequency, power)
        if power < limit * (pp[P_CAP_TGT] - pp[P_CAP_HYST]):
            return fw_transition(st, pp, ev, lens, now, FW_RECOVERING, st[S_FREQ], power)
        return 0
    return 0


@_njit(cache=True)
def fw_arrival(st, pp, ev, lens, now):
    """``_execute_fast``'s arrival hook (notify_kernel_arrival, inlined)."""
    st[S_IDLEAC] = 0.0
    s = int(st[S_FWST])
    if s == FW_IDLE or s == FW_RAMPING:
        return fw_transition(st, pp, ev, lens, now, FW_BOOST, pp[P_F_BOOST], st[S_LASTP])
    return 0


@_njit(cache=True)
def control_boundary(st, pp, ev, lens):
    """``SimulatedGPU._maybe_step_firmware`` past its early-out guard."""
    now = st[S_NOW]
    c_time = st[S_CTM]
    if c_time > 0:
        mean_power = st[S_CEN] / c_time
    else:
        mean_power = pp[P_IDLE_TOT]
    resident = 1 if (c_time > 0 and st[S_CAC] >= 0.5 * c_time) else 0
    rc = fw_step(st, pp, ev, lens, now, c_time, mean_power, resident)
    if rc != 0:
        return rc
    st[S_CEN] = 0.0
    st[S_CTM] = 0.0
    st[S_CAC] = 0.0
    period = pp[P_PERIOD]
    next_control = st[S_NEXT]
    while next_control <= now + 1e-12:
        next_control += period
    st[S_NEXT] = next_control
    return 0


# --------------------------------------------------------------------- #
# Idle span (SimulatedGPU._idle_fast's per-period loop, transcribed).
# --------------------------------------------------------------------- #
@_njit(cache=True)
def idle_core(st, pp, duration, record, seg, ev, lens):
    """One idle span: per-period loop + one closed-form cool relaxation.

    Identical slice boundaries, accumulator arithmetic and firmware updates
    as ``_idle_fast`` (which needs no batched-grid special case here -- the
    compiled per-period loop is cheap at any span length).
    """
    if duration <= 1e-12:
        return 0
    now = st[S_NOW]
    end = now + duration
    idle_x = pp[P_IDLE_X]
    idle_i = pp[P_IDLE_I]
    idle_h = pp[P_IDLE_H]
    total_w = pp[P_IDLE_TOT]
    cool_tau = pp[P_COOL_TAU]
    if end + 1e-12 < st[S_NEXT]:
        # Whole span before the next control step: one slice, no firmware.
        if record != 0:
            k = lens[0]
            if k >= seg.shape[0]:
                return 1
            seg[k, 0] = now
            seg[k, 1] = end
            seg[k, 2] = idle_x
            seg[k, 3] = idle_i
            seg[k, 4] = idle_h
            lens[0] = k + 1
        st[S_CEN] += total_w * duration
        st[S_CTM] += duration
        st[S_NOW] = end
        alpha = 1.0 - exp(-duration / cool_tau)
        warmth = st[S_WARMTH]
        warmth += (0.0 - warmth) * alpha
        st[S_WARMTH] = min(max(warmth, 0.0), 1.0)
        return 0
    remaining = duration
    while remaining > 1e-12:
        dt = st[S_NEXT] - now
        if dt < 1e-9:
            dt = 1e-9
        if remaining < dt:
            dt = remaining
        end = now + dt
        if record != 0 and end > now:
            k = lens[0]
            if k >= seg.shape[0]:
                return 1
            seg[k, 0] = now
            seg[k, 1] = end
            seg[k, 2] = idle_x
            seg[k, 3] = idle_i
            seg[k, 4] = idle_h
            lens[0] = k + 1
        st[S_CEN] += total_w * dt
        st[S_CTM] += dt
        st[S_NOW] = end
        remaining -= dt
        now = end
        if now + 1e-12 >= st[S_NEXT]:
            rc = control_boundary(st, pp, ev, lens)
            if rc != 0:
                return rc
    # ThermalModel.relax_span(duration, active=False): one closed-form
    # relaxation for the whole span (zero-duration spans returned above).
    alpha = 1.0 - exp(-duration / cool_tau)
    warmth = st[S_WARMTH]
    warmth += (0.0 - warmth) * alpha
    st[S_WARMTH] = min(max(warmth, 0.0), 1.0)
    return 0


# --------------------------------------------------------------------- #
# Kernel execution (SimulatedGPU._execute_fast's slice loop, transcribed).
# --------------------------------------------------------------------- #
@_njit(cache=True)
def execute_core(st, pp, desc, time_factor, cold, record, seg, ev, lens, out8):
    """One kernel execution from arrival hook to the ground-truth row.

    The caller owns the RNG draws (jitter / run factor arrive folded into
    ``time_factor``) and the cache-state bookkeeping (``cold`` arrives
    resolved); everything between -- firmware arrival, the slice loop, power,
    thermal and control accumulation -- replays ``_execute_fast`` exactly.
    """
    now = st[S_NOW]
    start_s = now
    rc = fw_arrival(st, pp, ev, lens, start_s)
    if rc != 0:
        return rc
    nominal = pp[P_NOM]
    power_exponent = pp[P_PEXP]
    xcd_idle_w = pp[P_XIDLE]
    xcd_dynamic_w = pp[P_XDYN]
    iod_idle_w = pp[P_IIDLE]
    iod_dynamic_w = pp[P_IDYN]
    hbm_idle_w = pp[P_HIDLE]
    hbm_dynamic_w = pp[P_HDYN]
    warmth_swing = pp[P_SWING]
    iod_coupling = pp[P_COUPLE]
    heat_tau = pp[P_HEAT_TAU]
    base_duration = desc[0]
    sensitivity = desc[1]
    n_phases = int(desc[4])

    frequency = st[S_FREQ]
    duration_full = base_duration * (nominal / frequency) ** sensitivity
    if cold != 0:
        duration_full *= desc[2]
    duration_full *= time_factor
    end = now + duration_full
    if end + 1e-12 < st[S_NEXT]:
        # Single-slice shortcut: frac_mid is exactly 0.5 (the mid row).
        row = 5 + 5 * (n_phases - 1)
        for p in range(n_phases):
            if 0.5 < desc[5 + 5 * p]:
                row = 5 + 5 * p
                break
        dt = duration_full
        freq_scale = (frequency / nominal) ** power_exponent
        warmth = st[S_WARMTH]
        clamped = min(max(warmth, 0.0), 1.0)
        warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
        iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
        x_w = xcd_idle_w + xcd_dynamic_w * desc[row + 1] * freq_scale * warm_scale
        i_w = iod_idle_w + iod_dynamic_w * desc[row + 2] * iod_freq_scale * warm_scale
        h_w = hbm_idle_w + hbm_dynamic_w * (desc[row + 4] if cold != 0 else desc[row + 3])
        if record != 0 and end > now:
            k = lens[0]
            if k >= seg.shape[0]:
                return 1
            seg[k, 0] = now
            seg[k, 1] = end
            seg[k, 2] = x_w
            seg[k, 3] = i_w
            seg[k, 4] = h_w
            lens[0] = k + 1
        total_w = x_w + i_w + h_w
        total_j = total_w * dt
        st[S_CEN] += total_j
        st[S_CTM] += dt
        st[S_CAC] += dt
        alpha = 1.0 - exp(-dt / heat_tau)
        warmth += (1.0 - warmth) * alpha
        st[S_WARMTH] = min(max(warmth, 0.0), 1.0)
        st[S_NOW] = end
        energy_j = total_j
        xcd_j = x_w * dt
        iod_j = i_w * dt
        hbm_j = h_w * dt
        freq_time_weighted = frequency * dt
        now = end
    else:
        work_remaining = 1.0
        energy_j = 0.0
        xcd_j = 0.0
        iod_j = 0.0
        hbm_j = 0.0
        freq_time_weighted = 0.0
        while work_remaining > 1e-9:
            frequency = st[S_FREQ]
            duration_full = base_duration * (nominal / frequency) ** sensitivity
            if cold != 0:
                duration_full *= desc[2]
            duration_full *= time_factor
            dt = st[S_NEXT] - now
            if dt < 1e-9:
                dt = 1e-9
            work_dt = work_remaining * duration_full
            if work_dt < dt:
                dt = work_dt
            frac_mid = (1.0 - work_remaining) + 0.5 * dt / duration_full
            # phase_at over the profile rows: falls through to the last.
            row = 5 + 5 * (n_phases - 1)
            for p in range(n_phases):
                if frac_mid < desc[5 + 5 * p]:
                    row = 5 + 5 * p
                    break
            freq_scale = (frequency / nominal) ** power_exponent
            warmth = st[S_WARMTH]
            clamped = min(max(warmth, 0.0), 1.0)
            warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
            iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
            x_w = xcd_idle_w + xcd_dynamic_w * desc[row + 1] * freq_scale * warm_scale
            i_w = iod_idle_w + iod_dynamic_w * desc[row + 2] * iod_freq_scale * warm_scale
            h_w = hbm_idle_w + hbm_dynamic_w * (desc[row + 4] if cold != 0 else desc[row + 3])
            end = now + dt
            if record != 0 and end > now:
                k = lens[0]
                if k >= seg.shape[0]:
                    return 1
                seg[k, 0] = now
                seg[k, 1] = end
                seg[k, 2] = x_w
                seg[k, 3] = i_w
                seg[k, 4] = h_w
                lens[0] = k + 1
            total_w = x_w + i_w + h_w
            total_j = total_w * dt
            st[S_CEN] += total_j
            st[S_CTM] += dt
            st[S_CAC] += dt
            alpha = 1.0 - exp(-dt / heat_tau)
            warmth += (1.0 - warmth) * alpha
            st[S_WARMTH] = min(max(warmth, 0.0), 1.0)
            st[S_NOW] = end
            energy_j += total_j
            xcd_j += x_w * dt
            iod_j += i_w * dt
            hbm_j += h_w * dt
            freq_time_weighted += frequency * dt
            work_remaining -= dt / duration_full
            now = end
            if now + 1e-12 >= st[S_NEXT]:
                rc = control_boundary(st, pp, ev, lens)
                if rc != 0:
                    return rc
    end_s = now
    duration = end_s - start_s
    out8[0] = start_s
    out8[1] = end_s
    out8[2] = 1.0 if cold != 0 else 0.0
    out8[3] = freq_time_weighted / duration
    out8[4] = energy_j
    out8[5] = xcd_j / duration
    out8[6] = iod_j / duration
    out8[7] = hbm_j / duration
    return 0


# --------------------------------------------------------------------- #
# Fused launch sequence (KernelLauncher.sequence_into's loop, transcribed).
# --------------------------------------------------------------------- #
@_njit(cache=True)
def sequence_core(
    st,
    pp,
    desc,
    cache,
    executions,
    variates,
    has_rv,
    run_factor,
    execution_cv,
    latency_mean,
    latency_jitter,
    error_std,
    gap_s,
    record,
    seg,
    ev,
    lens,
    exec_rows,
    cpu_starts,
    cpu_ends,
):
    """A whole back-to-back sequence in one call.

    Consumes the pre-drawn variates exactly as ``sequence_into`` does (four
    standard normals per execution: launch latency, execution jitter, start
    error, end error); ``cache`` is the kernel's (consecutive_executions,
    last_end_s) pair, mirrored back to the device's ``_CacheState`` by the
    caller.
    """
    min_factor = pp[P_MINFACT]
    retention = pp[P_RETENTION]
    cold_executions = desc[3]
    cursor = 0
    for i in range(executions):
        if i > 0 and gap_s > 0.0:
            rc = idle_core(st, pp, gap_s, record, seg, ev, lens)
            if rc != 0:
                return rc
        launch_latency = latency_mean + latency_jitter * variates[cursor]
        if launch_latency < 0.2e-6:
            launch_latency = 0.2e-6
        jitter = exp(0.0 + execution_cv * variates[cursor + 1])
        if jitter < min_factor:
            jitter = min_factor
        rc = idle_core(st, pp, launch_latency, record, seg, ev, lens)
        if rc != 0:
            return rc
        # _consume_cache_state, on the mirrored (consecutive, last_end) pair.
        if st[S_NOW] - cache[1] > retention:
            cache[0] = 0.0
        cold = 1 if cache[0] < cold_executions else 0
        if has_rv == 0:
            time_factor = jitter
        else:
            time_factor = run_factor * jitter
        rc = execute_core(
            st, pp, desc, time_factor, cold, record, seg, ev, lens, exec_rows[i]
        )
        if rc != 0:
            return rc
        cache[0] += 1.0
        cache[1] = exec_rows[i, 1]
        cpu_start = exec_rows[i, 0] + error_std * variates[cursor + 2]
        cpu_end = exec_rows[i, 1] + error_std * variates[cursor + 3]
        if cpu_end < cpu_start:
            cpu_end = cpu_start
        cpu_starts[i] = cpu_start
        cpu_ends[i] = cpu_end
        cursor += 4
    return 0


# --------------------------------------------------------------------- #
# Public entry points (reset the output counters, then run the cores).
# --------------------------------------------------------------------- #
def k_idle(st, pp, duration, record, seg, ev, lens):
    lens[0] = 0
    lens[1] = 0
    return idle_core(st, pp, duration, record, seg, ev, lens)


def k_execute(st, pp, desc, time_factor, cold, record, seg, ev, lens, out8):
    lens[0] = 0
    lens[1] = 0
    return execute_core(st, pp, desc, time_factor, cold, record, seg, ev, lens, out8)


def k_sequence(
    st,
    pp,
    desc,
    cache,
    executions,
    variates,
    has_rv,
    run_factor,
    execution_cv,
    latency_mean,
    latency_jitter,
    error_std,
    gap_s,
    record,
    seg,
    ev,
    lens,
    exec_rows,
    cpu_starts,
    cpu_ends,
):
    lens[0] = 0
    lens[1] = 0
    return sequence_core(
        st,
        pp,
        desc,
        cache,
        executions,
        variates,
        has_rv,
        run_factor,
        execution_cv,
        latency_mean,
        latency_jitter,
        error_std,
        gap_s,
        record,
        seg,
        ev,
        lens,
        exec_rows,
        cpu_starts,
        cpu_ends,
    )


__all__ = [
    "HAVE_NUMBA",
    "k_idle",
    "k_execute",
    "k_sequence",
    "STATE_LEN",
    "PARAM_LEN",
]
