"""The simulated GPU device.

:class:`SimulatedGPU` is the stand-in for the MI300X used by the paper.  It
executes kernels described by :class:`~repro.gpu.activity.KernelActivityDescriptor`
objects against simulated time, while:

* stepping the DVFS / power-cap firmware every control period,
* stepping the thermal (warmth) model,
* tracking per-kernel cache warmth (cold first executions),
* applying run-to-run and execution-to-execution time variation, and
* recording an instantaneous power timeline that the telemetry layer averages
  into the 1 ms power-logger samples the FinGraV methodology consumes.

The device deliberately exposes *two* views of time: the CPU clock (what the
host observes, used for kernel start/end instrumentation) and the GPU
timestamp counter (what tags power-logger samples).  Only the simulator knows
the exact relationship between them -- the methodology has to reconstruct it,
exactly as on real hardware (paper challenge C2).

Two execution paths
-------------------
Time advance comes in two interchangeable engines selected by the
``vectorized`` constructor flag:

* ``vectorized=True`` (default) -- the batched engine.  Slice boundaries
  between firmware control steps are computed with plain float arithmetic,
  per-slice power is appended to a columnar :class:`_SegmentBuffer` (no
  per-slice dataclasses), idle-span warmth is advanced with one closed-form
  relaxation per span (:meth:`~repro.gpu.thermal.ThermalModel.relax_span`),
  and :meth:`stop_recording` returns a :class:`SegmentArray` that the
  telemetry layer ingests without re-packing ``PowerSegment`` objects.
* ``vectorized=False`` -- the original per-slice reference path, retained as
  the executable specification.  It materialises one :class:`PowerSegment`
  per slice and steps the thermal model slice by slice.

Both paths step the firmware exactly once per control period (one Python
callback per period, never per slice), consume the same RNG stream, and
produce identical slice boundaries; recorded powers agree to ~1 ulp (the only
divergence is the closed-form idle-span warmth).  The equivalence suite in
``tests/test_device_equivalence.py`` pins segments, executions, firmware
events and final warmth across idle, short-kernel, throttling-GEMM and
interleaved scenarios.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from dataclasses import dataclass, field
from math import exp

import numpy as np

from .activity import KernelActivityDescriptor
from .clocks import CPUClock, GPUTimestampCounter, SimulationClock, TimestampReadResult
from .dvfs import FirmwareConfig, FirmwareEvent, FirmwareState, PowerManagementFirmware
from .power_model import IOD_FREQUENCY_COUPLING, ComponentPower, OperatingPoint, PowerModel
from .spec import GPUSpec, mi300x_spec
from .thermal import ThermalModel, ThermalSpec
from .variation import ExecutionTimeVariationModel, RunVariation


@dataclass(frozen=True)
class PowerSegment:
    """A span of simulated time with constant per-component power."""

    start_s: float
    end_s: float
    power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.power.total_w * self.duration_s


class SegmentArray(Sequence):
    """Columnar view of a recorded power timeline.

    Behaves like an immutable sequence of :class:`PowerSegment` (elements are
    materialised lazily on access) while exposing the underlying float arrays
    -- ``starts_s``, ``ends_s`` and ``powers`` (columns xcd/iod/hbm) -- so
    that :class:`repro.gpu.telemetry._SegmentTimeline` can ingest a recording
    without re-packing thousands of dataclasses.
    """

    __slots__ = ("starts_s", "ends_s", "powers")

    def __init__(self, starts_s, ends_s, powers) -> None:
        self.starts_s = np.asarray(starts_s, dtype=float)
        self.ends_s = np.asarray(ends_s, dtype=float)
        self.powers = np.asarray(powers, dtype=float).reshape(self.starts_s.shape[0], 3)
        if self.ends_s.shape != self.starts_s.shape:
            raise ValueError("starts and ends must have the same length")

    @classmethod
    def from_segments(cls, segments: Sequence[PowerSegment]) -> "SegmentArray":
        return cls(
            [s.start_s for s in segments],
            [s.end_s for s in segments],
            [[s.power.xcd_w, s.power.iod_w, s.power.hbm_w] for s in segments],
        )

    def __len__(self) -> int:
        return self.starts_s.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return SegmentArray(self.starts_s[index], self.ends_s[index], self.powers[index])
        row = self.powers[index]
        return PowerSegment(
            start_s=float(self.starts_s[index]),
            end_s=float(self.ends_s[index]),
            power=ComponentPower(xcd_w=float(row[0]), iod_w=float(row[1]), hbm_w=float(row[2])),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, SegmentArray):
            return (
                np.array_equal(self.starts_s, other.starts_s)
                and np.array_equal(self.ends_s, other.ends_s)
                and np.array_equal(self.powers, other.powers)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable arrays are not hashable
        raise TypeError("SegmentArray is not hashable")

    def __repr__(self) -> str:
        return f"SegmentArray(n={len(self)})"


class _SegmentBuffer:
    """Growable columnar store the vectorized engine appends slices to.

    Slices arrive as plain floats interleaved ``(start, end, xcd, iod, hbm)``
    in one flat list, so recording a slice is a single ``list.extend`` -- no
    :class:`PowerSegment` / dataclass churn on the hot path.  The flat list is
    packed into a :class:`SegmentArray` once, when the recording stops.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = array("d")

    def append(self, start: float, end: float, xcd: float, iod: float, hbm: float) -> None:
        self.data.extend((start, end, xcd, iod, hbm))

    def clear(self) -> None:
        # A fresh array keeps any SegmentArray built from the old buffer valid
        # (to_segment_array wraps the buffer zero-copy).
        self.data = array("d")

    def to_segment_array(self) -> SegmentArray:
        rows = np.frombuffer(self.data, dtype=float).reshape(-1, 5)
        return SegmentArray(rows[:, 0], rows[:, 1], rows[:, 2:5])


@dataclass(frozen=True)
class KernelExecutionResult:
    """Ground-truth outcome of one kernel execution on the device."""

    kernel_name: str
    start_s: float
    end_s: float
    cold_caches: bool
    mean_frequency_ghz: float
    energy_j: float
    mean_power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class _ExecutionLog:
    """Columnar ground-truth execution history (the vectorized engine's).

    The batched execution path appends one flat row of floats per execution
    -- ``(start, end, cold, mean_frequency, energy, xcd_w, iod_w, hbm_w)`` --
    plus the kernel name, instead of constructing a
    :class:`KernelExecutionResult` (and its :class:`ComponentPower`) per
    execution; :meth:`SimulatedGPU.executions` materialises the result
    objects only when the history is actually read (tests / validation).
    """

    __slots__ = ("data", "names")

    _ROW = 8

    def __init__(self) -> None:
        self.data = array("d")
        self.names: list[str] = []

    def clear(self) -> None:
        del self.data[:]
        self.names.clear()

    def materialize(self) -> list[KernelExecutionResult]:
        data = self.data
        results: list[KernelExecutionResult] = []
        for i, name in enumerate(self.names):
            row = i * self._ROW
            mean_power = ComponentPower.__new__(ComponentPower)
            fields = mean_power.__dict__
            fields["xcd_w"] = data[row + 5]
            fields["iod_w"] = data[row + 6]
            fields["hbm_w"] = data[row + 7]
            result = KernelExecutionResult.__new__(KernelExecutionResult)
            fields = result.__dict__
            fields["kernel_name"] = name
            fields["start_s"] = data[row]
            fields["end_s"] = data[row + 1]
            fields["cold_caches"] = bool(data[row + 2])
            fields["mean_frequency_ghz"] = data[row + 3]
            fields["energy_j"] = data[row + 4]
            fields["mean_power"] = mean_power
            results.append(result)
        return results


@dataclass(slots=True)
class _CacheState:
    """Per-kernel cache warm-up bookkeeping."""

    consecutive_executions: int = 0
    last_end_s: float = -1.0


@dataclass(slots=True)
class _ControlAccumulator:
    """Energy/time accumulated since the last firmware control step."""

    energy_j: float = 0.0
    time_s: float = 0.0
    active_time_s: float = 0.0

    def add(self, power_w: float, dt_s: float, active: bool) -> None:
        self.energy_j += power_w * dt_s
        self.time_s += dt_s
        if active:
            self.active_time_s += dt_s

    def mean_power_w(self, idle_power_w: float) -> float:
        if self.time_s <= 0:
            return idle_power_w
        return self.energy_j / self.time_s

    def mostly_active(self) -> bool:
        return self.time_s > 0 and self.active_time_s >= 0.5 * self.time_s

    def reset(self) -> None:
        self.energy_j = 0.0
        self.time_s = 0.0
        self.active_time_s = 0.0


class SimulatedGPU:
    """A single simulated MI300X-class GPU."""

    #: Idle time after which a kernel's working set is considered evicted
    #: from the on-chip caches (seconds).
    CACHE_RETENTION_S = 4e-3

    def __init__(
        self,
        spec: GPUSpec | None = None,
        seed: int = 0,
        thermal_spec: ThermalSpec | None = None,
        firmware_config: FirmwareConfig | None = None,
        vectorized: bool = True,
    ) -> None:
        self._spec = spec or mi300x_spec()
        self._spec.validate()
        self._rng = np.random.default_rng(seed)
        self._sim_clock = SimulationClock()
        self._cpu_clock = CPUClock(self._sim_clock)
        self._timestamp_counter = GPUTimestampCounter(self._spec.clocks, self._sim_clock, self._rng)
        self._power_model = PowerModel(self._spec)
        self._firmware = PowerManagementFirmware(
            self._spec.dvfs, self._spec.power, firmware_config
        )
        self._thermal = ThermalModel(thermal_spec)
        self._variation = ExecutionTimeVariationModel(self._rng)
        self._vectorized = bool(vectorized)

        # Idle power is constant for the lifetime of the device; cache it so
        # the hot paths (and the firmware fallback) skip re-synthesising it.
        idle_power = self._power_model.idle_power()
        self._idle_power = idle_power
        self._idle_power_xih = (idle_power.xcd_w, idle_power.iod_w, idle_power.hbm_w)
        self._idle_total_w = idle_power.total_w
        # Constants the batched engine reads every slice, hoisted once.
        budget = self._spec.power
        dvfs = self._spec.dvfs
        self._exec_consts = (
            dvfs.nominal_frequency_ghz,
            dvfs.power_exponent,
            budget.xcd_idle_w,
            budget.xcd_dynamic_w,
            budget.iod_idle_w,
            budget.iod_dynamic_w,
            budget.hbm_idle_w,
            budget.hbm_dynamic_w,
            PowerModel.WARMTH_DYNAMIC_SWING,
            IOD_FREQUENCY_COUPLING,
        )
        thermal_spec = self._thermal.spec
        self._heat_tau_s = thermal_spec.heat_tau_s
        self._cool_tau_s = thermal_spec.cool_tau_s

        self._recording = False
        self._segments: list[PowerSegment] = []
        self._buffer = _SegmentBuffer()
        # Bound extend of the buffer's flat storage, re-grabbed whenever the
        # storage is swapped -- the hot paths append through this.
        self._record_extend = self._buffer.data.extend
        self._cache_states: dict[str, _CacheState] = {}
        self._control = _ControlAccumulator()
        self._next_control_s = self._spec.dvfs.control_period_s
        self._executions: list[KernelExecutionResult] = []
        # Columnar ground-truth log the vectorized engine appends to (the
        # reference engine keeps appending result objects to _executions).
        self._exec_log = _ExecutionLog()
        self._exec_log_extend = self._exec_log.data.extend

        # Host-side timestamp reads must go through the device so the round
        # trip is visible to telemetry, thermal state and the firmware alike.
        self._timestamp_counter.attach_host_read_path(self.read_timestamp)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> GPUSpec:
        return self._spec

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def cpu_clock(self) -> CPUClock:
        return self._cpu_clock

    @property
    def timestamp_counter(self) -> GPUTimestampCounter:
        return self._timestamp_counter

    @property
    def firmware(self) -> PowerManagementFirmware:
        return self._firmware

    @property
    def thermal(self) -> ThermalModel:
        return self._thermal

    @property
    def variation_model(self) -> ExecutionTimeVariationModel:
        return self._variation

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def vectorized(self) -> bool:
        """Whether the batched time-advance engine is active."""
        return self._vectorized

    def now_s(self) -> float:
        """Current CPU/simulated time in seconds."""
        return self._sim_clock.now_s

    def firmware_events(self) -> list[FirmwareEvent]:
        return self._firmware.events

    def executions(self) -> list[KernelExecutionResult]:
        """Ground-truth execution history since recording started."""
        if self._vectorized:
            return self._exec_log.materialize()
        return list(self._executions)

    # ------------------------------------------------------------------ #
    # Power-trace recording.
    # ------------------------------------------------------------------ #
    def start_recording(self) -> float:
        """Begin recording the instantaneous power timeline; returns start time."""
        self._recording = True
        self._segments = []
        self._buffer.clear()
        self._record_extend = self._buffer.data.extend
        self._executions = []
        self._exec_log.clear()
        return self._sim_clock.now_s

    def stop_recording(self) -> Sequence[PowerSegment]:
        """Stop recording and return the captured power segments.

        The vectorized engine returns a columnar :class:`SegmentArray`; the
        reference engine returns a plain list of :class:`PowerSegment`.  Both
        compare equal element-wise and support the same sequence protocol.
        """
        self._recording = False
        if self._vectorized:
            segments_array = self._buffer.to_segment_array()
            self._buffer = _SegmentBuffer()
            self._record_extend = self._buffer.data.extend
            return segments_array
        segments = self._segments
        self._segments = []
        return segments

    @property
    def is_recording(self) -> bool:
        return self._recording

    def _record(self, start_s: float, end_s: float, power: ComponentPower) -> None:
        if self._recording and end_s > start_s:
            self._segments.append(PowerSegment(start_s=start_s, end_s=end_s, power=power))

    # ------------------------------------------------------------------ #
    # Host-visible operations.
    # ------------------------------------------------------------------ #
    def read_timestamp(self) -> TimestampReadResult:
        """Read the GPU timestamp counter from the host (advances CPU time).

        The counter value captured corresponds to the moment the read reaches
        the GPU (about one way into the round trip); the elapsed round trip is
        spent at idle power so telemetry, thermal state and the firmware all
        see the elapsed time consistently.
        """
        one_way = self._timestamp_counter.sample_read_delay_s()
        return_way = self._timestamp_counter.sample_read_delay_s()
        capture_time_s = self._sim_clock.now_s + one_way
        ticks = self._timestamp_counter.ticks_at(capture_time_s)
        self.idle(one_way + return_way)
        return TimestampReadResult(
            gpu_ticks=ticks,
            cpu_time_after_s=self._sim_clock.now_s,
            round_trip_s=one_way + return_way,
        )

    def idle(self, duration_s: float) -> None:
        """Let the device sit idle for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("idle duration cannot be negative")
        if self._vectorized:
            self._idle_fast(duration_s)
        else:
            self._idle_reference(duration_s)

    def park(self, duration_s: float = 12e-3) -> None:
        """Idle long enough for clocks to drop, caches to expire and the die to cool."""
        self.idle(duration_s)

    def execute_kernel(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None = None,
    ) -> KernelExecutionResult:
        """Execute one kernel to completion and return its ground-truth timing.

        The execution is advanced in slices bounded by the firmware control
        period so that clock changes take effect mid-execution for kernels
        longer than the control period (the mechanism behind the power
        excursions and throttling of the largest GEMMs).
        """
        if self._vectorized:
            return self._execute_fast(descriptor, run_variation)
        return self._execute_reference(descriptor, run_variation)

    def draw_run_variation(self, descriptor: KernelActivityDescriptor) -> RunVariation:
        """Draw the per-run variation factors for ``descriptor``."""
        return self._variation.draw_run(descriptor.variation)

    # ------------------------------------------------------------------ #
    # Time-advance engines.
    # ------------------------------------------------------------------ #
    def _idle_reference(self, duration_s: float) -> None:
        """Per-slice reference idle path (the executable specification)."""
        remaining = duration_s
        idle_power = self._idle_power
        while remaining > 1e-12:
            now = self._sim_clock.now_s
            dt = min(remaining, max(self._next_control_s - now, 1e-9))
            self._record(now, now + dt, idle_power)
            self._control.add(idle_power.total_w, dt, active=False)
            self._thermal.step(dt, active=False)
            self._sim_clock.advance(dt)
            remaining -= dt
            self._maybe_step_firmware()

    def _idle_fast(self, duration_s: float) -> None:
        """Batched idle path: same slice boundaries, columnar recording.

        Firmware control steps stay exact (one callback per control period);
        per-slice work collapses to float appends, and warmth is advanced once
        with the closed-form relaxation over the whole span (the warmth update
        inlines :meth:`ThermalModel.step`'s arithmetic -- keep in lockstep).
        """
        if duration_s <= 1e-12:
            return
        thermal = self._thermal
        control = self._control
        clock = self._sim_clock
        now = clock._now_s
        end = now + duration_s
        if end + 1e-12 < self._next_control_s:
            # The whole span fits before the next control step: one slice,
            # no firmware callback (matches the reference loop exactly).
            if self._recording:
                idle_x, idle_i, idle_h = self._idle_power_xih
                self._record_extend((now, end, idle_x, idle_i, idle_h))
            control.energy_j += self._idle_total_w * duration_s
            control.time_s += duration_s
            # SimulationClock.advance(duration_s), written directly.
            clock._now_s = end
            # ThermalModel.step(duration_s, active=False), inlined.
            alpha = 1.0 - exp(-duration_s / self._cool_tau_s)
            warmth = thermal._warmth
            warmth += (0.0 - warmth) * alpha
            thermal._warmth = min(max(warmth, 0.0), 1.0)
            return
        idle_x, idle_i, idle_h = self._idle_power_xih
        total_w = self._idle_total_w
        firmware = self._firmware
        period = self._spec.dvfs.control_period_s
        record = self._recording
        record_extend = self._record_extend
        next_control = self._next_control_s
        remaining = duration_s
        # The control accumulator is kept in locals across the span and
        # written back once (identical arithmetic to per-slice updates).
        c_energy = control.energy_j
        c_time = control.time_s
        c_active = control.active_time_s
        while remaining > 1e-12:
            dt = next_control - now
            if dt < 1e-9:
                dt = 1e-9
            if remaining < dt:
                dt = remaining
            end = now + dt
            if record and end > now:
                record_extend((now, end, idle_x, idle_i, idle_h))
            c_energy += total_w * dt
            c_time += dt
            clock._now_s = end
            remaining -= dt
            now = end
            if now + 1e-12 >= next_control:
                # _maybe_step_firmware, inlined (same thresholds/arithmetic).
                mean_power = c_energy / c_time if c_time > 0 else total_w
                resident = c_time > 0 and c_active >= 0.5 * c_time
                if not resident and firmware._state is FirmwareState.IDLE:
                    # PowerManagementFirmware.step's non-resident branch for
                    # an already-idle controller cannot transition: replicate
                    # its bookkeeping without the call.
                    firmware._last_power_w = float(mean_power)
                    firmware._idle_accum_s += c_time
                    firmware._overdraw_accum_s = 0.0
                else:
                    firmware.step(now, c_time, mean_power, resident)
                c_energy = 0.0
                c_time = 0.0
                c_active = 0.0
                while next_control <= now + 1e-12:
                    next_control += period
        control.energy_j = c_energy
        control.time_s = c_time
        control.active_time_s = c_active
        self._next_control_s = next_control
        self._thermal.relax_span(duration_s, active=False)

    def _execute_reference(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None,
    ) -> KernelExecutionResult:
        """Per-slice reference execution path (the executable specification)."""
        cold = self._consume_cache_state(descriptor)
        jitter = self._variation.draw_execution_jitter(descriptor.variation)
        time_factor = jitter if run_variation is None else run_variation.execution_factor(jitter)

        start_s = self._sim_clock.now_s
        self._firmware.notify_kernel_arrival(start_s)
        work_remaining = 1.0
        energy_j = 0.0
        component_energy = np.zeros(3)
        freq_time_weighted = 0.0

        while work_remaining > 1e-9:
            now = self._sim_clock.now_s
            frequency = self._firmware.frequency_ghz
            duration_full = (
                descriptor.duration_at(
                    frequency, self._spec.dvfs.nominal_frequency_ghz, cold=cold
                )
                * time_factor
            )
            dt_to_control = max(self._next_control_s - now, 1e-9)
            dt = min(dt_to_control, work_remaining * duration_full)
            frac_done = 1.0 - work_remaining
            frac_mid = frac_done + 0.5 * dt / duration_full
            phase = descriptor.phase_at(frac_mid)
            point = OperatingPoint(
                frequency_ghz=frequency, warmth=self._thermal.warmth, cold_caches=cold
            )
            power = self._power_model.kernel_power(descriptor, point, phase)

            self._record(now, now + dt, power)
            self._control.add(power.total_w, dt, active=True)
            self._thermal.step(dt, active=True)
            self._sim_clock.advance(dt)
            energy_j += power.total_w * dt
            component_energy += np.array([power.xcd_w, power.iod_w, power.hbm_w]) * dt
            freq_time_weighted += frequency * dt
            work_remaining -= dt / duration_full
            self._maybe_step_firmware()

        end_s = self._sim_clock.now_s
        duration = end_s - start_s
        self._update_cache_state(descriptor, end_s)
        mean_power = ComponentPower(
            xcd_w=float(component_energy[0] / duration),
            iod_w=float(component_energy[1] / duration),
            hbm_w=float(component_energy[2] / duration),
        )
        result = KernelExecutionResult(
            kernel_name=descriptor.name,
            start_s=start_s,
            end_s=end_s,
            cold_caches=cold,
            mean_frequency_ghz=freq_time_weighted / duration,
            energy_j=energy_j,
            mean_power=mean_power,
        )
        if self._recording:
            self._executions.append(result)
        return result

    def _descriptor_profile(
        self, descriptor: KernelActivityDescriptor
    ) -> tuple[tuple[float, float, float, float, float], ...]:
        """Per-phase power utilisations of a descriptor, cached on it.

        Each row is ``(cumulative_fraction, xcd_act, iod_util, hbm_warm,
        hbm_cold)`` with the phase scaling and the ``min(..., 1.0)`` clamps of
        :meth:`PowerModel.kernel_power` already applied -- everything that
        depends only on the (frozen) descriptor and this device's power
        model, computed once and stashed in the descriptor's ``__dict__``.
        ``object.__setattr__`` bypasses the frozen guard, which is safe
        because the cached value is a pure function of the descriptor's own
        fields and the recorded power model; the cache entry carries the
        power model it was derived from and is recomputed when the same
        descriptor runs on a device with a different one.  The cumulative
        fractions accumulate exactly as
        :meth:`KernelActivityDescriptor.phase_at` does, so the in-loop lookup
        reproduces its boundaries bit for bit.
        """
        cached = descriptor.__dict__.get("_device_power_profile")
        if cached is not None and cached[0] is self._power_model:
            return cached[1]
        power_model = self._power_model
        xcd_activity = power_model.xcd_activity(descriptor)
        iod_utilization = power_model.iod_utilization(descriptor)
        hbm_warm = power_model.hbm_utilization(descriptor, False)
        hbm_cold = power_model.hbm_utilization(descriptor, True)
        rows = []
        cursor = 0.0
        for phase in descriptor.phases:
            cursor += phase.duration_fraction
            rows.append(
                (
                    cursor,
                    min(xcd_activity * phase.xcd_scale, 1.0),
                    min(iod_utilization * phase.iod_scale, 1.0),
                    min(hbm_warm * phase.hbm_scale, 1.0),
                    min(hbm_cold * phase.hbm_scale, 1.0),
                )
            )
        table = tuple(rows)
        # The row phase_at(0.5) selects, for the common case of a kernel
        # that fits in one slice (frac_mid is then exactly 0.5).
        for mid_row in table:
            if 0.5 < mid_row[0]:
                break
        profile = (table, mid_row)
        object.__setattr__(descriptor, "_device_power_profile", (power_model, profile))
        return profile

    def _execute_fast(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None,
        jitter: float | None = None,
        build_result: bool = True,
    ) -> KernelExecutionResult | tuple[float, float]:
        """Batched execution path: identical arithmetic, no per-slice objects.

        One merged function covers cache bookkeeping, the jitter draw, the
        firmware arrival hook, the slice loop and the result epilogue, so a
        short (single-slice) kernel costs a handful of float operations plus
        one columnar append.  Descriptor-level utilisations are hoisted out of
        the loop (they do not change mid-execution); per-slice power repeats
        the exact float arithmetic of :meth:`PowerModel.kernel_power`, the
        warmth update that of :meth:`ThermalModel.step`, and the draws consume
        the same RNG stream as the reference helpers -- keep them in lockstep.

        ``jitter`` lets the launcher pass a pre-drawn execution-jitter factor
        (from a batched draw of the identical stream); when ``None`` the draw
        happens here, exactly as in the reference path.

        ``build_result=False`` is the launch-sequence arena path: the
        ground-truth row still lands in the columnar execution log, but no
        :class:`KernelExecutionResult`/:class:`ComponentPower` objects are
        built -- the caller only needs the returned ``(start_s, end_s)``.
        """
        clock = self._sim_clock
        now = clock._now_s

        # _consume_cache_state, inlined (the state object is reused below).
        state = self._cache_states.get(descriptor.name)
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        cold = state.consecutive_executions < descriptor.cold_executions

        if jitter is None:
            # ExecutionTimeVariationModel.draw_execution_jitter, inlined.
            execution_cv = descriptor.variation.execution_cv
            if execution_cv <= 0:
                jitter = 1.0
            else:
                jitter = float(self._rng.lognormal(mean=0.0, sigma=execution_cv))
                if jitter < ExecutionTimeVariationModel.MIN_FACTOR:
                    jitter = ExecutionTimeVariationModel.MIN_FACTOR
        time_factor = jitter if run_variation is None else run_variation.run_factor * jitter

        start_s = now
        firmware = self._firmware
        fw_state = firmware._state
        if fw_state is FirmwareState.IDLE or fw_state is FirmwareState.RAMPING:
            firmware.notify_kernel_arrival(start_s)
        else:
            # notify_kernel_arrival without a transition: reset idle tracking.
            firmware._idle_accum_s = 0.0

        thermal = self._thermal
        control = self._control
        record = self._recording
        record_extend = self._record_extend
        (
            nominal_ghz,
            power_exponent,
            xcd_idle_w,
            xcd_dynamic_w,
            iod_idle_w,
            iod_dynamic_w,
            hbm_idle_w,
            hbm_dynamic_w,
            warmth_swing,
            iod_coupling,
        ) = self._exec_consts
        heat_tau = self._heat_tau_s
        phase_table, mid_row = self._descriptor_profile(descriptor)
        sensitivity = descriptor.frequency_sensitivity
        base_duration = descriptor.base_duration_s

        frequency = firmware._frequency_ghz
        # Same float ops as descriptor.duration_at(...) * time_factor.
        duration_full = base_duration * (nominal_ghz / frequency) ** sensitivity
        if cold:
            duration_full *= descriptor.cold_duration_multiplier
        duration_full *= time_factor
        end = now + duration_full
        if end + 1e-12 < self._next_control_s:
            # The whole kernel fits in one slice before the next control step
            # (the common case for the paper's short kernels): the general
            # loop below would run exactly once with dt == duration_full and
            # frac_mid == 0.5, so evaluate that one slice directly.
            dt = duration_full
            freq_scale = (frequency / nominal_ghz) ** power_exponent
            warmth = thermal._warmth
            clamped = min(max(warmth, 0.0), 1.0)
            warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
            iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
            x_w = xcd_idle_w + xcd_dynamic_w * mid_row[1] * freq_scale * warm_scale
            i_w = iod_idle_w + iod_dynamic_w * mid_row[2] * iod_freq_scale * warm_scale
            h_w = hbm_idle_w + hbm_dynamic_w * (mid_row[4] if cold else mid_row[3])
            if record and end > now:
                record_extend((now, end, x_w, i_w, h_w))
            total_w = x_w + i_w + h_w
            total_j = total_w * dt
            control.energy_j += total_j
            control.time_s += dt
            control.active_time_s += dt
            # ThermalModel.step(dt, active=True), inlined.
            alpha = 1.0 - exp(-dt / heat_tau)
            warmth += (1.0 - warmth) * alpha
            thermal._warmth = min(max(warmth, 0.0), 1.0)
            # SimulationClock.advance(dt): end is the same float the clock
            # would compute (now + dt), written directly.
            clock._now_s = end
            energy_j = total_j
            xcd_j = x_w * dt
            iod_j = i_w * dt
            hbm_j = h_w * dt
            freq_time_weighted = frequency * dt
            now = end
        else:
            work_remaining = 1.0
            energy_j = 0.0
            xcd_j = iod_j = hbm_j = 0.0
            freq_time_weighted = 0.0

            while work_remaining > 1e-9:
                frequency = firmware._frequency_ghz
                # Same float ops as descriptor.duration_at(...) * time_factor.
                duration_full = base_duration * (nominal_ghz / frequency) ** sensitivity
                if cold:
                    duration_full *= descriptor.cold_duration_multiplier
                duration_full *= time_factor
                dt = self._next_control_s - now
                if dt < 1e-9:
                    dt = 1e-9
                work_dt = work_remaining * duration_full
                if work_dt < dt:
                    dt = work_dt
                frac_mid = (1.0 - work_remaining) + 0.5 * dt / duration_full
                # KernelActivityDescriptor.phase_at over the precomputed
                # table: falls through to the last phase when no boundary
                # exceeds frac_mid (covers frac_mid >= 1 exactly the same).
                for row in phase_table:
                    if frac_mid < row[0]:
                        break

                # PowerModel.kernel_power, inlined with hoisted utilisations.
                freq_scale = (frequency / nominal_ghz) ** power_exponent
                warmth = thermal._warmth
                clamped = min(max(warmth, 0.0), 1.0)
                warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
                iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
                x_w = xcd_idle_w + xcd_dynamic_w * row[1] * freq_scale * warm_scale
                i_w = iod_idle_w + iod_dynamic_w * row[2] * iod_freq_scale * warm_scale
                h_w = hbm_idle_w + hbm_dynamic_w * (row[4] if cold else row[3])

                end = now + dt
                if record and end > now:
                    record_extend((now, end, x_w, i_w, h_w))
                total_w = x_w + i_w + h_w
                total_j = total_w * dt
                control.energy_j += total_j
                control.time_s += dt
                control.active_time_s += dt
                # ThermalModel.step(dt, active=True), inlined.
                alpha = 1.0 - exp(-dt / heat_tau)
                warmth += (1.0 - warmth) * alpha
                thermal._warmth = min(max(warmth, 0.0), 1.0)
                clock._now_s = end
                energy_j += total_j
                xcd_j += x_w * dt
                iod_j += i_w * dt
                hbm_j += h_w * dt
                freq_time_weighted += frequency * dt
                work_remaining -= dt / duration_full
                now = end
                if now + 1e-12 >= self._next_control_s:
                    self._maybe_step_firmware()

        end_s = now
        duration = end_s - start_s
        # _update_cache_state, inlined on the state fetched above.
        state.consecutive_executions += 1
        state.last_end_s = end_s
        mean_frequency = freq_time_weighted / duration
        xcd_w = xcd_j / duration
        iod_w = iod_j / duration
        hbm_w = hbm_j / duration
        if record:
            # Ground truth goes to the columnar execution log: one flat
            # extend, no per-execution result objects.
            self._exec_log_extend(
                (start_s, end_s, 1.0 if cold else 0.0,
                 mean_frequency, energy_j, xcd_w, iod_w, hbm_w)
            )
            self._exec_log.names.append(descriptor.name)
        if not build_result:
            return start_s, end_s
        # Frozen-dataclass __init__ routes every field through
        # object.__setattr__; the hot path builds the identical objects
        # directly through __dict__ (same values, same equality).
        mean_power = ComponentPower.__new__(ComponentPower)
        fields = mean_power.__dict__
        fields["xcd_w"] = xcd_w
        fields["iod_w"] = iod_w
        fields["hbm_w"] = hbm_w
        result = KernelExecutionResult.__new__(KernelExecutionResult)
        fields = result.__dict__
        fields["kernel_name"] = descriptor.name
        fields["start_s"] = start_s
        fields["end_s"] = end_s
        fields["cold_caches"] = cold
        fields["mean_frequency_ghz"] = mean_frequency
        fields["energy_j"] = energy_j
        fields["mean_power"] = mean_power
        return result

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _maybe_step_firmware(self) -> None:
        now = self._sim_clock.now_s
        if now + 1e-12 < self._next_control_s:
            return
        mean_power = self._control.mean_power_w(self._idle_total_w)
        kernel_resident = self._control.mostly_active()
        self._firmware.step(now, self._control.time_s, mean_power, kernel_resident)
        self._control.reset()
        period = self._spec.dvfs.control_period_s
        while self._next_control_s <= now + 1e-12:
            self._next_control_s += period

    def _consume_cache_state(self, descriptor: KernelActivityDescriptor) -> bool:
        """Return whether this execution sees cold caches, updating bookkeeping."""
        state = self._cache_states.get(descriptor.name)
        now = self._sim_clock.now_s
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        return state.consecutive_executions < descriptor.cold_executions

    def _update_cache_state(self, descriptor: KernelActivityDescriptor, end_s: float) -> None:
        state = self._cache_states.setdefault(descriptor.name, _CacheState())
        state.consecutive_executions += 1
        state.last_end_s = end_s

    def reset_cache_state(self) -> None:
        """Forget all cache warm-up state (as after a long idle period)."""
        self._cache_states.clear()


__all__ = ["PowerSegment", "SegmentArray", "KernelExecutionResult", "SimulatedGPU"]
