"""The simulated GPU device.

:class:`SimulatedGPU` is the stand-in for the MI300X used by the paper.  It
executes kernels described by :class:`~repro.gpu.activity.KernelActivityDescriptor`
objects against simulated time, while:

* stepping the DVFS / power-cap firmware every control period,
* stepping the thermal (warmth) model,
* tracking per-kernel cache warmth (cold first executions),
* applying run-to-run and execution-to-execution time variation, and
* recording an instantaneous power timeline that the telemetry layer averages
  into the 1 ms power-logger samples the FinGraV methodology consumes.

The device deliberately exposes *two* views of time: the CPU clock (what the
host observes, used for kernel start/end instrumentation) and the GPU
timestamp counter (what tags power-logger samples).  Only the simulator knows
the exact relationship between them -- the methodology has to reconstruct it,
exactly as on real hardware (paper challenge C2).

Three execution engines
-----------------------
Time advance comes in three interchangeable engines selected by the
``engine`` constructor argument (``"compiled"`` | ``"vectorized"`` |
``"reference"``; the legacy ``vectorized`` boolean maps ``True`` ->
``"vectorized"`` and ``False`` -> ``"reference"``):

* ``engine="compiled"`` -- the per-period/per-slice hot loops run as
  compiled kernels (:mod:`repro.gpu.fastcore`: Numba ``@njit`` when the
  ``fast`` extra is installed, a ctypes-bound C mirror otherwise).  The
  kernels replay the vectorized engine's iterated-float arithmetic exactly
  -- sequential accumulation order, identical clamps, same RNG stream
  consumption -- and a one-time self-check pins them bit-for-bit against
  the pure-Python kernel bodies before the engine can ever be selected.
  Simulation state (clock, warmth, control accumulator, firmware) is packed
  into a flat float vector around each call and recorded slices / firmware
  events are drained from preallocated buffers afterwards, so a whole
  launch sequence collapses to one compiled call.  There is no idle-span
  batching threshold on this engine: the compiled per-period loop is cheap
  at any span length.
* ``engine="vectorized"`` (default) -- the batched NumPy engine.  Slice boundaries
  between firmware control steps are computed with plain float arithmetic,
  per-slice power is appended to a columnar :class:`_SegmentBuffer` (no
  per-slice dataclasses), idle-span warmth is advanced with one closed-form
  relaxation per span (:meth:`~repro.gpu.thermal.ThermalModel.relax_span`),
  and :meth:`stop_recording` returns a :class:`SegmentArray` that the
  telemetry layer ingests without re-packing ``PowerSegment`` objects.
  Multi-boundary idle spans additionally run through a batched boundary
  engine: the whole grid of full control periods is computed as one verified
  NumPy grid (reproducing the per-period loop's iterated-addition floats bit
  for bit), bulk-appended to the segment buffer, and the firmware evolves
  over the grid in closed form
  (:meth:`~repro.gpu.dvfs.PowerManagementFirmware.idle_span` -- at most one
  IDLE-park transition per span).
* ``engine="reference"`` -- the original per-slice reference path, retained
  as the executable specification.  It materialises one :class:`PowerSegment`
  per slice and steps the thermal model slice by slice.

All paths evolve the firmware with exactly one control update per control
period (one ``step()``-equivalent per period, never per slice -- batched idle
spans collapse the per-period callbacks into one closed-form update), consume
the same RNG stream, and produce identical slice boundaries; recorded powers
agree to ~1 ulp (the only divergence is the closed-form idle-span warmth).
The equivalence suite in ``tests/test_device_equivalence.py`` pins segments,
executions, firmware events and final warmth across idle, short-kernel,
throttling-GEMM, interleaved and long-idle park/unpark scenarios, for the
compiled engine, the batched engine and the pinned per-period scalar path
(``_idle_batch_min_periods = inf``) alike.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from dataclasses import dataclass, field
from math import exp

import numpy as np

from . import _fastcore_kernels as _FK
from . import fastcore as _fastcore
from .activity import KernelActivityDescriptor
from .clocks import CPUClock, GPUTimestampCounter, SimulationClock, TimestampReadResult
from .dvfs import FirmwareConfig, FirmwareEvent, FirmwareState, PowerManagementFirmware
from .power_model import IOD_FREQUENCY_COUPLING, ComponentPower, OperatingPoint, PowerModel
from .spec import GPUSpec, mi300x_spec
from .thermal import ThermalModel, ThermalSpec
from .variation import ExecutionTimeVariationModel, RunVariation


# Firmware-state <-> compiled-kernel code mapping.  Order mirrors the FW_*
# codes in _fastcore_kernels (IDLE=0 .. CAPPED=5) -- keep in lockstep.
_FC_STATES = (
    FirmwareState.IDLE,
    FirmwareState.RAMPING,
    FirmwareState.BOOST,
    FirmwareState.THROTTLED,
    FirmwareState.RECOVERING,
    FirmwareState.CAPPED,
)
_FC_CODES = {state: float(code) for code, state in enumerate(_FC_STATES)}


@dataclass(frozen=True)
class PowerSegment:
    """A span of simulated time with constant per-component power."""

    start_s: float
    end_s: float
    power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.power.total_w * self.duration_s


class SegmentArray(Sequence):
    """Columnar view of a recorded power timeline.

    Behaves like an immutable sequence of :class:`PowerSegment` (elements are
    materialised lazily on access) while exposing the underlying float arrays
    -- ``starts_s``, ``ends_s`` and ``powers`` (columns xcd/iod/hbm) -- so
    that :class:`repro.gpu.telemetry._SegmentTimeline` can ingest a recording
    without re-packing thousands of dataclasses.
    """

    __slots__ = ("starts_s", "ends_s", "powers")

    def __init__(self, starts_s, ends_s, powers) -> None:
        self.starts_s = np.asarray(starts_s, dtype=float)
        self.ends_s = np.asarray(ends_s, dtype=float)
        self.powers = np.asarray(powers, dtype=float).reshape(self.starts_s.shape[0], 3)
        if self.ends_s.shape != self.starts_s.shape:
            raise ValueError("starts and ends must have the same length")

    @classmethod
    def from_segments(cls, segments: Sequence[PowerSegment]) -> "SegmentArray":
        return cls(
            [s.start_s for s in segments],
            [s.end_s for s in segments],
            [[s.power.xcd_w, s.power.iod_w, s.power.hbm_w] for s in segments],
        )

    def __len__(self) -> int:
        return self.starts_s.shape[0]

    def __getitem__(self, index):
        if isinstance(index, slice):
            return SegmentArray(self.starts_s[index], self.ends_s[index], self.powers[index])
        row = self.powers[index]
        return PowerSegment(
            start_s=float(self.starts_s[index]),
            end_s=float(self.ends_s[index]),
            power=ComponentPower(xcd_w=float(row[0]), iod_w=float(row[1]), hbm_w=float(row[2])),
        )

    def __eq__(self, other) -> bool:
        if isinstance(other, SegmentArray):
            return (
                np.array_equal(self.starts_s, other.starts_s)
                and np.array_equal(self.ends_s, other.ends_s)
                and np.array_equal(self.powers, other.powers)
            )
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(a == b for a, b in zip(self, other))
        return NotImplemented

    def __hash__(self):  # pragma: no cover - mutable arrays are not hashable
        raise TypeError("SegmentArray is not hashable")

    def __repr__(self) -> str:
        return f"SegmentArray(n={len(self)})"


class _SegmentBuffer:
    """Growable columnar store the vectorized engine appends slices to.

    Slices arrive as plain floats interleaved ``(start, end, xcd, iod, hbm)``
    in one flat list, so recording a slice is a single ``list.extend`` -- no
    :class:`PowerSegment` / dataclass churn on the hot path.  The batched
    idle-span engine instead hands over whole ``(n, 5)`` row blocks
    (:meth:`append_block` is one list append; the block is spliced into the
    scalar stream at its recorded position).  Everything is packed into a
    :class:`SegmentArray` once, when the recording stops.
    """

    __slots__ = ("data", "blocks")

    def __init__(self) -> None:
        self.data = array("d")
        self.blocks: list[tuple[int, np.ndarray]] = []

    def append(self, start: float, end: float, xcd: float, iod: float, hbm: float) -> None:
        self.data.extend((start, end, xcd, iod, hbm))

    def append_block(self, rows: np.ndarray) -> None:
        """Bulk-append ``(start, end, xcd, iod, hbm)`` rows in one call.

        ``rows`` must be a float64 ``(n, 5)`` array the caller hands over
        (it is kept by reference, not copied, until the recording stops).
        """
        self.blocks.append((len(self.data), rows))

    def clear(self) -> None:
        # A fresh array keeps any SegmentArray built from the old buffer valid
        # (to_segment_array wraps the buffer zero-copy when block-free).
        self.data = array("d")
        self.blocks = []

    def to_segment_array(self) -> SegmentArray:
        flat = np.frombuffer(self.data, dtype=float).reshape(-1, 5)
        if self.blocks:
            pieces = []
            cursor = 0
            for offset, block in self.blocks:
                row_offset = offset // 5
                if row_offset > cursor:
                    pieces.append(flat[cursor:row_offset])
                    cursor = row_offset
                pieces.append(block)
            if cursor < flat.shape[0]:
                pieces.append(flat[cursor:])
            flat = np.concatenate(pieces)
        return SegmentArray(flat[:, 0], flat[:, 1], flat[:, 2:5])


@dataclass(frozen=True)
class KernelExecutionResult:
    """Ground-truth outcome of one kernel execution on the device."""

    kernel_name: str
    start_s: float
    end_s: float
    cold_caches: bool
    mean_frequency_ghz: float
    energy_j: float
    mean_power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class _ExecutionLog:
    """Columnar ground-truth execution history (the vectorized engine's).

    The batched execution path appends one flat row of floats per execution
    -- ``(start, end, cold, mean_frequency, energy, xcd_w, iod_w, hbm_w)`` --
    plus the kernel name, instead of constructing a
    :class:`KernelExecutionResult` (and its :class:`ComponentPower`) per
    execution; :meth:`SimulatedGPU.executions` materialises the result
    objects only when the history is actually read (tests / validation).
    """

    __slots__ = ("data", "names")

    _ROW = 8

    def __init__(self) -> None:
        self.data = array("d")
        self.names: list[str] = []

    def clear(self) -> None:
        del self.data[:]
        self.names.clear()

    def materialize(self) -> list[KernelExecutionResult]:
        data = self.data
        results: list[KernelExecutionResult] = []
        for i, name in enumerate(self.names):
            row = i * self._ROW
            mean_power = ComponentPower.__new__(ComponentPower)
            fields = mean_power.__dict__
            fields["xcd_w"] = data[row + 5]
            fields["iod_w"] = data[row + 6]
            fields["hbm_w"] = data[row + 7]
            result = KernelExecutionResult.__new__(KernelExecutionResult)
            fields = result.__dict__
            fields["kernel_name"] = name
            fields["start_s"] = data[row]
            fields["end_s"] = data[row + 1]
            fields["cold_caches"] = bool(data[row + 2])
            fields["mean_frequency_ghz"] = data[row + 3]
            fields["energy_j"] = data[row + 4]
            fields["mean_power"] = mean_power
            results.append(result)
        return results


@dataclass(slots=True)
class _CacheState:
    """Per-kernel cache warm-up bookkeeping."""

    consecutive_executions: int = 0
    last_end_s: float = -1.0


@dataclass(slots=True)
class _ControlAccumulator:
    """Energy/time accumulated since the last firmware control step."""

    energy_j: float = 0.0
    time_s: float = 0.0
    active_time_s: float = 0.0

    def add(self, power_w: float, dt_s: float, active: bool) -> None:
        self.energy_j += power_w * dt_s
        self.time_s += dt_s
        if active:
            self.active_time_s += dt_s

    def mean_power_w(self, idle_power_w: float) -> float:
        if self.time_s <= 0:
            return idle_power_w
        return self.energy_j / self.time_s

    def mostly_active(self) -> bool:
        return self.time_s > 0 and self.active_time_s >= 0.5 * self.time_s

    def reset(self) -> None:
        self.energy_j = 0.0
        self.time_s = 0.0
        self.active_time_s = 0.0


class SimulatedGPU:
    """A single simulated MI300X-class GPU."""

    #: Idle time after which a kernel's working set is considered evicted
    #: from the on-chip caches (seconds).
    CACHE_RETENTION_S = 4e-3

    #: Minimum estimated whole control periods left in an idle span before
    #: the vectorized engine's batched boundary engine takes over from the
    #: per-period loop.  Measured break-even is ~16-24 periods
    #: (bench_idle_span.py); the default sits at the low end so the common
    #: 8 ms park (32 periods) rides the batched grid.  The compiled engine
    #: has no threshold at all -- its per-period loop is cheap at any span
    #: length.  Tests set the instance attribute to ``inf`` to pin the
    #: per-period scalar path, or to a small value to force batching on
    #: short spans.
    _IDLE_BATCH_MIN_PERIODS = 16

    def __init__(
        self,
        spec: GPUSpec | None = None,
        seed: int = 0,
        thermal_spec: ThermalSpec | None = None,
        firmware_config: FirmwareConfig | None = None,
        vectorized: bool = True,
        engine: str | None = None,
    ) -> None:
        self._spec = spec or mi300x_spec()
        self._spec.validate()
        self._rng = np.random.default_rng(seed)
        self._sim_clock = SimulationClock()
        self._cpu_clock = CPUClock(self._sim_clock)
        self._timestamp_counter = GPUTimestampCounter(self._spec.clocks, self._sim_clock, self._rng)
        self._power_model = PowerModel(self._spec)
        self._firmware = PowerManagementFirmware(
            self._spec.dvfs, self._spec.power, firmware_config
        )
        self._thermal = ThermalModel(thermal_spec)
        self._variation = ExecutionTimeVariationModel(self._rng)
        # Engine resolution: an explicit ``engine`` string wins (resolved
        # through fastcore, honouring availability); with ``engine=None``
        # the legacy ``vectorized`` boolean pins the NumPy or reference
        # engine exactly as before -- direct constructor callers never
        # auto-select the compiled tier (backends resolve ``auto`` and pass
        # the result down explicitly).
        if engine is None:
            self._engine = "vectorized" if vectorized else "reference"
        else:
            self._engine = _fastcore.resolve_engine(engine)
        self._vectorized = self._engine != "reference"
        self._idle_batch_min_periods = float(self._IDLE_BATCH_MIN_PERIODS)
        # Control-boundary lattice of the batched idle-span engine (built
        # lazily by _boundary_span) and its cached idle-power row template.
        self._lattice: np.ndarray | None = None
        self._lattice_diffs: np.ndarray | None = None
        self._lattice_broken = False
        self._idle_rows_cache: np.ndarray | None = None

        # Idle power is constant for the lifetime of the device; cache it so
        # the hot paths (and the firmware fallback) skip re-synthesising it.
        idle_power = self._power_model.idle_power()
        self._idle_power = idle_power
        self._idle_power_xih = (idle_power.xcd_w, idle_power.iod_w, idle_power.hbm_w)
        self._idle_total_w = idle_power.total_w
        # Constants the batched engine reads every slice, hoisted once.
        budget = self._spec.power
        dvfs = self._spec.dvfs
        self._exec_consts = (
            dvfs.nominal_frequency_ghz,
            dvfs.power_exponent,
            budget.xcd_idle_w,
            budget.xcd_dynamic_w,
            budget.iod_idle_w,
            budget.iod_dynamic_w,
            budget.hbm_idle_w,
            budget.hbm_dynamic_w,
            PowerModel.WARMTH_DYNAMIC_SWING,
            IOD_FREQUENCY_COUPLING,
        )
        thermal_spec = self._thermal.spec
        self._heat_tau_s = thermal_spec.heat_tau_s
        self._cool_tau_s = thermal_spec.cool_tau_s

        self._recording = False
        self._segments: list[PowerSegment] = []
        self._buffer = _SegmentBuffer()
        # Bound extend of the buffer's flat storage, re-grabbed whenever the
        # storage is swapped -- the hot paths append through this.
        self._record_extend = self._buffer.data.extend
        self._cache_states: dict[str, _CacheState] = {}
        self._control = _ControlAccumulator()
        self._next_control_s = self._spec.dvfs.control_period_s
        self._executions: list[KernelExecutionResult] = []
        # Columnar ground-truth log the vectorized engine appends to (the
        # reference engine keeps appending result objects to _executions).
        self._exec_log = _ExecutionLog()
        self._exec_log_extend = self._exec_log.data.extend

        # Hot-path dispatch: launchers call these bound attributes instead of
        # branching on the engine per call.
        if self._engine == "compiled":
            self._fc_setup()
            self._idle_hot = self._idle_compiled
            self._execute_hot = self._execute_compiled
        else:
            self._idle_hot = self._idle_fast
            self._execute_hot = self._execute_fast

        # Host-side timestamp reads must go through the device so the round
        # trip is visible to telemetry, thermal state and the firmware alike.
        self._timestamp_counter.attach_host_read_path(self.read_timestamp)

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> GPUSpec:
        return self._spec

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def cpu_clock(self) -> CPUClock:
        return self._cpu_clock

    @property
    def timestamp_counter(self) -> GPUTimestampCounter:
        return self._timestamp_counter

    @property
    def firmware(self) -> PowerManagementFirmware:
        return self._firmware

    @property
    def thermal(self) -> ThermalModel:
        return self._thermal

    @property
    def variation_model(self) -> ExecutionTimeVariationModel:
        return self._variation

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def engine(self) -> str:
        """The active time-advance engine (compiled/vectorized/reference)."""
        return self._engine

    @property
    def vectorized(self) -> bool:
        """Whether a batched time-advance engine is active.

        True for both the ``vectorized`` and ``compiled`` engines (they share
        the columnar recording/launch paths); False only for ``reference``.
        """
        return self._vectorized

    def now_s(self) -> float:
        """Current CPU/simulated time in seconds."""
        return self._sim_clock.now_s

    def firmware_events(self) -> list[FirmwareEvent]:
        return self._firmware.events

    def executions(self) -> list[KernelExecutionResult]:
        """Ground-truth execution history since recording started."""
        if self._vectorized:
            return self._exec_log.materialize()
        return list(self._executions)

    # ------------------------------------------------------------------ #
    # Power-trace recording.
    # ------------------------------------------------------------------ #
    def start_recording(self) -> float:
        """Begin recording the instantaneous power timeline; returns start time."""
        self._recording = True
        self._segments = []
        self._buffer.clear()
        self._record_extend = self._buffer.data.extend
        self._executions = []
        self._exec_log.clear()
        return self._sim_clock.now_s

    def stop_recording(self) -> Sequence[PowerSegment]:
        """Stop recording and return the captured power segments.

        The vectorized engine returns a columnar :class:`SegmentArray`; the
        reference engine returns a plain list of :class:`PowerSegment`.  Both
        compare equal element-wise and support the same sequence protocol.
        """
        self._recording = False
        if self._vectorized:
            segments_array = self._buffer.to_segment_array()
            self._buffer = _SegmentBuffer()
            self._record_extend = self._buffer.data.extend
            return segments_array
        segments = self._segments
        self._segments = []
        return segments

    @property
    def is_recording(self) -> bool:
        return self._recording

    def _record(self, start_s: float, end_s: float, power: ComponentPower) -> None:
        if self._recording and end_s > start_s:
            self._segments.append(PowerSegment(start_s=start_s, end_s=end_s, power=power))

    # ------------------------------------------------------------------ #
    # Host-visible operations.
    # ------------------------------------------------------------------ #
    def read_timestamp(self) -> TimestampReadResult:
        """Read the GPU timestamp counter from the host (advances CPU time).

        The counter value captured corresponds to the moment the read reaches
        the GPU (about one way into the round trip); the elapsed round trip is
        spent at idle power so telemetry, thermal state and the firmware all
        see the elapsed time consistently.
        """
        one_way = self._timestamp_counter.sample_read_delay_s()
        return_way = self._timestamp_counter.sample_read_delay_s()
        capture_time_s = self._sim_clock.now_s + one_way
        ticks = self._timestamp_counter.ticks_at(capture_time_s)
        self.idle(one_way + return_way)
        return TimestampReadResult(
            gpu_ticks=ticks,
            cpu_time_after_s=self._sim_clock.now_s,
            round_trip_s=one_way + return_way,
        )

    def idle(self, duration_s: float) -> None:
        """Let the device sit idle for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("idle duration cannot be negative")
        if self._vectorized:
            self._idle_hot(duration_s)
        else:
            self._idle_reference(duration_s)

    def park(self, duration_s: float = 12e-3) -> None:
        """Idle long enough for clocks to drop, caches to expire and the die to cool."""
        self.idle(duration_s)

    def execute_kernel(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None = None,
    ) -> KernelExecutionResult:
        """Execute one kernel to completion and return its ground-truth timing.

        The execution is advanced in slices bounded by the firmware control
        period so that clock changes take effect mid-execution for kernels
        longer than the control period (the mechanism behind the power
        excursions and throttling of the largest GEMMs).
        """
        if self._vectorized:
            return self._execute_hot(descriptor, run_variation)
        return self._execute_reference(descriptor, run_variation)

    def draw_run_variation(self, descriptor: KernelActivityDescriptor) -> RunVariation:
        """Draw the per-run variation factors for ``descriptor``."""
        return self._variation.draw_run(descriptor.variation)

    # ------------------------------------------------------------------ #
    # Time-advance engines.
    # ------------------------------------------------------------------ #
    def _idle_reference(self, duration_s: float) -> None:
        """Per-slice reference idle path (the executable specification)."""
        remaining = duration_s
        idle_power = self._idle_power
        while remaining > 1e-12:
            now = self._sim_clock.now_s
            dt = min(remaining, max(self._next_control_s - now, 1e-9))
            self._record(now, now + dt, idle_power)
            self._control.add(idle_power.total_w, dt, active=False)
            self._thermal.step(dt, active=False)
            self._sim_clock.advance(dt)
            remaining -= dt
            self._maybe_step_firmware()

    def _idle_fast(self, duration_s: float) -> None:
        """Batched idle path: same slice boundaries, columnar recording.

        Firmware control steps stay exact (one ``step``-equivalent update per
        control period); per-slice work collapses to float appends, and warmth
        is advanced once with the closed-form relaxation over the whole span
        (the warmth update inlines :meth:`ThermalModel.step`'s arithmetic --
        keep in lockstep).

        Multi-boundary spans run through a batched boundary engine: whenever
        the control accumulator is empty (i.e. the span sits exactly on a
        control boundary, or started with nothing accrued) and at least
        ``_IDLE_BATCH_MIN_PERIODS`` whole periods remain, the full-period
        slices ahead are computed as one vectorized grid.  The grid reproduces
        the per-period loop's iterated-addition float boundaries exactly --
        ``np.add.accumulate`` replays ``next_control += period`` and
        ``remaining -= dt`` sequentially, and the slice-end collapse
        ``fl(now + fl(next_control - now)) == next_control`` is *verified* per
        chunk, falling back to the per-period loop below on any mismatch (the
        reason a naive ``np.arange`` scan would diverge).  The whole grid is
        bulk-appended to the :class:`_SegmentBuffer` in one call and the
        firmware evolves over the grid's boundaries in closed form
        (:meth:`PowerManagementFirmware.idle_span`, at most one IDLE-park
        transition per span).  The retained per-period loop handles the head
        slice (a partially-accrued control interval, possibly resident), the
        tail slice (the final partial period) and any unverifiable grid; it is
        the pinned scalar path the equivalence suite compares against
        (``_idle_batch_min_periods = inf`` disables batching entirely).
        """
        if duration_s <= 1e-12:
            return
        thermal = self._thermal
        control = self._control
        clock = self._sim_clock
        now = clock._now_s
        end = now + duration_s
        if end + 1e-12 < self._next_control_s:
            # The whole span fits before the next control step: one slice,
            # no firmware callback (matches the reference loop exactly).
            if self._recording:
                idle_x, idle_i, idle_h = self._idle_power_xih
                self._record_extend((now, end, idle_x, idle_i, idle_h))
            control.energy_j += self._idle_total_w * duration_s
            control.time_s += duration_s
            # SimulationClock.advance(duration_s), written directly.
            clock._now_s = end
            # ThermalModel.step(duration_s, active=False), inlined.
            alpha = 1.0 - exp(-duration_s / self._cool_tau_s)
            warmth = thermal._warmth
            warmth += (0.0 - warmth) * alpha
            thermal._warmth = min(max(warmth, 0.0), 1.0)
            return
        idle_x, idle_i, idle_h = self._idle_power_xih
        total_w = self._idle_total_w
        firmware = self._firmware
        period = self._spec.dvfs.control_period_s
        record = self._recording
        record_extend = self._record_extend
        next_control = self._next_control_s
        remaining = duration_s
        batch_threshold = self._idle_batch_min_periods * period
        # The control accumulator is kept in locals across the span and
        # written back once (identical arithmetic to per-slice updates).
        c_energy = control.energy_j
        c_time = control.time_s
        c_active = control.active_time_s
        while remaining > 1e-12:
            if (
                c_time == 0.0
                and c_energy == 0.0
                and c_active == 0.0
                and remaining >= batch_threshold
            ):
                # Batched boundary engine: every slice ahead spans one whole
                # control period from an empty accumulator, so slice ends ARE
                # the control boundaries and every boundary is a non-resident
                # firmware update with mean power (total_w * dt) / dt.
                d0 = next_control - now
                m = int(remaining / period) + 2
                span = self._boundary_span(next_control, m)
                # The lattice pre-verifies every boundary after the first; the
                # first slice is checked here: it must not trip the 1e-9
                # clamp and its end must land bit-exactly on the boundary.
                if span is not None and d0 >= 1e-9 and now + d0 == next_control:
                    lat, lat_diffs, idx = span
                    grid = lat[idx : idx + m]
                    dts = np.empty(m)
                    dts[0] = d0
                    dts[1:] = lat_diffs[idx : idx + m - 1]
                    # remaining -= dt, iterated: subtract.accumulate replays
                    # the countdown's exact sequential floats.
                    racc = np.empty(m + 1)
                    racc[0] = remaining
                    racc[1:] = dts
                    np.subtract.accumulate(racc, out=racc)
                    # A slice is a whole period iff the countdown does not
                    # truncate it (every dt >= 1e-9 > 1e-12, so the loop
                    # guard is implied); the first failure is the partial
                    # tail (or the span end) -- scalar territory.
                    full = racc[:m] >= dts
                    count = int(np.argmin(full))
                    if count == 0 and bool(full[0]):
                        count = m
                    if count:
                        if record:
                            template = self._idle_rows_cache
                            if template is None or template.shape[0] < count:
                                template = np.empty((max(count, 512), 5))
                                template[:, 2] = idle_x
                                template[:, 3] = idle_i
                                template[:, 4] = idle_h
                                self._idle_rows_cache = template
                            rows = template[:count].copy()
                            rows[0, 0] = now
                            rows[1:, 0] = grid[: count - 1]
                            rows[:, 1] = grid[:count]
                            self._buffer.append_block(rows)
                        span_end = float(grid[count - 1])
                        firmware.idle_span(
                            now, span_end - now, total_w, grid[:count], dts[:count]
                        )
                        now = span_end
                        clock._now_s = now
                        next_control = float(lat[idx + count])
                        remaining = float(racc[count])
                        # Each batched boundary reset the accumulator; the
                        # locals are already 0.0.
                        continue
                # Grid unavailable or failed verification: the per-period
                # loop takes over.
            dt = next_control - now
            if dt < 1e-9:
                dt = 1e-9
            if remaining < dt:
                dt = remaining
            end = now + dt
            if record and end > now:
                record_extend((now, end, idle_x, idle_i, idle_h))
            c_energy += total_w * dt
            c_time += dt
            clock._now_s = end
            remaining -= dt
            now = end
            if now + 1e-12 >= next_control:
                # _maybe_step_firmware, inlined (same thresholds/arithmetic).
                mean_power = c_energy / c_time if c_time > 0 else total_w
                resident = c_time > 0 and c_active >= 0.5 * c_time
                if not resident and firmware._state is FirmwareState.IDLE:
                    # PowerManagementFirmware.step's non-resident branch for
                    # an already-idle controller cannot transition: replicate
                    # its bookkeeping without the call.
                    firmware._last_power_w = float(mean_power)
                    firmware._idle_accum_s += c_time
                    firmware._overdraw_accum_s = 0.0
                else:
                    firmware.step(now, c_time, mean_power, resident)
                c_energy = 0.0
                c_time = 0.0
                c_active = 0.0
                while next_control <= now + 1e-12:
                    next_control += period
        control.energy_j = c_energy
        control.time_s = c_time
        control.active_time_s = c_active
        self._next_control_s = next_control
        self._thermal.relax_span(duration_s, active=False)

    def _execute_reference(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None,
    ) -> KernelExecutionResult:
        """Per-slice reference execution path (the executable specification)."""
        cold = self._consume_cache_state(descriptor)
        jitter = self._variation.draw_execution_jitter(descriptor.variation)
        time_factor = jitter if run_variation is None else run_variation.execution_factor(jitter)

        start_s = self._sim_clock.now_s
        self._firmware.notify_kernel_arrival(start_s)
        work_remaining = 1.0
        energy_j = 0.0
        component_energy = np.zeros(3)
        freq_time_weighted = 0.0

        while work_remaining > 1e-9:
            now = self._sim_clock.now_s
            frequency = self._firmware.frequency_ghz
            duration_full = (
                descriptor.duration_at(
                    frequency, self._spec.dvfs.nominal_frequency_ghz, cold=cold
                )
                * time_factor
            )
            dt_to_control = max(self._next_control_s - now, 1e-9)
            dt = min(dt_to_control, work_remaining * duration_full)
            frac_done = 1.0 - work_remaining
            frac_mid = frac_done + 0.5 * dt / duration_full
            phase = descriptor.phase_at(frac_mid)
            point = OperatingPoint(
                frequency_ghz=frequency, warmth=self._thermal.warmth, cold_caches=cold
            )
            power = self._power_model.kernel_power(descriptor, point, phase)

            self._record(now, now + dt, power)
            self._control.add(power.total_w, dt, active=True)
            self._thermal.step(dt, active=True)
            self._sim_clock.advance(dt)
            energy_j += power.total_w * dt
            component_energy += np.array([power.xcd_w, power.iod_w, power.hbm_w]) * dt
            freq_time_weighted += frequency * dt
            work_remaining -= dt / duration_full
            self._maybe_step_firmware()

        end_s = self._sim_clock.now_s
        duration = end_s - start_s
        self._update_cache_state(descriptor, end_s)
        mean_power = ComponentPower(
            xcd_w=float(component_energy[0] / duration),
            iod_w=float(component_energy[1] / duration),
            hbm_w=float(component_energy[2] / duration),
        )
        result = KernelExecutionResult(
            kernel_name=descriptor.name,
            start_s=start_s,
            end_s=end_s,
            cold_caches=cold,
            mean_frequency_ghz=freq_time_weighted / duration,
            energy_j=energy_j,
            mean_power=mean_power,
        )
        if self._recording:
            self._executions.append(result)
        return result

    def _descriptor_profile(
        self, descriptor: KernelActivityDescriptor
    ) -> tuple[tuple[float, float, float, float, float], ...]:
        """Per-phase power utilisations of a descriptor, cached on it.

        Each row is ``(cumulative_fraction, xcd_act, iod_util, hbm_warm,
        hbm_cold)`` with the phase scaling and the ``min(..., 1.0)`` clamps of
        :meth:`PowerModel.kernel_power` already applied -- everything that
        depends only on the (frozen) descriptor and this device's power
        model, computed once and stashed in the descriptor's ``__dict__``.
        ``object.__setattr__`` bypasses the frozen guard, which is safe
        because the cached value is a pure function of the descriptor's own
        fields and the recorded power model; the cache entry carries the
        power model it was derived from and is recomputed when the same
        descriptor runs on a device with a different one.  The cumulative
        fractions accumulate exactly as
        :meth:`KernelActivityDescriptor.phase_at` does, so the in-loop lookup
        reproduces its boundaries bit for bit.
        """
        cached = descriptor.__dict__.get("_device_power_profile")
        if cached is not None and cached[0] is self._power_model:
            return cached[1]
        power_model = self._power_model
        xcd_activity = power_model.xcd_activity(descriptor)
        iod_utilization = power_model.iod_utilization(descriptor)
        hbm_warm = power_model.hbm_utilization(descriptor, False)
        hbm_cold = power_model.hbm_utilization(descriptor, True)
        rows = []
        cursor = 0.0
        for phase in descriptor.phases:
            cursor += phase.duration_fraction
            rows.append(
                (
                    cursor,
                    min(xcd_activity * phase.xcd_scale, 1.0),
                    min(iod_utilization * phase.iod_scale, 1.0),
                    min(hbm_warm * phase.hbm_scale, 1.0),
                    min(hbm_cold * phase.hbm_scale, 1.0),
                )
            )
        table = tuple(rows)
        # The row phase_at(0.5) selects, for the common case of a kernel
        # that fits in one slice (frac_mid is then exactly 0.5).
        for mid_row in table:
            if 0.5 < mid_row[0]:
                break
        profile = (table, mid_row)
        object.__setattr__(descriptor, "_device_power_profile", (power_model, profile))
        return profile

    def _execute_fast(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None,
        jitter: float | None = None,
        build_result: bool = True,
    ) -> KernelExecutionResult | tuple[float, float]:
        """Batched execution path: identical arithmetic, no per-slice objects.

        One merged function covers cache bookkeeping, the jitter draw, the
        firmware arrival hook, the slice loop and the result epilogue, so a
        short (single-slice) kernel costs a handful of float operations plus
        one columnar append.  Descriptor-level utilisations are hoisted out of
        the loop (they do not change mid-execution); per-slice power repeats
        the exact float arithmetic of :meth:`PowerModel.kernel_power`, the
        warmth update that of :meth:`ThermalModel.step`, and the draws consume
        the same RNG stream as the reference helpers -- keep them in lockstep.

        ``jitter`` lets the launcher pass a pre-drawn execution-jitter factor
        (from a batched draw of the identical stream); when ``None`` the draw
        happens here, exactly as in the reference path.

        ``build_result=False`` is the launch-sequence arena path: the
        ground-truth row still lands in the columnar execution log, but no
        :class:`KernelExecutionResult`/:class:`ComponentPower` objects are
        built -- the caller only needs the returned ``(start_s, end_s)``.
        """
        clock = self._sim_clock
        now = clock._now_s

        # _consume_cache_state, inlined (the state object is reused below).
        state = self._cache_states.get(descriptor.name)
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        cold = state.consecutive_executions < descriptor.cold_executions

        if jitter is None:
            # ExecutionTimeVariationModel.draw_execution_jitter, inlined.
            execution_cv = descriptor.variation.execution_cv
            if execution_cv <= 0:
                jitter = 1.0
            else:
                jitter = float(self._rng.lognormal(mean=0.0, sigma=execution_cv))
                if jitter < ExecutionTimeVariationModel.MIN_FACTOR:
                    jitter = ExecutionTimeVariationModel.MIN_FACTOR
        time_factor = jitter if run_variation is None else run_variation.run_factor * jitter

        start_s = now
        firmware = self._firmware
        fw_state = firmware._state
        if fw_state is FirmwareState.IDLE or fw_state is FirmwareState.RAMPING:
            firmware.notify_kernel_arrival(start_s)
        else:
            # notify_kernel_arrival without a transition: reset idle tracking.
            firmware._idle_accum_s = 0.0

        thermal = self._thermal
        control = self._control
        record = self._recording
        record_extend = self._record_extend
        (
            nominal_ghz,
            power_exponent,
            xcd_idle_w,
            xcd_dynamic_w,
            iod_idle_w,
            iod_dynamic_w,
            hbm_idle_w,
            hbm_dynamic_w,
            warmth_swing,
            iod_coupling,
        ) = self._exec_consts
        heat_tau = self._heat_tau_s
        phase_table, mid_row = self._descriptor_profile(descriptor)
        sensitivity = descriptor.frequency_sensitivity
        base_duration = descriptor.base_duration_s

        frequency = firmware._frequency_ghz
        # Same float ops as descriptor.duration_at(...) * time_factor.
        duration_full = base_duration * (nominal_ghz / frequency) ** sensitivity
        if cold:
            duration_full *= descriptor.cold_duration_multiplier
        duration_full *= time_factor
        end = now + duration_full
        if end + 1e-12 < self._next_control_s:
            # The whole kernel fits in one slice before the next control step
            # (the common case for the paper's short kernels): the general
            # loop below would run exactly once with dt == duration_full and
            # frac_mid == 0.5, so evaluate that one slice directly.
            dt = duration_full
            freq_scale = (frequency / nominal_ghz) ** power_exponent
            warmth = thermal._warmth
            clamped = min(max(warmth, 0.0), 1.0)
            warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
            iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
            x_w = xcd_idle_w + xcd_dynamic_w * mid_row[1] * freq_scale * warm_scale
            i_w = iod_idle_w + iod_dynamic_w * mid_row[2] * iod_freq_scale * warm_scale
            h_w = hbm_idle_w + hbm_dynamic_w * (mid_row[4] if cold else mid_row[3])
            if record and end > now:
                record_extend((now, end, x_w, i_w, h_w))
            total_w = x_w + i_w + h_w
            total_j = total_w * dt
            control.energy_j += total_j
            control.time_s += dt
            control.active_time_s += dt
            # ThermalModel.step(dt, active=True), inlined.
            alpha = 1.0 - exp(-dt / heat_tau)
            warmth += (1.0 - warmth) * alpha
            thermal._warmth = min(max(warmth, 0.0), 1.0)
            # SimulationClock.advance(dt): end is the same float the clock
            # would compute (now + dt), written directly.
            clock._now_s = end
            energy_j = total_j
            xcd_j = x_w * dt
            iod_j = i_w * dt
            hbm_j = h_w * dt
            freq_time_weighted = frequency * dt
            now = end
        else:
            work_remaining = 1.0
            energy_j = 0.0
            xcd_j = iod_j = hbm_j = 0.0
            freq_time_weighted = 0.0

            while work_remaining > 1e-9:
                frequency = firmware._frequency_ghz
                # Same float ops as descriptor.duration_at(...) * time_factor.
                duration_full = base_duration * (nominal_ghz / frequency) ** sensitivity
                if cold:
                    duration_full *= descriptor.cold_duration_multiplier
                duration_full *= time_factor
                dt = self._next_control_s - now
                if dt < 1e-9:
                    dt = 1e-9
                work_dt = work_remaining * duration_full
                if work_dt < dt:
                    dt = work_dt
                frac_mid = (1.0 - work_remaining) + 0.5 * dt / duration_full
                # KernelActivityDescriptor.phase_at over the precomputed
                # table: falls through to the last phase when no boundary
                # exceeds frac_mid (covers frac_mid >= 1 exactly the same).
                for row in phase_table:
                    if frac_mid < row[0]:
                        break

                # PowerModel.kernel_power, inlined with hoisted utilisations.
                freq_scale = (frequency / nominal_ghz) ** power_exponent
                warmth = thermal._warmth
                clamped = min(max(warmth, 0.0), 1.0)
                warm_scale = 1.0 - warmth_swing * (1.0 - clamped)
                iod_freq_scale = 1.0 + iod_coupling * (freq_scale - 1.0)
                x_w = xcd_idle_w + xcd_dynamic_w * row[1] * freq_scale * warm_scale
                i_w = iod_idle_w + iod_dynamic_w * row[2] * iod_freq_scale * warm_scale
                h_w = hbm_idle_w + hbm_dynamic_w * (row[4] if cold else row[3])

                end = now + dt
                if record and end > now:
                    record_extend((now, end, x_w, i_w, h_w))
                total_w = x_w + i_w + h_w
                total_j = total_w * dt
                control.energy_j += total_j
                control.time_s += dt
                control.active_time_s += dt
                # ThermalModel.step(dt, active=True), inlined.
                alpha = 1.0 - exp(-dt / heat_tau)
                warmth += (1.0 - warmth) * alpha
                thermal._warmth = min(max(warmth, 0.0), 1.0)
                clock._now_s = end
                energy_j += total_j
                xcd_j += x_w * dt
                iod_j += i_w * dt
                hbm_j += h_w * dt
                freq_time_weighted += frequency * dt
                work_remaining -= dt / duration_full
                now = end
                if now + 1e-12 >= self._next_control_s:
                    self._maybe_step_firmware()

        end_s = now
        duration = end_s - start_s
        # _update_cache_state, inlined on the state fetched above.
        state.consecutive_executions += 1
        state.last_end_s = end_s
        mean_frequency = freq_time_weighted / duration
        xcd_w = xcd_j / duration
        iod_w = iod_j / duration
        hbm_w = hbm_j / duration
        if record:
            # Ground truth goes to the columnar execution log: one flat
            # extend, no per-execution result objects.
            self._exec_log_extend(
                (start_s, end_s, 1.0 if cold else 0.0,
                 mean_frequency, energy_j, xcd_w, iod_w, hbm_w)
            )
            self._exec_log.names.append(descriptor.name)
        if not build_result:
            return start_s, end_s
        # Frozen-dataclass __init__ routes every field through
        # object.__setattr__; the hot path builds the identical objects
        # directly through __dict__ (same values, same equality).
        mean_power = ComponentPower.__new__(ComponentPower)
        fields = mean_power.__dict__
        fields["xcd_w"] = xcd_w
        fields["iod_w"] = iod_w
        fields["hbm_w"] = hbm_w
        result = KernelExecutionResult.__new__(KernelExecutionResult)
        fields = result.__dict__
        fields["kernel_name"] = descriptor.name
        fields["start_s"] = start_s
        fields["end_s"] = end_s
        fields["cold_caches"] = cold
        fields["mean_frequency_ghz"] = mean_frequency
        fields["energy_j"] = energy_j
        fields["mean_power"] = mean_power
        return result

    # ------------------------------------------------------------------ #
    # Compiled engine.
    # ------------------------------------------------------------------ #
    def _fc_setup(self) -> None:
        """Bind the compiled-kernel bundle and preallocate its buffers.

        The parameter vector packs everything the kernels read that is
        constant for the device's lifetime (spec frequencies and powers,
        firmware tunables, thermal taus, cache retention) in the ``P_*``
        layout of :mod:`repro.gpu._fastcore_kernels`.
        """
        bundle = _fastcore.kernels()
        if bundle is None:  # pragma: no cover - resolve_engine guards this
            raise RuntimeError("compiled engine selected but no provider is available")
        self._fc = bundle
        dvfs = self._spec.dvfs
        budget = self._spec.power
        cfg = self._firmware.config
        idle_x, idle_i, idle_h = self._idle_power_xih
        pp = np.empty(_FK.PARAM_LEN)
        pp[_FK.P_PERIOD] = dvfs.control_period_s
        pp[_FK.P_IDLE_X] = idle_x
        pp[_FK.P_IDLE_I] = idle_i
        pp[_FK.P_IDLE_H] = idle_h
        pp[_FK.P_IDLE_TOT] = self._idle_total_w
        pp[_FK.P_NOM] = dvfs.nominal_frequency_ghz
        pp[_FK.P_PEXP] = dvfs.power_exponent
        pp[_FK.P_XIDLE] = budget.xcd_idle_w
        pp[_FK.P_XDYN] = budget.xcd_dynamic_w
        pp[_FK.P_IIDLE] = budget.iod_idle_w
        pp[_FK.P_IDYN] = budget.iod_dynamic_w
        pp[_FK.P_HIDLE] = budget.hbm_idle_w
        pp[_FK.P_HDYN] = budget.hbm_dynamic_w
        pp[_FK.P_SWING] = PowerModel.WARMTH_DYNAMIC_SWING
        pp[_FK.P_COUPLE] = IOD_FREQUENCY_COUPLING
        pp[_FK.P_HEAT_TAU] = self._heat_tau_s
        pp[_FK.P_COOL_TAU] = self._cool_tau_s
        pp[_FK.P_LIMIT] = budget.board_limit_w
        pp[_FK.P_EXC_THRESH] = cfg.excursion_threshold
        pp[_FK.P_EXC_WIN] = cfg.excursion_window_s
        pp[_FK.P_T_HOLD] = cfg.throttle_hold_s
        pp[_FK.P_REC_STEP] = cfg.recovery_step_ghz
        pp[_FK.P_RAMP_STEP] = cfg.ramp_step_ghz
        pp[_FK.P_CAP_TGT] = cfg.cap_target
        pp[_FK.P_CAP_HYST] = cfg.cap_release_hysteresis
        pp[_FK.P_IDLE_PARK] = cfg.idle_park_s
        pp[_FK.P_F_IDLE] = dvfs.idle_frequency_ghz
        pp[_FK.P_F_BOOST] = dvfs.boost_frequency_ghz
        pp[_FK.P_F_SUST] = dvfs.sustained_frequency_ghz
        pp[_FK.P_RETENTION] = self.CACHE_RETENTION_S
        pp[_FK.P_MINFACT] = ExecutionTimeVariationModel.MIN_FACTOR
        self._fc_params = pp
        self._fc_state = np.empty(_FK.STATE_LEN)
        self._fc_lens = np.zeros(2, dtype=np.int64)
        self._fc_seg = np.empty((4096, 5))
        self._fc_ev = np.empty((256, 4))
        self._fc_out8 = np.empty(8)
        self._fc_cache = np.empty(2)

    def _fc_pack(self) -> np.ndarray:
        """Mirror live simulation state into the kernel state vector."""
        st = self._fc_state
        firmware = self._firmware
        control = self._control
        st[_FK.S_NOW] = self._sim_clock._now_s
        st[_FK.S_WARMTH] = self._thermal._warmth
        st[_FK.S_CEN] = control.energy_j
        st[_FK.S_CTM] = control.time_s
        st[_FK.S_CAC] = control.active_time_s
        st[_FK.S_NEXT] = self._next_control_s
        st[_FK.S_FWST] = _FC_CODES[firmware._state]
        st[_FK.S_FREQ] = firmware._frequency_ghz
        st[_FK.S_OVER] = firmware._overdraw_accum_s
        st[_FK.S_THROT] = firmware._throttle_until_s
        st[_FK.S_IDLEAC] = firmware._idle_accum_s
        st[_FK.S_LASTP] = firmware._last_power_w
        return st

    def _fc_unpack(self) -> None:
        """Write the kernel state vector back into the live objects."""
        st = self._fc_state
        firmware = self._firmware
        control = self._control
        self._sim_clock._now_s = st[_FK.S_NOW]
        self._thermal._warmth = st[_FK.S_WARMTH]
        control.energy_j = st[_FK.S_CEN]
        control.time_s = st[_FK.S_CTM]
        control.active_time_s = st[_FK.S_CAC]
        self._next_control_s = st[_FK.S_NEXT]
        firmware._state = _FC_STATES[int(st[_FK.S_FWST])]
        firmware._frequency_ghz = st[_FK.S_FREQ]
        firmware._overdraw_accum_s = st[_FK.S_OVER]
        firmware._throttle_until_s = st[_FK.S_THROT]
        firmware._idle_accum_s = st[_FK.S_IDLEAC]
        firmware._last_power_w = st[_FK.S_LASTP]

    def _fc_drain(self) -> None:
        """Flush recorded slices and firmware events out of the kernel buffers."""
        lens = self._fc_lens
        n_seg = int(lens[0])
        if n_seg and self._recording:
            self._buffer.append_block(self._fc_seg[:n_seg].copy())
        n_ev = int(lens[1])
        if n_ev:
            ev = self._fc_ev
            events = self._firmware._events
            for k in range(n_ev):
                events.append(
                    FirmwareEvent(
                        time_s=float(ev[k, 0]),
                        state=_FC_STATES[int(ev[k, 1])],
                        frequency_ghz=float(ev[k, 2]),
                        power_w=float(ev[k, 3]),
                    )
                )

    def _fc_grow(self, rc: int) -> None:
        """Double the overflowed output buffer (rc 1: segments, rc 2: events).

        The kernels carry no RNG and the wrapper re-packs fresh state before
        every attempt, so a retried call is deterministic.
        """
        if rc == 1:
            self._fc_seg = np.empty((2 * self._fc_seg.shape[0], 5))
        elif rc == 2:
            self._fc_ev = np.empty((2 * self._fc_ev.shape[0], 4))
        else:  # pragma: no cover - unknown code would be a kernel bug
            raise RuntimeError(f"compiled kernel returned unknown rc={rc}")

    def _fc_descriptor(self, descriptor: KernelActivityDescriptor) -> np.ndarray:
        """The descriptor flattened into the kernel ``desc`` layout, cached.

        Rides on :meth:`_descriptor_profile` (same power-model-keyed cache
        discipline): ``[base_duration, sensitivity, cold_mult,
        cold_executions, n_phases, then (cum, xcd, iod, hbm_warm, hbm_cold)
        per phase]``.
        """
        cached = descriptor.__dict__.get("_device_fc_profile")
        if cached is not None and cached[0] is self._power_model:
            return cached[1]
        table, _mid_row = self._descriptor_profile(descriptor)
        n = len(table)
        desc = np.empty(5 + 5 * n)
        desc[0] = descriptor.base_duration_s
        desc[1] = descriptor.frequency_sensitivity
        desc[2] = descriptor.cold_duration_multiplier
        desc[3] = float(descriptor.cold_executions)
        desc[4] = float(n)
        for i, row in enumerate(table):
            desc[5 + 5 * i : 10 + 5 * i] = row
        object.__setattr__(descriptor, "_device_fc_profile", (self._power_model, desc))
        return desc

    def _idle_compiled(self, duration_s: float) -> None:
        """Compiled idle path: one kernel call per span, no batching threshold.

        The single-slice shortcut (span entirely before the next control
        boundary -- launch latencies, inter-execution gaps, timestamp round
        trips) stays in Python: it is a handful of float operations, cheaper
        than packing state across the call boundary.  Everything else -- the
        per-period loop, firmware control steps, park transitions and the
        closed-form span relaxation -- runs inside the kernel.
        """
        if duration_s <= 1e-12:
            return
        thermal = self._thermal
        clock = self._sim_clock
        now = clock._now_s
        end = now + duration_s
        if end + 1e-12 < self._next_control_s:
            # Same arithmetic as the vectorized engine's single-slice branch.
            control = self._control
            if self._recording:
                idle_x, idle_i, idle_h = self._idle_power_xih
                self._record_extend((now, end, idle_x, idle_i, idle_h))
            control.energy_j += self._idle_total_w * duration_s
            control.time_s += duration_s
            clock._now_s = end
            alpha = 1.0 - exp(-duration_s / self._cool_tau_s)
            warmth = thermal._warmth
            warmth += (0.0 - warmth) * alpha
            thermal._warmth = min(max(warmth, 0.0), 1.0)
            return
        fc_idle = self._fc.idle
        record = 1 if self._recording else 0
        while True:
            st = self._fc_pack()
            rc = fc_idle(
                st, self._fc_params, duration_s, record,
                self._fc_seg, self._fc_ev, self._fc_lens,
            )
            if rc == 0:
                break
            self._fc_grow(rc)
        self._fc_unpack()
        self._fc_drain()

    def _execute_compiled(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None,
        jitter: float | None = None,
        build_result: bool = True,
    ) -> KernelExecutionResult | tuple[float, float]:
        """Compiled execution path: same RNG draws, slice loop in the kernel."""
        now = self._sim_clock._now_s

        # _consume_cache_state, inlined (identical to _execute_fast).
        state = self._cache_states.get(descriptor.name)
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        cold = state.consecutive_executions < descriptor.cold_executions

        if jitter is None:
            # ExecutionTimeVariationModel.draw_execution_jitter, inlined.
            execution_cv = descriptor.variation.execution_cv
            if execution_cv <= 0:
                jitter = 1.0
            else:
                jitter = float(self._rng.lognormal(mean=0.0, sigma=execution_cv))
                if jitter < ExecutionTimeVariationModel.MIN_FACTOR:
                    jitter = ExecutionTimeVariationModel.MIN_FACTOR
        time_factor = jitter if run_variation is None else run_variation.run_factor * jitter

        desc = self._fc_descriptor(descriptor)
        fc_execute = self._fc.execute
        record = 1 if self._recording else 0
        out8 = self._fc_out8
        while True:
            st = self._fc_pack()
            rc = fc_execute(
                st, self._fc_params, desc, time_factor, 1 if cold else 0,
                record, self._fc_seg, self._fc_ev, self._fc_lens, out8,
            )
            if rc == 0:
                break
            self._fc_grow(rc)
        self._fc_unpack()
        self._fc_drain()

        start_s = float(out8[0])
        end_s = float(out8[1])
        # _update_cache_state, inlined on the state fetched above.
        state.consecutive_executions += 1
        state.last_end_s = end_s
        if record:
            self._exec_log_extend(
                (start_s, end_s, out8[2], out8[3], out8[4], out8[5], out8[6], out8[7])
            )
            self._exec_log.names.append(descriptor.name)
        if not build_result:
            return start_s, end_s
        mean_power = ComponentPower.__new__(ComponentPower)
        fields = mean_power.__dict__
        fields["xcd_w"] = float(out8[5])
        fields["iod_w"] = float(out8[6])
        fields["hbm_w"] = float(out8[7])
        result = KernelExecutionResult.__new__(KernelExecutionResult)
        fields = result.__dict__
        fields["kernel_name"] = descriptor.name
        fields["start_s"] = start_s
        fields["end_s"] = end_s
        fields["cold_caches"] = cold
        fields["mean_frequency_ghz"] = float(out8[3])
        fields["energy_j"] = float(out8[4])
        fields["mean_power"] = mean_power
        return result

    def _sequence_compiled(
        self,
        descriptor: KernelActivityDescriptor,
        executions: int,
        variates: np.ndarray,
        run_variation: RunVariation | None,
        execution_cv: float,
        latency_mean: float,
        latency_jitter: float,
        error_std: float,
        gap_s: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One fused kernel call for a whole back-to-back launch sequence.

        ``variates`` is the launcher's batched ``standard_normal(4 * n)``
        draw (latency, jitter, two timestamp errors per execution, consumed
        in that order inside the kernel -- the identical stream the
        vectorized launch loop consumes).  Returns the host-observed
        ``(cpu_starts, cpu_ends)`` arrays; ground-truth rows land in the
        columnar execution log in bulk.
        """
        state = self._cache_states.get(descriptor.name)
        if state is None:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        desc = self._fc_descriptor(descriptor)
        if run_variation is None:
            has_rv = 0
            run_factor = 1.0
        else:
            has_rv = 1
            run_factor = run_variation.run_factor
        fc_sequence = self._fc.sequence
        record = 1 if self._recording else 0
        cache = self._fc_cache
        exec_rows = np.empty((executions, 8))
        cpu_starts = np.empty(executions)
        cpu_ends = np.empty(executions)
        while True:
            st = self._fc_pack()
            # The kernel applies the same retention expiry per execution the
            # scalar path applies on fetch, so seeding the raw state is exact.
            cache[0] = float(state.consecutive_executions)
            cache[1] = state.last_end_s
            rc = fc_sequence(
                st, self._fc_params, desc, cache, executions, variates,
                has_rv, run_factor, execution_cv,
                latency_mean, latency_jitter, error_std, gap_s,
                record, self._fc_seg, self._fc_ev, self._fc_lens,
                exec_rows, cpu_starts, cpu_ends,
            )
            if rc == 0:
                break
            self._fc_grow(rc)
        self._fc_unpack()
        self._fc_drain()
        state.consecutive_executions = int(cache[0])
        state.last_end_s = float(cache[1])
        if record:
            # Bulk-append the ground-truth rows: the kernel's row layout is
            # exactly the execution log's.
            self._exec_log.data.frombytes(exec_rows.tobytes())
            self._exec_log.names.extend([descriptor.name] * executions)
        return cpu_starts, cpu_ends

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _boundary_span(
        self, next_control: float, need: int
    ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Verified iterated-addition control-boundary lattice.

        Returns ``(lattice, diffs, idx)`` such that ``lattice[idx] ==
        next_control`` bit-exactly and ``lattice[idx + need]`` exists.  The
        lattice continues the controller's ``next_control += period``
        iteration (sequential ``np.add.accumulate`` carries the identical
        floats), so its entries ARE the boundaries the per-period loop would
        visit.  Two invariants are verified on every newly-built stretch and
        amortised across calls:

        * every forward difference is at least ``1e-9`` (no slice ever trips
          the per-period loop's minimum-step clamp, and the boundary-advance
          ``while`` adds exactly one period), and
        * every entry satisfies the slice-end collapse
          ``fl(prev + fl(next - prev)) == next`` -- the reason a naive
          ``np.arange`` grid would diverge from the iterated loop.

        Returns ``None`` when verification fails (the batched engine then
        falls back to the per-period loop).  Entries already passed are
        dropped once the cursor moves far enough, keeping memory bounded.
        """
        if self._lattice_broken:
            return None
        period = self._spec.dvfs.control_period_s
        lat = self._lattice
        idx = 0
        if lat is not None:
            idx = int(np.searchsorted(lat, next_control))
            if idx >= lat.shape[0] or lat[idx] != next_control:
                # The controller left the cached chain (e.g. a reseeded
                # device); rebuild from the current boundary.
                lat = None
                idx = 0
        if lat is None:
            size = max(1024, need + 2)
            lat = np.empty(size)
            lat[0] = next_control
            lat[1:] = period
            np.add.accumulate(lat, out=lat)
            diffs = np.empty(size - 1)
            np.subtract(lat[1:], lat[:-1], out=diffs)
            if float(diffs.min()) < 1e-9 or not np.array_equal(lat[:-1] + diffs, lat[1:]):
                self._lattice_broken = True
                self._lattice = None
                return None
            self._lattice = lat
            self._lattice_diffs = diffs
            return lat, diffs, 0
        if idx > 8192:
            # Slide the window: boundaries behind the controller are dead.
            lat = self._lattice = lat[idx:].copy()
            self._lattice_diffs = self._lattice_diffs[idx:].copy()
            idx = 0
        n = lat.shape[0]
        if idx + need >= n:
            new_n = max(2 * n, idx + need + 2)
            new = np.empty(new_n)
            new[:n] = lat
            new[n:] = period
            # Continue the iterated chain from the last cached boundary.
            np.add.accumulate(new[n - 1 :], out=new[n - 1 :])
            new_diffs = np.empty(new_n - 1)
            new_diffs[: n - 1] = self._lattice_diffs
            np.subtract(new[n:], new[n - 1 : -1], out=new_diffs[n - 1 :])
            tail = new_diffs[n - 1 :]
            if float(tail.min()) < 1e-9 or not np.array_equal(new[n - 1 : -1] + tail, new[n:]):
                self._lattice_broken = True
                self._lattice = None
                return None
            lat = self._lattice = new
            self._lattice_diffs = new_diffs
        return lat, self._lattice_diffs, idx

    def _maybe_step_firmware(self) -> None:
        now = self._sim_clock.now_s
        if now + 1e-12 < self._next_control_s:
            return
        mean_power = self._control.mean_power_w(self._idle_total_w)
        kernel_resident = self._control.mostly_active()
        self._firmware.step(now, self._control.time_s, mean_power, kernel_resident)
        self._control.reset()
        period = self._spec.dvfs.control_period_s
        while self._next_control_s <= now + 1e-12:
            self._next_control_s += period

    def _consume_cache_state(self, descriptor: KernelActivityDescriptor) -> bool:
        """Return whether this execution sees cold caches, updating bookkeeping."""
        state = self._cache_states.get(descriptor.name)
        now = self._sim_clock.now_s
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        return state.consecutive_executions < descriptor.cold_executions

    def _update_cache_state(self, descriptor: KernelActivityDescriptor, end_s: float) -> None:
        state = self._cache_states.setdefault(descriptor.name, _CacheState())
        state.consecutive_executions += 1
        state.last_end_s = end_s

    def reset_cache_state(self) -> None:
        """Forget all cache warm-up state (as after a long idle period)."""
        self._cache_states.clear()


__all__ = ["PowerSegment", "SegmentArray", "KernelExecutionResult", "SimulatedGPU"]
