"""The simulated GPU device.

:class:`SimulatedGPU` is the stand-in for the MI300X used by the paper.  It
executes kernels described by :class:`~repro.gpu.activity.KernelActivityDescriptor`
objects against simulated time, while:

* stepping the DVFS / power-cap firmware every control period,
* stepping the thermal (warmth) model,
* tracking per-kernel cache warmth (cold first executions),
* applying run-to-run and execution-to-execution time variation, and
* recording an instantaneous power timeline as a list of
  :class:`PowerSegment` objects that the telemetry layer averages into the
  1 ms power-logger samples the FinGraV methodology consumes.

The device deliberately exposes *two* views of time: the CPU clock (what the
host observes, used for kernel start/end instrumentation) and the GPU
timestamp counter (what tags power-logger samples).  Only the simulator knows
the exact relationship between them -- the methodology has to reconstruct it,
exactly as on real hardware (paper challenge C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .activity import KernelActivityDescriptor
from .clocks import CPUClock, GPUTimestampCounter, SimulationClock, TimestampReadResult
from .dvfs import FirmwareConfig, FirmwareEvent, PowerManagementFirmware
from .power_model import ComponentPower, OperatingPoint, PowerModel
from .spec import GPUSpec, mi300x_spec
from .thermal import ThermalModel, ThermalSpec
from .variation import ExecutionTimeVariationModel, RunVariation


@dataclass(frozen=True)
class PowerSegment:
    """A span of simulated time with constant per-component power."""

    start_s: float
    end_s: float
    power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.power.total_w * self.duration_s


@dataclass(frozen=True)
class KernelExecutionResult:
    """Ground-truth outcome of one kernel execution on the device."""

    kernel_name: str
    start_s: float
    end_s: float
    cold_caches: bool
    mean_frequency_ghz: float
    energy_j: float
    mean_power: ComponentPower

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class _CacheState:
    """Per-kernel cache warm-up bookkeeping."""

    consecutive_executions: int = 0
    last_end_s: float = -1.0


@dataclass
class _ControlAccumulator:
    """Energy/time accumulated since the last firmware control step."""

    energy_j: float = 0.0
    time_s: float = 0.0
    active_time_s: float = 0.0

    def add(self, power_w: float, dt_s: float, active: bool) -> None:
        self.energy_j += power_w * dt_s
        self.time_s += dt_s
        if active:
            self.active_time_s += dt_s

    def mean_power_w(self, idle_power_w: float) -> float:
        if self.time_s <= 0:
            return idle_power_w
        return self.energy_j / self.time_s

    def mostly_active(self) -> bool:
        return self.time_s > 0 and self.active_time_s >= 0.5 * self.time_s

    def reset(self) -> None:
        self.energy_j = 0.0
        self.time_s = 0.0
        self.active_time_s = 0.0


class SimulatedGPU:
    """A single simulated MI300X-class GPU."""

    #: Idle time after which a kernel's working set is considered evicted
    #: from the on-chip caches (seconds).
    CACHE_RETENTION_S = 4e-3

    def __init__(
        self,
        spec: GPUSpec | None = None,
        seed: int = 0,
        thermal_spec: ThermalSpec | None = None,
        firmware_config: FirmwareConfig | None = None,
    ) -> None:
        self._spec = spec or mi300x_spec()
        self._spec.validate()
        self._rng = np.random.default_rng(seed)
        self._sim_clock = SimulationClock()
        self._cpu_clock = CPUClock(self._sim_clock)
        self._timestamp_counter = GPUTimestampCounter(self._spec.clocks, self._sim_clock, self._rng)
        self._power_model = PowerModel(self._spec)
        self._firmware = PowerManagementFirmware(
            self._spec.dvfs, self._spec.power, firmware_config
        )
        self._thermal = ThermalModel(thermal_spec)
        self._variation = ExecutionTimeVariationModel(self._rng)

        self._recording = False
        self._segments: list[PowerSegment] = []
        self._cache_states: dict[str, _CacheState] = {}
        self._control = _ControlAccumulator()
        self._next_control_s = self._spec.dvfs.control_period_s
        self._executions: list[KernelExecutionResult] = []

    # ------------------------------------------------------------------ #
    # Introspection.
    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> GPUSpec:
        return self._spec

    @property
    def power_model(self) -> PowerModel:
        return self._power_model

    @property
    def cpu_clock(self) -> CPUClock:
        return self._cpu_clock

    @property
    def timestamp_counter(self) -> GPUTimestampCounter:
        return self._timestamp_counter

    @property
    def firmware(self) -> PowerManagementFirmware:
        return self._firmware

    @property
    def thermal(self) -> ThermalModel:
        return self._thermal

    @property
    def variation_model(self) -> ExecutionTimeVariationModel:
        return self._variation

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    def now_s(self) -> float:
        """Current CPU/simulated time in seconds."""
        return self._sim_clock.now_s

    def firmware_events(self) -> list[FirmwareEvent]:
        return self._firmware.events

    def executions(self) -> list[KernelExecutionResult]:
        """Ground-truth execution history since recording started."""
        return list(self._executions)

    # ------------------------------------------------------------------ #
    # Power-trace recording.
    # ------------------------------------------------------------------ #
    def start_recording(self) -> float:
        """Begin recording the instantaneous power timeline; returns start time."""
        self._recording = True
        self._segments = []
        self._executions = []
        return self._sim_clock.now_s

    def stop_recording(self) -> list[PowerSegment]:
        """Stop recording and return the captured power segments."""
        self._recording = False
        segments = self._segments
        self._segments = []
        return segments

    @property
    def is_recording(self) -> bool:
        return self._recording

    def _record(self, start_s: float, end_s: float, power: ComponentPower) -> None:
        if self._recording and end_s > start_s:
            self._segments.append(PowerSegment(start_s=start_s, end_s=end_s, power=power))

    # ------------------------------------------------------------------ #
    # Host-visible operations.
    # ------------------------------------------------------------------ #
    def read_timestamp(self) -> TimestampReadResult:
        """Read the GPU timestamp counter from the host (advances CPU time).

        The counter value captured corresponds to the moment the read reaches
        the GPU (about one way into the round trip); the elapsed round trip is
        spent at idle power so telemetry, thermal state and the firmware all
        see the elapsed time consistently.
        """
        one_way = self._timestamp_counter.sample_read_delay_s()
        return_way = self._timestamp_counter.sample_read_delay_s()
        capture_time_s = self._sim_clock.now_s + one_way
        ticks = self._timestamp_counter.ticks_at(capture_time_s)
        self.idle(one_way + return_way)
        return TimestampReadResult(
            gpu_ticks=ticks,
            cpu_time_after_s=self._sim_clock.now_s,
            round_trip_s=one_way + return_way,
        )

    def idle(self, duration_s: float) -> None:
        """Let the device sit idle for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ValueError("idle duration cannot be negative")
        remaining = duration_s
        idle_power = self._power_model.idle_power()
        while remaining > 1e-12:
            now = self._sim_clock.now_s
            dt = min(remaining, max(self._next_control_s - now, 1e-9))
            self._record(now, now + dt, idle_power)
            self._control.add(idle_power.total_w, dt, active=False)
            self._thermal.step(dt, active=False)
            self._sim_clock.advance(dt)
            remaining -= dt
            self._maybe_step_firmware()

    def park(self, duration_s: float = 12e-3) -> None:
        """Idle long enough for clocks to drop, caches to expire and the die to cool."""
        self.idle(duration_s)

    def execute_kernel(
        self,
        descriptor: KernelActivityDescriptor,
        run_variation: RunVariation | None = None,
    ) -> KernelExecutionResult:
        """Execute one kernel to completion and return its ground-truth timing.

        The execution is advanced in slices bounded by the firmware control
        period so that clock changes take effect mid-execution for kernels
        longer than the control period (the mechanism behind the power
        excursions and throttling of the largest GEMMs).
        """
        cold = self._consume_cache_state(descriptor)
        jitter = self._variation.draw_execution_jitter(descriptor.variation)
        time_factor = jitter if run_variation is None else run_variation.execution_factor(jitter)

        start_s = self._sim_clock.now_s
        self._firmware.notify_kernel_arrival(start_s)
        work_remaining = 1.0
        energy_j = 0.0
        component_energy = np.zeros(3)
        freq_time_weighted = 0.0

        while work_remaining > 1e-9:
            now = self._sim_clock.now_s
            frequency = self._firmware.frequency_ghz
            duration_full = (
                descriptor.duration_at(
                    frequency, self._spec.dvfs.nominal_frequency_ghz, cold=cold
                )
                * time_factor
            )
            dt_to_control = max(self._next_control_s - now, 1e-9)
            dt = min(dt_to_control, work_remaining * duration_full)
            frac_done = 1.0 - work_remaining
            frac_mid = frac_done + 0.5 * dt / duration_full
            phase = descriptor.phase_at(frac_mid)
            point = OperatingPoint(
                frequency_ghz=frequency, warmth=self._thermal.warmth, cold_caches=cold
            )
            power = self._power_model.kernel_power(descriptor, point, phase)

            self._record(now, now + dt, power)
            self._control.add(power.total_w, dt, active=True)
            self._thermal.step(dt, active=True)
            self._sim_clock.advance(dt)
            energy_j += power.total_w * dt
            component_energy += np.array([power.xcd_w, power.iod_w, power.hbm_w]) * dt
            freq_time_weighted += frequency * dt
            work_remaining -= dt / duration_full
            self._maybe_step_firmware()

        end_s = self._sim_clock.now_s
        duration = end_s - start_s
        self._update_cache_state(descriptor, end_s)
        mean_power = ComponentPower(
            xcd_w=float(component_energy[0] / duration),
            iod_w=float(component_energy[1] / duration),
            hbm_w=float(component_energy[2] / duration),
        )
        result = KernelExecutionResult(
            kernel_name=descriptor.name,
            start_s=start_s,
            end_s=end_s,
            cold_caches=cold,
            mean_frequency_ghz=freq_time_weighted / duration,
            energy_j=energy_j,
            mean_power=mean_power,
        )
        if self._recording:
            self._executions.append(result)
        return result

    def draw_run_variation(self, descriptor: KernelActivityDescriptor) -> RunVariation:
        """Draw the per-run variation factors for ``descriptor``."""
        return self._variation.draw_run(descriptor.variation)

    # ------------------------------------------------------------------ #
    # Internals.
    # ------------------------------------------------------------------ #
    def _maybe_step_firmware(self) -> None:
        now = self._sim_clock.now_s
        if now + 1e-12 < self._next_control_s:
            return
        idle_total = self._power_model.idle_power().total_w
        mean_power = self._control.mean_power_w(idle_total)
        kernel_resident = self._control.mostly_active()
        self._firmware.step(now, self._control.time_s, mean_power, kernel_resident)
        self._control.reset()
        period = self._spec.dvfs.control_period_s
        while self._next_control_s <= now + 1e-12:
            self._next_control_s += period

    def _consume_cache_state(self, descriptor: KernelActivityDescriptor) -> bool:
        """Return whether this execution sees cold caches, updating bookkeeping."""
        state = self._cache_states.get(descriptor.name)
        now = self._sim_clock.now_s
        if state is None or (now - state.last_end_s) > self.CACHE_RETENTION_S:
            state = _CacheState()
            self._cache_states[descriptor.name] = state
        return state.consecutive_executions < descriptor.cold_executions

    def _update_cache_state(self, descriptor: KernelActivityDescriptor, end_s: float) -> None:
        state = self._cache_states.setdefault(descriptor.name, _CacheState())
        state.consecutive_executions += 1
        state.last_end_s = end_s

    def reset_cache_state(self) -> None:
        """Forget all cache warm-up state (as after a long idle period)."""
        self._cache_states.clear()


__all__ = ["PowerSegment", "KernelExecutionResult", "SimulatedGPU"]
