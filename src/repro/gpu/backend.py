"""Simulated-MI300X implementation of the FinGraV profiling backend.

:class:`SimulatedDeviceBackend` is the glue between the methodology
(:mod:`repro.core`, written against the :class:`~repro.core.backend.ProfilingBackend`
protocol) and the simulator (:mod:`repro.gpu`).  It accepts kernel handles of
two kinds -- an :class:`~repro.kernels.base.AIKernel` or a raw
:class:`~repro.gpu.activity.KernelActivityDescriptor` -- and performs the
CPU-side instrumentation the paper describes (Section IV-B step 2): starting
and stopping the power logger around the run, reading the GPU timestamp before
the executions, timing kernel start/end from the host, and injecting the
caller-requested random delay before the executions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.records import (
    DelayCalibration,
    ExecutionArena,
    ExecutionTiming,
    PowerReading,
    PowerReadings,
    RunRecord,
    TimestampAnchor,
)
from . import fastcore
from .activity import KernelActivityDescriptor
from .device import SimulatedGPU
from .power_model import ComponentPower
from .scheduler import KernelLauncher, LaunchConfig, ObservedExecution
from .spec import GPUSpec, mi300x_spec
from .telemetry import (
    AveragingPowerLogger,
    CoarsePowerSampler,
    InstantaneousPowerSampler,
    TelemetrySample,
)


@dataclass(frozen=True)
class BackendConfig:
    """Tunables of the simulated backend's run structure."""

    #: Which sampler feeds the power readings: the 1 ms averaging logger
    #: ("averaging"), the amd-smi-like coarse sampler ("coarse") or the
    #: idealised instantaneous sampler ("instantaneous").
    sampler: str = "averaging"
    #: Idle time at the start of every run before the timestamp anchor read,
    #: expressed in sampler periods (gives the logger a clean idle baseline).
    pre_padding_periods: float = 1.5
    #: Idle time appended after the last execution, in sampler periods.
    post_padding_periods: float = 1.3
    #: Idle time between runs, long enough for clocks to park, caches to
    #: expire and the die to cool (the paper starts each run from idle).
    park_s: float = 8e-3
    #: Relative (multiplicative) noise on reported power readings.
    reading_noise: float = 0.003
    #: Period of the instantaneous sampler when selected.
    instantaneous_period_s: float = 100e-6
    #: Deprecated engine pin: ``True`` -> ``engine="vectorized"``, ``False``
    #: -> ``engine="reference"``.  Kept for existing callers; leave ``None``
    #: (and use ``engine``) in new code.  Only honoured when the backend
    #: constructs its own device; an explicitly passed device keeps its
    #: engine.
    vectorized: bool | None = None
    #: Time-advance engine for a backend-constructed device: ``"compiled"``,
    #: ``"vectorized"``, ``"reference"`` or ``"auto"``/``None`` (compiled
    #: when available, else vectorized; overridable via the ``REPRO_ENGINE``
    #: environment variable -- see docs/engines.md).
    engine: str | None = None

    def validate(self) -> None:
        if self.sampler not in ("averaging", "coarse", "instantaneous"):
            raise ValueError(f"unknown sampler kind {self.sampler!r}")
        if self.pre_padding_periods < 0 or self.post_padding_periods < 0:
            raise ValueError("padding cannot be negative")
        if self.park_s < 0:
            raise ValueError("park time cannot be negative")
        if not 0 <= self.reading_noise < 0.2:
            raise ValueError("reading noise must be a small non-negative fraction")
        if self.instantaneous_period_s <= 0:
            raise ValueError("instantaneous sampler period must be positive")
        if self.engine is not None and self.vectorized is not None:
            raise ValueError(
                "pass either engine or the deprecated vectorized flag, not both"
            )
        if self.engine is not None and self.engine not in ("auto", *fastcore.VALID_ENGINES):
            raise ValueError(
                f"unknown engine {self.engine!r}: valid engines are "
                "'compiled', 'vectorized' and 'reference' "
                "(or 'auto'/None for auto-selection)"
            )

    def resolved_engine(self) -> str:
        """The concrete engine a backend-constructed device will run."""
        return fastcore.resolve_engine(self.engine, self.vectorized)


class SimulatedDeviceBackend:
    """A :class:`~repro.core.backend.ProfilingBackend` over the simulated GPU."""

    #: Distinct kernel handles cached before the descriptor cache is dropped.
    _DESCRIPTOR_CACHE_LIMIT = 128

    def __init__(
        self,
        device: SimulatedGPU | None = None,
        spec: GPUSpec | None = None,
        seed: int = 0,
        config: BackendConfig | None = None,
        launch_config: LaunchConfig | None = None,
    ) -> None:
        self._config = config or BackendConfig()
        self._config.validate()
        self._device = device or SimulatedGPU(
            spec or mi300x_spec(), seed=seed, engine=self._config.resolved_engine()
        )
        self._descriptor_cache: dict[int, tuple[object, KernelActivityDescriptor]] = {}
        self._arena = ExecutionArena()
        self._launcher = KernelLauncher(self._device, launch_config)
        self._noise_rng = np.random.default_rng(seed + 7919)
        idle_power = self._device.power_model.idle_power()
        counter = self._device.timestamp_counter
        telemetry = self._device.spec.telemetry
        if self._config.sampler == "averaging":
            self._sampler = AveragingPowerLogger(
                counter, telemetry.averaging_period_s, idle_power
            )
        elif self._config.sampler == "coarse":
            self._sampler = CoarsePowerSampler(
                counter, idle_power, period_s=telemetry.coarse_period_s
            )
        else:
            self._sampler = InstantaneousPowerSampler(
                counter, self._config.instantaneous_period_s, idle_power
            )

    # ------------------------------------------------------------------ #
    # Protocol properties.
    # ------------------------------------------------------------------ #
    @property
    def device(self) -> SimulatedGPU:
        return self._device

    @property
    def config(self) -> BackendConfig:
        return self._config

    @property
    def power_sample_period_s(self) -> float:
        return self._sampler.period_s

    @property
    def counter_frequency_hz(self) -> float:
        return self._device.timestamp_counter.frequency_hz

    # ------------------------------------------------------------------ #
    # Kernel handles.
    # ------------------------------------------------------------------ #
    def _descriptor_of(self, kernel: object) -> KernelActivityDescriptor:
        if isinstance(kernel, KernelActivityDescriptor):
            return kernel
        if self._device.vectorized:
            # activity_descriptor() is a pure function of the kernel and the
            # device spec, but deriving it redoes the roofline/memory-traffic
            # math; cache it per kernel handle for the run loop.  The cached
            # strong reference keeps the id stable; the cache is bounded so a
            # long-lived backend profiling many kernels cannot grow (or pin
            # handles) without limit.
            cached = self._descriptor_cache.get(id(kernel))  # statics: allow[identity-hash] -- in-process cache; the pinned strong ref keeps the id stable
            if cached is not None and cached[0] is kernel:
                return cached[1]
        descriptor = getattr(kernel, "activity_descriptor", None)
        if callable(descriptor):
            derived = descriptor(self._device.spec)
            if self._device.vectorized:
                if len(self._descriptor_cache) >= self._DESCRIPTOR_CACHE_LIMIT:
                    self._descriptor_cache.clear()
                self._descriptor_cache[id(kernel)] = (kernel, derived)  # statics: allow[identity-hash] -- cache key never escapes the process
            return derived
        raise TypeError(
            "kernel handle must be a KernelActivityDescriptor or provide "
            f"an activity_descriptor() method, got {type(kernel)!r}"
        )

    def kernel_name(self, kernel: object) -> str:
        return self._descriptor_of(kernel).name

    # ------------------------------------------------------------------ #
    # Protocol operations.
    # ------------------------------------------------------------------ #
    def time_kernel(self, kernel: object, executions: int) -> list[float]:
        """Host-timed back-to-back executions from an idle device (step 1)."""
        if executions <= 0:
            raise ValueError("need at least one execution")
        descriptor = self._descriptor_of(kernel)
        self._device.park(self._config.park_s)
        observed = self._launcher.launch_sequence(
            descriptor, executions, run_variation=self._device.draw_run_variation(descriptor)
        )
        return [execution.cpu_duration_s for execution in observed]

    def calibrate_read_delay(self, samples: int = 32) -> DelayCalibration:
        """Benchmark the GPU timestamp read round trip (step 2)."""
        if samples <= 0:
            raise ValueError("need at least one calibration sample")
        round_trips = [self._device.read_timestamp().round_trip_s for _ in range(samples)]
        return DelayCalibration(
            mean_round_trip_s=float(np.mean(round_trips)),
            std_round_trip_s=float(np.std(round_trips)),
            samples=samples,
        )

    def run(
        self,
        kernel: object,
        executions: int,
        pre_delay_s: float,
        run_index: int = 0,
        preceding: tuple[tuple[object, int], ...] | list[tuple[object, int]] = (),
    ) -> RunRecord:
        """One instrumented run (steps 2 and 5 of the methodology)."""
        if executions <= 0:
            raise ValueError("need at least one execution per run")
        if pre_delay_s < 0:
            raise ValueError("the random pre-delay cannot be negative")
        descriptor = self._descriptor_of(kernel)
        device = self._device
        period = self._sampler.period_s

        device.park(self._config.park_s)
        logger_start_s = device.start_recording()
        device.idle(self._config.pre_padding_periods * period)

        anchor_read = device.read_timestamp()
        anchor = TimestampAnchor(
            gpu_ticks=anchor_read.gpu_ticks,
            cpu_time_after_s=anchor_read.cpu_time_after_s,
            round_trip_s=anchor_read.round_trip_s,
        )

        if pre_delay_s > 0:
            device.idle(pre_delay_s)

        if device.vectorized:
            # Hot path: launch sequences stage their timings in the backend's
            # execution arena (no per-execution objects) and readings come
            # straight from columnar samples -- identical values to the
            # branch below; the record adopts both as lazy views.
            arena = self._arena
            arena.begin()
            for preceding_kernel, preceding_count in preceding:
                preceding_descriptor = self._descriptor_of(preceding_kernel)
                variation = device.draw_run_variation(preceding_descriptor)
                self._launcher.sequence_into(
                    arena, preceding_descriptor, preceding_count, run_variation=variation
                )
            preceding_timing = arena.take()

            run_variation = device.draw_run_variation(descriptor)
            self._launcher.sequence_into(
                arena, descriptor, executions, run_variation=run_variation
            )
            executions_timing = arena.take()

            device.idle(self._config.post_padding_periods * period)
            segments = device.stop_recording()
            logger_stop_s = device.now_s()
            readings = self._readings_fast(
                *self._sampler.sample_columns(segments, logger_start_s, logger_stop_s)
            )
        else:
            preceding_observed: list[ObservedExecution] = []
            for preceding_kernel, preceding_count in preceding:
                preceding_descriptor = self._descriptor_of(preceding_kernel)
                variation = device.draw_run_variation(preceding_descriptor)
                preceding_observed.extend(
                    self._launcher.launch_sequence(
                        preceding_descriptor, preceding_count, run_variation=variation
                    )
                )

            run_variation = device.draw_run_variation(descriptor)
            observed = self._launcher.launch_sequence(
                descriptor, executions, run_variation=run_variation
            )

            device.idle(self._config.post_padding_periods * period)
            segments = device.stop_recording()
            logger_stop_s = device.now_s()
            samples = self._sampler.samples(segments, logger_start_s, logger_stop_s)
            readings = tuple(self._reading_from(sample) for sample in samples)
            executions_timing = tuple(self._timing_from(obs) for obs in observed)
            preceding_timing = tuple(self._timing_from(obs) for obs in preceding_observed)
        return RunRecord(
            run_index=run_index,
            kernel_name=descriptor.name,
            readings=readings,
            executions=executions_timing,
            anchor=anchor,
            logger_period_s=period,
            counter_frequency_hz=self.counter_frequency_hz,
            pre_delay_s=pre_delay_s,
            preceding_executions=preceding_timing,
            metadata={
                "logger_start_cpu_s": logger_start_s,
                "logger_stop_cpu_s": logger_stop_s,
                "sampler": self._config.sampler,
                "run_variation_outlier": run_variation.is_outlier,
            },
        )

    # ------------------------------------------------------------------ #
    # Conversions.
    # ------------------------------------------------------------------ #
    def _noise(self) -> float:
        if self._config.reading_noise <= 0:
            return 1.0
        return float(self._noise_rng.normal(1.0, self._config.reading_noise))

    def _readings_fast(self, ticks, times, powers, window_s) -> PowerReadings:
        """Build the readings of a run straight from columnar samples.

        Values are identical to :meth:`_reading_from` over
        :meth:`~repro.gpu.telemetry.AveragingPowerLogger.samples` -- the noise
        draws consume the same RNG stream (a batched ``normal`` draw is
        bit-identical to per-reading draws) and the same float arithmetic is
        applied element-wise -- but the whole run's readings are four array
        operations wrapped in a lazy :class:`PowerReadings` view: no
        ``TelemetrySample`` and no per-reading ``PowerReading`` objects.
        """
        del times  # window-end CPU times are reconstructed by the profiler
        n = ticks.shape[0]
        powers = np.asarray(powers, dtype=float)
        noise_std = self._config.reading_noise
        totals = powers[:, 0] + powers[:, 1] + powers[:, 2]
        if noise_std > 0 and n:
            noise = self._noise_rng.normal(1.0, noise_std, size=n)
            components = powers * noise[:, None]
            totals = totals * noise
        else:
            components = powers
        return PowerReadings(
            gpu_timestamp_ticks=ticks,
            window_s=window_s,
            total_w=totals,
            component_names=("xcd", "iod", "hbm"),
            components_w=components,
        )

    def _reading_from(self, sample: TelemetrySample) -> PowerReading:
        noise = self._noise()
        power: ComponentPower = sample.power
        return PowerReading(
            gpu_timestamp_ticks=sample.gpu_timestamp_ticks,
            window_s=sample.window_s,
            total_w=power.total_w * noise,
            components={
                "xcd": power.xcd_w * noise,
                "iod": power.iod_w * noise,
                "hbm": power.hbm_w * noise,
            },
        )

    @staticmethod
    def _timing_from(observed: ObservedExecution) -> ExecutionTiming:
        return ExecutionTiming(
            index=observed.execution_index,
            cpu_start_s=observed.cpu_start_s,
            cpu_end_s=observed.cpu_end_s,
            kernel_name=observed.kernel_name,
        )



__all__ = ["BackendConfig", "SimulatedDeviceBackend"]
