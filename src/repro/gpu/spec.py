"""Hardware specification of the simulated GPU.

The reproduction targets an AMD Instinct(tm) MI300X-like device (paper
Section II-A).  The figures below follow the public CDNA3 white paper and the
numbers quoted in the paper:

* chiplet organisation: 8 accelerator complex dies (XCD), stacked in pairs on
  4 I/O dies (IOD),
* 38 active compute units (CU) per XCD, 304 CUs total,
* 4 MB L2 per XCD (32 MB total), 256 MB memory-side Infinity Cache (LLC) on
  the IODs,
* 8 HBM stacks, 24 GB each (192 GB total), 5.3 TB/s aggregate bandwidth,
* 8-GPU "Infinity Platform" node with a fully-connected topology and
  64 GB/s unidirectional bandwidth per Infinity Fabric link.

All power figures are *relative* model parameters, not silicon measurements --
the paper itself only reports relative power.  They are chosen so that the
component-level behaviours the paper reports (XCD-dominated compute kernels,
IOD-heavy memory/communication kernels, power-cap throttling of the largest
GEMMs) emerge from the model rather than being hard-coded per kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class XCDSpec:
    """Specification of one accelerator complex die (XCD)."""

    compute_units: int = 38
    l2_capacity_bytes: int = 4 * 1024 * 1024
    #: Peak matrix (MFMA) throughput of one XCD in FLOP/s at the nominal clock.
    peak_matrix_flops: float = 1307e12 / 8
    #: Peak vector (non-matrix) throughput of one XCD in FLOP/s.
    peak_vector_flops: float = 163e12 / 8

    @property
    def l2_capacity_mib(self) -> float:
        return self.l2_capacity_bytes / (1024 * 1024)


@dataclass(frozen=True)
class IODSpec:
    """Specification of one I/O die (IOD)."""

    llc_capacity_bytes: int = 64 * 1024 * 1024
    #: Peak Infinity-Cache bandwidth served by one IOD (bytes/s).
    peak_llc_bandwidth: float = 17.2e12 / 4
    #: Peak fabric (inter-GPU) bandwidth routed through one IOD (bytes/s).
    peak_fabric_bandwidth: float = 7 * 64e9 / 4

    @property
    def llc_capacity_mib(self) -> float:
        return self.llc_capacity_bytes / (1024 * 1024)


@dataclass(frozen=True)
class HBMSpec:
    """Specification of one HBM stack."""

    capacity_bytes: int = 24 * 1024 ** 3
    #: Peak bandwidth of one stack in bytes/s.
    peak_bandwidth: float = 5.3e12 / 8

    @property
    def capacity_gib(self) -> float:
        return self.capacity_bytes / 1024 ** 3


@dataclass(frozen=True)
class PowerBudget:
    """Idle and peak-dynamic power of each component class (watts, relative).

    ``xcd_activity_floor`` models the non-proportional part of XCD power: as
    soon as a kernel occupies the CUs, clock trees, sequencers and the LDS
    burn a large fraction of peak XCD dynamic power regardless of how many
    FLOPs are actually retired.  This is what produces the paper's takeaway #4
    (compute-light and compute-heavy kernels show similar XCD power).
    """

    board_limit_w: float = 620.0
    #: Total idle power split per component class.
    xcd_idle_w: float = 55.0
    iod_idle_w: float = 35.0
    hbm_idle_w: float = 25.0
    #: Peak *dynamic* power (on top of idle) at nominal frequency/voltage.
    xcd_dynamic_w: float = 490.0
    iod_dynamic_w: float = 100.0
    hbm_dynamic_w: float = 90.0
    #: Fraction of peak XCD dynamic power burned merely by occupying the CUs
    #: with an issue-active wavefront (matrix pipelines clock-gated or not).
    xcd_activity_floor: float = 0.52
    #: Same floor for kernels that keep CUs mostly stalled on memory
    #: (GEMV-style): wavefronts resident but little issue activity.
    xcd_stalled_floor: float = 0.22

    @property
    def idle_total_w(self) -> float:
        return self.xcd_idle_w + self.iod_idle_w + self.hbm_idle_w

    @property
    def peak_total_w(self) -> float:
        return (
            self.idle_total_w
            + self.xcd_dynamic_w
            + self.iod_dynamic_w
            + self.hbm_dynamic_w
        )


@dataclass(frozen=True)
class DVFSSpec:
    """Frequency/voltage operating points of the simulated GPU.

    The firmware boosts to ``boost_frequency_ghz`` when a kernel arrives from
    idle; if total power exceeds ``PowerBudget.board_limit_w`` it throttles
    toward ``sustained_frequency_ghz`` (paper Section V-C1, Figure 6).
    """

    idle_frequency_ghz: float = 0.8
    nominal_frequency_ghz: float = 2.1
    boost_frequency_ghz: float = 2.25
    sustained_frequency_ghz: float = 1.9
    #: Dynamic power scales ~ f * V^2; we fold the voltage curve into a single
    #: exponent so that power ~ (f / f_nominal) ** power_exponent.
    power_exponent: float = 2.4
    #: Time constant of the firmware power-management loop (seconds).
    control_period_s: float = 250e-6


@dataclass(frozen=True)
class ClockSpec:
    """Clock-domain parameters (paper challenge C2 / solution S2)."""

    #: GPU timestamp-counter frequency in Hz (ticks of the free-running
    #: counter readable from the host).
    timestamp_counter_hz: float = 100e6
    #: Offset of the GPU counter epoch relative to the CPU monotonic epoch
    #: (seconds).  Arbitrary and unknown to the profiler.
    epoch_offset_s: float = 12.734251
    #: Relative drift of the GPU clock vs the CPU clock (parts-per-million).
    drift_ppm: float = 0.0
    #: Mean one-way delay of reading the GPU timestamp from the CPU (seconds).
    timestamp_read_delay_s: float = 12e-6
    #: Jitter (std-dev) of the timestamp read delay (seconds).
    timestamp_read_jitter_s: float = 1.5e-6


@dataclass(frozen=True)
class TelemetrySpec:
    """Power telemetry available on the simulated GPU."""

    #: Averaging window / reporting period of the on-GPU power logger
    #: (seconds).  The paper's internal logger averages over 1 ms.
    averaging_period_s: float = 1e-3
    #: Reporting period of the external (amd-smi-like) coarse sampler.
    coarse_period_s: float = 20e-3
    #: Internal integration step used when synthesising instantaneous power.
    integration_step_s: float = 5e-6


@dataclass(frozen=True)
class GPUSpec:
    """Full specification of one simulated GPU."""

    name: str = "Simulated-MI300X"
    num_xcds: int = 8
    num_iods: int = 4
    num_hbm_stacks: int = 8
    xcd: XCDSpec = field(default_factory=XCDSpec)
    iod: IODSpec = field(default_factory=IODSpec)
    hbm: HBMSpec = field(default_factory=HBMSpec)
    power: PowerBudget = field(default_factory=PowerBudget)
    dvfs: DVFSSpec = field(default_factory=DVFSSpec)
    clocks: ClockSpec = field(default_factory=ClockSpec)
    telemetry: TelemetrySpec = field(default_factory=TelemetrySpec)

    # ------------------------------------------------------------------ #
    # Aggregate, whole-GPU quantities.
    # ------------------------------------------------------------------ #
    @property
    def total_compute_units(self) -> int:
        return self.num_xcds * self.xcd.compute_units

    @property
    def peak_matrix_flops(self) -> float:
        """Peak matrix-engine throughput of the whole GPU (FLOP/s)."""
        return self.num_xcds * self.xcd.peak_matrix_flops

    @property
    def peak_vector_flops(self) -> float:
        """Peak vector throughput of the whole GPU (FLOP/s)."""
        return self.num_xcds * self.xcd.peak_vector_flops

    @property
    def peak_hbm_bandwidth(self) -> float:
        """Aggregate HBM bandwidth (bytes/s)."""
        return self.num_hbm_stacks * self.hbm.peak_bandwidth

    @property
    def peak_llc_bandwidth(self) -> float:
        """Aggregate Infinity-Cache bandwidth (bytes/s)."""
        return self.num_iods * self.iod.peak_llc_bandwidth

    @property
    def llc_capacity_bytes(self) -> int:
        return self.num_iods * self.iod.llc_capacity_bytes

    @property
    def l2_capacity_bytes(self) -> int:
        return self.num_xcds * self.xcd.l2_capacity_bytes

    @property
    def hbm_capacity_bytes(self) -> int:
        return self.num_hbm_stacks * self.hbm.capacity_bytes

    @property
    def machine_op_to_byte(self) -> float:
        """Machine balance: peak matrix FLOP/s divided by peak HBM B/s.

        The paper classifies a kernel as compute-bound when its algorithmic
        op:byte ratio exceeds this value (Section V-A).
        """
        return self.peak_matrix_flops / self.peak_hbm_bandwidth

    def validate(self) -> None:
        """Raise ``ValueError`` if the specification is internally inconsistent."""
        if self.num_xcds <= 0 or self.num_iods <= 0 or self.num_hbm_stacks <= 0:
            raise ValueError("component counts must be positive")
        if self.num_xcds % self.num_iods != 0:
            raise ValueError(
                "XCDs are stacked in equal groups on IODs; "
                f"{self.num_xcds} XCDs cannot be divided over {self.num_iods} IODs"
            )
        if self.power.board_limit_w <= self.power.idle_total_w:
            raise ValueError("board power limit must exceed idle power")
        if self.telemetry.integration_step_s >= self.telemetry.averaging_period_s:
            raise ValueError("integration step must be finer than averaging period")
        if self.dvfs.sustained_frequency_ghz > self.dvfs.boost_frequency_ghz:
            raise ValueError("sustained frequency cannot exceed boost frequency")


@dataclass(frozen=True)
class LinkSpec:
    """One Infinity-Fabric link between two GPUs."""

    bandwidth_bytes_per_s: float = 64e9
    latency_s: float = 1.5e-6


@dataclass(frozen=True)
class PlatformSpec:
    """An 8-GPU Infinity-Platform node (paper Section II-A)."""

    num_gpus: int = 8
    gpu: GPUSpec = field(default_factory=GPUSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    #: Fixed software/launch latency of a collective operation (seconds).
    collective_launch_latency_s: float = 9e-6

    @property
    def links_per_gpu(self) -> int:
        """Each GPU connects directly to every other GPU."""
        return self.num_gpus - 1

    @property
    def aggregate_fabric_bandwidth(self) -> float:
        """Total unidirectional off-GPU bandwidth of one GPU (bytes/s)."""
        return self.links_per_gpu * self.link.bandwidth_bytes_per_s

    def validate(self) -> None:
        if self.num_gpus < 2:
            raise ValueError("a platform needs at least two GPUs")
        self.gpu.validate()


def mi300x_spec() -> GPUSpec:
    """Return the default MI300X-like GPU specification."""
    spec = GPUSpec()
    spec.validate()
    return spec


def mi300x_platform_spec(num_gpus: int = 8) -> PlatformSpec:
    """Return the default 8-GPU Infinity-Platform specification."""
    spec = PlatformSpec(num_gpus=num_gpus)
    spec.validate()
    return spec
