"""Compiled slice/boundary core: providers, self-check and engine selection.

The device offers a three-tier engine matrix:

``compiled``
    The hot loops (idle per-period loop, execution slice loop, firmware
    control boundary, closed-form thermal relaxation) run as compiled
    kernels.  Two providers exist -- ``numba`` (``@njit(cache=True)`` over
    :mod:`repro.gpu._fastcore_kernels`, preferred; installed via the
    ``fast`` extra) and ``cc`` (the same kernels hand-mirrored in C,
    compiled once with the system C compiler and bound through ctypes,
    :mod:`repro.gpu._fastcore_cc`).  A one-time self-check replays a fixed
    scenario through the candidate provider and through the pure-Python
    kernel bodies and requires bit-for-bit agreement before the provider is
    ever selected; on failure the engine silently *is not* compiled -- auto
    selection falls back to ``vectorized`` (with a single warning when a
    provider was present but failed, see below).
``vectorized``
    The batched NumPy/float engine (``SimulatedGPU._idle_fast`` /
    ``_execute_fast``) -- the pinned mid-tier, always available.
``reference``
    The per-slice object path -- the executable specification.

Selection
---------
:func:`resolve_engine` implements the precedence *explicit argument* >
``REPRO_ENGINE`` environment variable > auto.  ``auto`` picks ``compiled``
when a provider passes the self-check and ``vectorized`` otherwise (silent
fallback); explicitly requesting ``compiled`` when no provider is usable
falls back to ``vectorized`` with a single warning.  The provider itself can
be pinned with ``REPRO_FASTCORE_PROVIDER`` (``auto`` | ``numba`` | ``cc`` |
``python`` | ``none``); ``python`` is the uncompiled kernel bodies (slow --
for debugging/validation only) and ``none`` disables the compiled tier
entirely, which makes the import-free path identical to a container without
Numba or a C compiler.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

from . import _fastcore_kernels as _K

#: Engines accepted by BackendConfig.engine / SimulatedGPU(engine=...).
VALID_ENGINES = ("compiled", "vectorized", "reference")

#: Kernel functions swapped to their pure-Python bodies for the self-check
#: reference run (outermost last, so nested calls resolve pure as well).
_KERNEL_CHAIN = (
    "fw_transition",
    "fw_step",
    "fw_arrival",
    "control_boundary",
    "idle_core",
    "execute_core",
    "sequence_core",
)


class KernelBundle:
    """One provider's uniform kernel API (idle / execute / sequence)."""

    __slots__ = ("name", "idle", "execute", "sequence", "numba_version", "lib_path")

    def __init__(self, name, idle, execute, sequence, numba_version=None, lib_path=None):
        self.name = name
        self.idle = idle
        self.execute = execute
        self.sequence = sequence
        self.numba_version = numba_version
        self.lib_path = lib_path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KernelBundle({self.name!r})"


# --------------------------------------------------------------------- #
# Provider loading.
# --------------------------------------------------------------------- #
def _numba_importable() -> bool:
    """Whether the Numba provider can be used (patched by fallback tests)."""
    return _K.HAVE_NUMBA


def _load_provider(name: str) -> tuple[KernelBundle | None, str | None]:
    if name == "numba":
        if not _numba_importable():
            return None, "numba: not importable"
        import numba

        return (
            KernelBundle(
                "numba",
                _K.k_idle,
                _K.k_execute,
                _K.k_sequence,
                numba_version=numba.__version__,
            ),
            None,
        )
    if name == "python":
        # The kernels module as imported: pure Python without Numba (slow,
        # debugging/validation only), jitted when Numba is present.
        return KernelBundle("python", _K.k_idle, _K.k_execute, _K.k_sequence), None
    if name == "cc":
        try:
            from . import _fastcore_cc

            cc = _fastcore_cc.load()
        except Exception as exc:
            return None, f"cc: {exc}"
        return (
            KernelBundle("cc", cc.idle, cc.execute, cc.sequence, lib_path=cc.lib_path),
            None,
        )
    return None, f"unknown provider {name!r}"


# --------------------------------------------------------------------- #
# Self-check: candidate provider vs the pure-Python kernel bodies.
# --------------------------------------------------------------------- #
def _scenario_params() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fixed state/parameters/descriptors exercising every kernel branch."""
    pp = np.empty(_K.PARAM_LEN)
    pp[_K.P_PERIOD] = 250e-6
    pp[_K.P_IDLE_X] = 88.0
    pp[_K.P_IDLE_I] = 52.0
    pp[_K.P_IDLE_H] = 41.0
    pp[_K.P_IDLE_TOT] = 88.0 + 52.0 + 41.0
    pp[_K.P_NOM] = 2.1
    pp[_K.P_PEXP] = 2.4
    pp[_K.P_XIDLE] = 88.0
    pp[_K.P_XDYN] = 310.0
    pp[_K.P_IIDLE] = 52.0
    pp[_K.P_IDYN] = 128.0
    pp[_K.P_HIDLE] = 41.0
    pp[_K.P_HDYN] = 104.0
    pp[_K.P_SWING] = 0.06
    pp[_K.P_COUPLE] = 0.5
    pp[_K.P_HEAT_TAU] = 2.2e-3
    pp[_K.P_COOL_TAU] = 9.0e-3
    pp[_K.P_LIMIT] = 620.0
    pp[_K.P_EXC_THRESH] = 1.0
    pp[_K.P_EXC_WIN] = 800e-6
    pp[_K.P_T_HOLD] = 1.6e-3
    pp[_K.P_REC_STEP] = 0.010
    pp[_K.P_RAMP_STEP] = 0.5
    pp[_K.P_CAP_TGT] = 0.985
    pp[_K.P_CAP_HYST] = 0.03
    pp[_K.P_IDLE_PARK] = 2.0e-3
    pp[_K.P_F_IDLE] = 0.8
    pp[_K.P_F_BOOST] = 2.25
    pp[_K.P_F_SUST] = 1.9
    pp[_K.P_RETENTION] = 4e-3
    pp[_K.P_MINFACT] = 0.85

    st = np.zeros(_K.STATE_LEN)
    st[_K.S_NEXT] = pp[_K.P_PERIOD]
    st[_K.S_FREQ] = pp[_K.P_F_IDLE]

    def pack(base, sens, cold_mult, cold_execs, rows):
        desc = np.empty(5 + 5 * len(rows))
        desc[0] = base
        desc[1] = sens
        desc[2] = cold_mult
        desc[3] = float(cold_execs)
        desc[4] = float(len(rows))
        for i, row in enumerate(rows):
            desc[5 + 5 * i : 10 + 5 * i] = row
        return desc

    # Long power-hungry kernel: crosses many control boundaries, ramps,
    # overdraws and throttles (then recovers / caps on later executions).
    desc_long = pack(
        1.1e-3,
        0.9,
        1.15,
        2,
        [
            (0.1, 0.82, 0.95, 0.97, 1.0),
            (0.9, 1.0, 0.96, 0.94, 0.98),
            (1.0, 0.8, 1.0, 1.0, 1.0),
        ],
    )
    # Short kernel: the single-slice shortcut inside a fused sequence.
    desc_short = pack(
        42e-6,
        1.0,
        1.08,
        2,
        [
            (0.15, 0.7, 1.1, 1.2, 1.25),
            (1.0, 0.95, 0.97, 0.95, 0.96),
        ],
    )
    return st, pp, desc_long, desc_short


def _run_scenario(idle, execute, sequence) -> dict[str, np.ndarray]:
    """Drive the three entry points through a fixed multi-branch scenario."""
    st, pp, desc_long, desc_short = _scenario_params()
    period = pp[_K.P_PERIOD]
    seg = np.zeros((512, 5))
    ev = np.zeros((64, 4))
    lens = np.zeros(2, dtype=np.int64)
    segs: list[np.ndarray] = []
    evs: list[np.ndarray] = []
    states: list[np.ndarray] = []

    def drain() -> None:
        segs.append(seg[: int(lens[0])].copy())
        evs.append(ev[: int(lens[1])].copy())
        states.append(st.copy())

    def check(rc) -> None:
        if rc != 0:
            raise RuntimeError(f"scenario kernel returned rc={rc}")

    out8_a = np.zeros(8)
    out8_b = np.zeros(8)
    check(idle(st, pp, 0.9 * period, 1, seg, ev, lens))
    drain()
    check(execute(st, pp, desc_long, 1.0, 1, 1, seg, ev, lens, out8_a))
    drain()
    check(idle(st, pp, 3.3 * period, 1, seg, ev, lens))
    drain()
    check(execute(st, pp, desc_long, 0.97, 0, 1, seg, ev, lens, out8_b))
    drain()
    check(idle(st, pp, 10.0 * period, 1, seg, ev, lens))
    drain()

    executions = 5
    cache = np.array([0.0, -1.0])
    variates = np.linspace(-1.2, 1.3, 4 * executions)
    exec_rows = np.zeros((executions, 8))
    cpu_starts = np.zeros(executions)
    cpu_ends = np.zeros(executions)
    check(
        sequence(
            st, pp, desc_short, cache, executions, variates, 1, 1.02,
            0.006, 2.5e-6, 0.5e-6, 0.6e-6, 1.0e-6, 1,
            seg, ev, lens, exec_rows, cpu_starts, cpu_ends,
        )
    )
    drain()
    return {
        "segments": np.vstack(segs),
        "events": np.vstack(evs),
        "states": np.vstack(states),
        "out8_a": out8_a,
        "out8_b": out8_b,
        "exec_rows": exec_rows,
        "cpu_starts": cpu_starts,
        "cpu_ends": cpu_ends,
        "cache": cache,
    }


def _run_scenario_pure() -> dict[str, np.ndarray]:
    """Reference run over the pure-Python kernel bodies.

    When Numba is active the module-level kernels are dispatchers; their
    original bodies are temporarily swapped back in (nested calls resolve
    through the module globals at call time, so the whole chain runs pure).
    """
    swapped: dict[str, object] = {}
    for name in _KERNEL_CHAIN:
        func = getattr(_K, name)
        py_func = getattr(func, "py_func", None)
        if py_func is not None:
            swapped[name] = func
            setattr(_K, name, py_func)
    try:
        return _run_scenario(_K.k_idle, _K.k_execute, _K.k_sequence)
    finally:
        for name, func in swapped.items():
            setattr(_K, name, func)


def self_check(bundle: KernelBundle) -> str | None:
    """Bit-for-bit comparison of a provider against the Python kernel bodies.

    Returns ``None`` when every recorded slice, firmware event, state vector
    and execution row agrees exactly, else a short failure description.
    """
    try:
        got = _run_scenario(bundle.idle, bundle.execute, bundle.sequence)
        want = _run_scenario_pure()
    except Exception as exc:
        return f"self-check scenario failed: {exc!r}"
    for key, expected in want.items():
        actual = got[key]
        if expected.shape != actual.shape or not np.array_equal(expected, actual):
            return f"self-check mismatch in {key!r}"
    return None


# --------------------------------------------------------------------- #
# Resolution (cached once per process).
# --------------------------------------------------------------------- #
_RESOLVED = False
_BUNDLE: KernelBundle | None = None
_FAILURE: str | None = None
_WARNED: set[str] = set()


def _warn_once(key: str, message: str) -> None:
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _reset_for_tests() -> None:
    """Drop the cached provider resolution (test helper)."""
    global _RESOLVED, _BUNDLE, _FAILURE
    _RESOLVED = False
    _BUNDLE = None
    _FAILURE = None
    _WARNED.clear()


def provider_request() -> str:
    return os.environ.get("REPRO_FASTCORE_PROVIDER", "").strip().lower() or "auto"


def kernels() -> KernelBundle | None:
    """The active compiled-kernel provider, or ``None`` when unavailable.

    Resolution runs once per process: candidate providers (``numba`` then
    ``cc`` under ``auto``) are loaded and self-checked in order; the first
    that passes wins.  A provider that *loaded* but failed its self-check
    warns once -- that is the documented silently-degraded path auto
    selection then routes to the vectorized engine.
    """
    global _RESOLVED, _BUNDLE, _FAILURE
    if _RESOLVED:
        return _BUNDLE
    request = provider_request()
    candidate_sets = {
        "auto": ("numba", "cc"),
        "numba": ("numba",),
        "cc": ("cc",),
        "python": ("python",),
        "none": (),
    }
    candidates = candidate_sets.get(request)
    bundle: KernelBundle | None = None
    errors: list[str] = []
    if candidates is None:
        errors.append(f"unknown REPRO_FASTCORE_PROVIDER {request!r}")
    else:
        for name in candidates:
            loaded, error = _load_provider(name)
            if loaded is None:
                errors.append(error or f"{name}: unavailable")
                continue
            error = self_check(loaded)
            if error is None:
                bundle = loaded
                break
            errors.append(f"{name}: {error}")
            _warn_once(
                f"self-check:{name}",
                f"fastcore provider {name!r} failed its self-check ({error}); "
                "the compiled engine is disabled and auto selection falls "
                "back to the vectorized engine",
            )
    _BUNDLE = bundle
    _FAILURE = "; ".join(errors) if (bundle is None and errors) else None
    _RESOLVED = True
    return _BUNDLE


def available() -> bool:
    """Whether the compiled engine can be selected in this process."""
    return kernels() is not None


def provider_name() -> str | None:
    bundle = kernels()
    return bundle.name if bundle is not None else None


def numba_version() -> str | None:
    bundle = kernels()
    return bundle.numba_version if bundle is not None else None


def resolve_engine(engine: str | None = None, vectorized: bool | None = None) -> str:
    """Resolve an engine request to one of :data:`VALID_ENGINES`.

    Precedence: explicit ``engine`` argument > ``REPRO_ENGINE`` environment
    variable > auto selection.  The deprecated ``vectorized`` boolean maps
    onto the engine enum (``True`` -> ``"vectorized"``, ``False`` ->
    ``"reference"``) and pins the chosen engine -- it never auto-selects, so
    pre-engine callers keep their exact behaviour.
    """
    if engine is not None and vectorized is not None:
        raise ValueError(
            "pass either engine or the deprecated vectorized flag, not both"
        )
    if engine is None:
        if vectorized is not None:
            return "vectorized" if vectorized else "reference"
        engine = os.environ.get("REPRO_ENGINE", "").strip().lower() or "auto"
    if engine == "auto":
        return "compiled" if kernels() is not None else "vectorized"
    if engine not in VALID_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}: valid engines are 'compiled', "
            "'vectorized' and 'reference' (or 'auto'/None for auto-selection)"
        )
    if engine == "compiled" and kernels() is None:
        detail = _FAILURE or "no compiled provider available"
        _warn_once(
            "compiled-unavailable",
            f"compiled engine requested but unavailable ({detail}); "
            "falling back to the vectorized engine",
        )
        return "vectorized"
    return engine


__all__ = [
    "VALID_ENGINES",
    "KernelBundle",
    "kernels",
    "available",
    "provider_name",
    "numba_version",
    "provider_request",
    "resolve_engine",
    "self_check",
]
