"""Multi-GPU Infinity Platform topology.

The paper profiles communication collectives on an 8x MI300X node where every
GPU is connected to every other GPU by a 4th-generation Infinity Fabric link
with 64 GB/s of unidirectional bandwidth (Section II-A).  This module models
that node: a fully-connected topology (held as a :mod:`networkx` graph so the
structure is queryable), per-link bandwidth/latency, and helpers for the
transfer-time arithmetic the collective kernels need.

Only GPU 0 -- the profiled GPU -- is instantiated as a full
:class:`~repro.gpu.device.SimulatedGPU`; the peers matter only through the
fabric traffic they generate, which is captured in the collective kernels'
activity descriptors.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .device import SimulatedGPU
from .spec import PlatformSpec, mi300x_platform_spec


@dataclass(frozen=True)
class TransferEstimate:
    """Time estimate for moving ``bytes_per_peer`` to/from every peer in parallel."""

    bytes_per_peer: float
    duration_s: float
    effective_bandwidth_bytes_per_s: float
    latency_bound: bool


class InfinityPlatform:
    """A fully-connected multi-GPU node."""

    def __init__(self, spec: PlatformSpec | None = None, seed: int = 0) -> None:
        self._spec = spec or mi300x_platform_spec()
        self._spec.validate()
        self._graph = nx.complete_graph(self._spec.num_gpus)
        for u, v in self._graph.edges:
            self._graph.edges[u, v]["bandwidth_bytes_per_s"] = self._spec.link.bandwidth_bytes_per_s
            self._graph.edges[u, v]["latency_s"] = self._spec.link.latency_s
        self._profiled_gpu = SimulatedGPU(self._spec.gpu, seed=seed)

    # ------------------------------------------------------------------ #
    @property
    def spec(self) -> PlatformSpec:
        return self._spec

    @property
    def num_gpus(self) -> int:
        return self._spec.num_gpus

    @property
    def topology(self) -> nx.Graph:
        """The link graph (GPU indices as nodes)."""
        return self._graph

    @property
    def profiled_gpu(self) -> SimulatedGPU:
        """The GPU on which power is profiled (rank 0)."""
        return self._profiled_gpu

    def peers_of(self, rank: int) -> list[int]:
        """Ranks directly connected to ``rank`` (all others, fully connected)."""
        self._check_rank(rank)
        return sorted(self._graph.neighbors(rank))

    def link_bandwidth(self, src: int, dst: int) -> float:
        """Unidirectional bandwidth of the link between two ranks (bytes/s)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("no link from a GPU to itself")
        return float(self._graph.edges[src, dst]["bandwidth_bytes_per_s"])

    def link_latency(self, src: int, dst: int) -> float:
        """One-way latency of the link between two ranks (seconds)."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("no link from a GPU to itself")
        return float(self._graph.edges[src, dst]["latency_s"])

    def is_fully_connected(self) -> bool:
        """True when every pair of GPUs shares a direct link."""
        n = self.num_gpus
        return self._graph.number_of_edges() == n * (n - 1) // 2

    # ------------------------------------------------------------------ #
    # Transfer arithmetic used by the collective kernels.
    # ------------------------------------------------------------------ #
    def parallel_peer_transfer(self, bytes_per_peer: float, rank: int = 0) -> TransferEstimate:
        """Time to exchange ``bytes_per_peer`` with each peer over dedicated links.

        With a fully-connected topology each peer pair uses its own link, so
        the transfers proceed in parallel and the duration is set by a single
        link plus the fixed launch/latency cost.
        """
        if bytes_per_peer < 0:
            raise ValueError("transfer size cannot be negative")
        peers = self.peers_of(rank)
        if not peers:
            raise ValueError("platform has no peers to transfer with")
        link_bw = self.link_bandwidth(rank, peers[0])
        latency = self.link_latency(rank, peers[0]) + self._spec.collective_launch_latency_s
        wire_time = bytes_per_peer / link_bw if bytes_per_peer > 0 else 0.0
        duration = latency + wire_time
        total_bytes = bytes_per_peer * len(peers)
        effective_bw = total_bytes / duration if duration > 0 else 0.0
        return TransferEstimate(
            bytes_per_peer=bytes_per_peer,
            duration_s=duration,
            effective_bandwidth_bytes_per_s=effective_bw,
            latency_bound=wire_time < latency,
        )

    def aggregate_fabric_bandwidth(self, rank: int = 0) -> float:
        """Sum of unidirectional link bandwidth out of ``rank`` (bytes/s)."""
        return sum(self.link_bandwidth(rank, peer) for peer in self.peers_of(rank))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_gpus:
            raise ValueError(f"rank {rank} outside platform of {self.num_gpus} GPUs")


__all__ = ["InfinityPlatform", "TransferEstimate"]
