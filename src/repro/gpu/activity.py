"""Device-facing description of what a kernel does to the GPU.

The simulated device does not understand GEMMs or collectives; it understands
an :class:`KernelActivityDescriptor` -- a compact, physical description of how
a kernel exercises each GPU component:

* how long it runs at the nominal clock with warm caches,
* how sensitive its duration is to the core clock (compute- vs memory-bound),
* what fraction of peak compute / Infinity-Cache bandwidth / HBM bandwidth /
  Infinity-Fabric bandwidth it sustains,
* how it occupies the compute units (matrix-engine-heavy, vector, stalled on
  memory, or DMA-like),
* how those utilisations are shaped over the kernel's lifetime (phases), and
* how much run-to-run execution-time variation it exhibits.

The operator substrate (:mod:`repro.kernels`) derives descriptors from
first-principles roofline and memory-traffic math; the device
(:mod:`repro.gpu.device`) turns descriptors plus DVFS/thermal state into an
instantaneous power timeline.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Sequence


class XCDOccupancyMode(str, enum.Enum):
    """How a kernel occupies the compute units, for the XCD power floor.

    ``MATRIX``
        Matrix-engine (MFMA) heavy kernel: full issue activity, the large
        non-proportional XCD floor applies (paper takeaway #4).
    ``VECTOR``
        Vector-ALU heavy kernel without matrix engines.
    ``STALLED``
        Wavefronts resident but mostly waiting on memory (GEMV-style).
    ``DMA``
        Copy-engine / fabric-transfer style kernels (collectives).
    """

    MATRIX = "matrix"
    VECTOR = "vector"
    STALLED = "stalled"
    DMA = "dma"


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a kernel's execution.

    ``duration_fraction`` is the share of the total execution time the phase
    occupies; the scale factors multiply the kernel's average component
    utilisations during the phase.  A kernel's phases should roughly preserve
    the average (the descriptor normalises them on construction).
    """

    duration_fraction: float
    xcd_scale: float = 1.0
    iod_scale: float = 1.0
    hbm_scale: float = 1.0

    def validate(self) -> None:
        if not 0.0 < self.duration_fraction <= 1.0:
            raise ValueError("phase duration fraction must be in (0, 1]")
        for name, value in (
            ("xcd_scale", self.xcd_scale),
            ("iod_scale", self.iod_scale),
            ("hbm_scale", self.hbm_scale),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative")


DEFAULT_PHASES: tuple[PhaseSpec, ...] = (
    # Prologue: operand fetch dominates -- memory heavier, compute lighter.
    PhaseSpec(duration_fraction=0.10, xcd_scale=0.80, iod_scale=1.25, hbm_scale=1.35),
    # Main body.
    PhaseSpec(duration_fraction=0.80, xcd_scale=1.05, iod_scale=0.97, hbm_scale=0.95),
    # Epilogue: result drain.
    PhaseSpec(duration_fraction=0.10, xcd_scale=0.80, iod_scale=1.00, hbm_scale=1.05),
)


@dataclass(frozen=True)
class VariationSpec:
    """Run-to-run execution-time variation of a kernel (paper challenge C3).

    ``run_cv``
        Coefficient of variation of a per-run multiplicative factor.  The paper
        attributes this to slight differences in memory allocation, which are
        fixed for the lifetime of a run, so the factor is drawn once per run.
    ``execution_cv``
        Additional per-execution jitter within a run.
    ``outlier_probability`` / ``outlier_scale``
        Probability that a run is an outlier, and the multiplicative slowdown
        applied to all of its executions when it is.
    """

    run_cv: float = 0.02
    execution_cv: float = 0.006
    outlier_probability: float = 0.04
    outlier_scale: float = 1.22

    def validate(self) -> None:
        if self.run_cv < 0 or self.execution_cv < 0:
            raise ValueError("coefficients of variation must be non-negative")
        if not 0 <= self.outlier_probability <= 1:
            raise ValueError("outlier probability must be in [0, 1]")
        if self.outlier_scale < 1:
            raise ValueError("outlier scale must be >= 1 (outliers are slowdowns)")


@dataclass(frozen=True)
class KernelActivityDescriptor:
    """Everything the simulated GPU needs to execute a kernel.

    Utilisation fields are fractions of the corresponding peak at the nominal
    core clock with warm on-chip caches; the device rescales them for the
    actual frequency, cold caches and thermal state.
    """

    name: str
    base_duration_s: float
    xcd_mode: XCDOccupancyMode = XCDOccupancyMode.MATRIX
    #: Achieved fraction of peak (matrix or vector) FLOP throughput.
    compute_utilization: float = 0.0
    #: Achieved fraction of peak Infinity-Cache bandwidth.
    llc_utilization: float = 0.0
    #: Achieved fraction of peak HBM bandwidth with warm caches.
    hbm_utilization: float = 0.0
    #: HBM utilisation during cold-cache executions (first touches).
    hbm_utilization_cold: float | None = None
    #: Achieved fraction of this GPU's aggregate Infinity-Fabric bandwidth.
    fabric_utilization: float = 0.0
    #: 1.0 = duration scales inversely with core clock (compute-bound),
    #: 0.0 = duration independent of core clock (memory/fabric-bound).
    frequency_sensitivity: float = 1.0
    #: Duration multiplier while caches are cold.
    cold_duration_multiplier: float = 1.0
    #: Number of executions after a cold start before caches are warm.
    cold_executions: int = 3
    phases: tuple[PhaseSpec, ...] = DEFAULT_PHASES
    variation: VariationSpec = field(default_factory=VariationSpec)
    #: Free-form metadata (operator type, problem size, boundedness, ...).
    metadata: dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not self.name:
            raise ValueError("kernel descriptor needs a name")
        if self.base_duration_s <= 0:
            raise ValueError("base duration must be positive")
        for label, value in (
            ("compute_utilization", self.compute_utilization),
            ("llc_utilization", self.llc_utilization),
            ("hbm_utilization", self.hbm_utilization),
            ("fabric_utilization", self.fabric_utilization),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be within [0, 1], got {value}")
        if self.hbm_utilization_cold is not None and not 0.0 <= self.hbm_utilization_cold <= 1.0:
            raise ValueError("hbm_utilization_cold must be within [0, 1]")
        if not 0.0 <= self.frequency_sensitivity <= 1.0:
            raise ValueError("frequency_sensitivity must be within [0, 1]")
        if self.cold_duration_multiplier < 1.0:
            raise ValueError("cold caches cannot make a kernel faster")
        if self.cold_executions < 0:
            raise ValueError("cold_executions must be non-negative")
        if not self.phases:
            raise ValueError("a kernel needs at least one phase")
        total = 0.0
        for phase in self.phases:
            phase.validate()
            total += phase.duration_fraction
        if not math.isclose(total, 1.0, rel_tol=1e-6, abs_tol=1e-9):
            raise ValueError(f"phase duration fractions must sum to 1, got {total}")
        self.variation.validate()

    # ------------------------------------------------------------------ #
    @property
    def effective_hbm_utilization_cold(self) -> float:
        """Cold-cache HBM utilisation, defaulting to the warm value."""
        if self.hbm_utilization_cold is None:
            return self.hbm_utilization
        return self.hbm_utilization_cold

    def duration_at(self, frequency_ghz: float, nominal_frequency_ghz: float, cold: bool = False) -> float:
        """Execution time at a given core clock (seconds).

        Duration scales as ``(f_nominal / f) ** frequency_sensitivity`` -- a
        fully compute-bound kernel speeds up linearly with the clock while a
        fully memory-bound kernel does not speed up at all.
        """
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
        scale = (nominal_frequency_ghz / frequency_ghz) ** self.frequency_sensitivity
        duration = self.base_duration_s * scale
        if cold:
            duration *= self.cold_duration_multiplier
        return duration

    def phase_at(self, fraction: float) -> PhaseSpec:
        """Return the phase active at a normalised position in [0, 1]."""
        if fraction < 0:
            fraction = 0.0
        if fraction >= 1.0:
            return self.phases[-1]
        cursor = 0.0
        for phase in self.phases:
            cursor += phase.duration_fraction
            if fraction < cursor:
                return phase
        return self.phases[-1]

    def with_variation(self, variation: VariationSpec) -> "KernelActivityDescriptor":
        """Return a copy of the descriptor with a different variation model."""
        return replace(self, variation=variation)

    def scaled(self, duration_scale: float) -> "KernelActivityDescriptor":
        """Return a copy with the base duration multiplied by ``duration_scale``."""
        if duration_scale <= 0:
            raise ValueError("duration scale must be positive")
        return replace(self, base_duration_s=self.base_duration_s * duration_scale)


def uniform_phases(count: int) -> tuple[PhaseSpec, ...]:
    """Build ``count`` equal-length neutral phases (useful for tests)."""
    if count <= 0:
        raise ValueError("phase count must be positive")
    fraction = 1.0 / count
    return tuple(PhaseSpec(duration_fraction=fraction) for _ in range(count))


def flat_profile_phases() -> tuple[PhaseSpec, ...]:
    """A single neutral phase: no intra-kernel power shape."""
    return (PhaseSpec(duration_fraction=1.0),)


__all__ = [
    "XCDOccupancyMode",
    "PhaseSpec",
    "VariationSpec",
    "KernelActivityDescriptor",
    "DEFAULT_PHASES",
    "uniform_phases",
    "flat_profile_phases",
]
