"""Execution-time variation model (paper challenge C3).

Short kernels show run-to-run execution-time variation -- the paper attributes
it to slight differences in memory allocation (and hence access patterns)
between runs, plus occasional outlier runs.  FinGraV handles this with
execution-time binning (solution S3); this module produces the variation that
the binning has to clean up.

The structure mirrors the paper's description:

* a *per-run* multiplicative factor, drawn once per run (memory allocation is
  fixed for the lifetime of a run),
* a small *per-execution* jitter within the run,
* a probability that the whole run is an *outlier* with a substantially longer
  execution time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activity import VariationSpec


@dataclass(frozen=True)
class RunVariation:
    """Variation factors applying to one run of a kernel."""

    run_factor: float
    is_outlier: bool

    def execution_factor(self, jitter: float) -> float:
        """Combine the per-run factor with one execution's jitter factor."""
        return self.run_factor * jitter


class ExecutionTimeVariationModel:
    """Draws run-level and execution-level variation factors."""

    #: Lower clamp on any multiplicative factor, to keep durations positive
    #: and avoid unphysically fast executions.
    MIN_FACTOR = 0.85

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def draw_run(self, spec: VariationSpec) -> RunVariation:
        """Draw the per-run factor (allocation effects + possible outlier).

        ``spec`` is assumed valid (descriptors validate their variation spec
        on construction); draws are on the device hot path.
        """
        if spec.run_cv > 0:
            factor = float(self._rng.lognormal(mean=0.0, sigma=spec.run_cv))
        else:
            factor = 1.0
        is_outlier = bool(self._rng.random() < spec.outlier_probability)
        if is_outlier:
            # Outliers are slowdowns of varying severity around the nominal scale.
            severity = float(self._rng.uniform(0.6, 1.4))
            factor *= 1.0 + (spec.outlier_scale - 1.0) * severity
        return RunVariation(run_factor=max(factor, self.MIN_FACTOR), is_outlier=is_outlier)

    def draw_execution_jitter(self, spec: VariationSpec) -> float:
        """Draw the per-execution jitter factor within a run (``spec`` assumed valid)."""
        if spec.execution_cv <= 0:
            return 1.0
        jitter = float(self._rng.lognormal(mean=0.0, sigma=spec.execution_cv))
        return max(jitter, self.MIN_FACTOR)

    def draw_launch_delay(self, mean_s: float, jitter_s: float) -> float:
        """Draw a host-side kernel-launch latency."""
        if mean_s < 0 or jitter_s < 0:
            raise ValueError("launch delay parameters must be non-negative")
        delay = float(self._rng.normal(mean_s, jitter_s))
        return max(delay, 0.2e-6)


__all__ = ["RunVariation", "ExecutionTimeVariationModel"]
