"""CPU and GPU clock domains.

The paper's challenge C2 is that the on-GPU power logger tags samples with a
GPU timestamp-counter value while kernel scheduling (and therefore kernel
start/end times) is observed on the CPU.  This module models both domains:

* :class:`SimulationClock` -- the single source of truth for *simulated* time.
  Everything in the simulator ultimately advances this clock.
* :class:`CPUClock` -- the host's monotonic clock.  In this reproduction it is
  identical to simulated time (the host is the observer).
* :class:`GPUTimestampCounter` -- the free-running GPU counter: a different
  epoch, a different unit (ticks), and optionally a slow drift relative to the
  CPU clock.  Reading it from the CPU incurs a stochastic delay, exactly the
  quantity FinGraV calibrates (solution S2).

The FinGraV methodology never sees ``SimulationClock`` directly; it only sees
CPU times and GPU tick values, and must reconstruct the mapping -- the same
situation as on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .spec import ClockSpec


class SimulationClock:
    """Monotonic simulated-time source (seconds).

    The clock can only move forward.  All simulator components share a single
    instance so that device activity, telemetry and the host observe a
    consistent ordering of events.
    """

    __slots__ = ("_now_s",)

    def __init__(self, start_s: float = 0.0) -> None:
        if start_s < 0:
            raise ValueError("simulation time cannot start negative")
        self._now_s = float(start_s)

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_s

    def advance(self, delta_s: float) -> float:
        """Advance the clock by ``delta_s`` seconds and return the new time."""
        if delta_s < 0:
            raise ValueError(f"cannot advance time by a negative amount ({delta_s})")
        self._now_s += float(delta_s)
        return self._now_s

    def advance_to(self, target_s: float) -> float:
        """Advance the clock to an absolute time (no-op if already past it)."""
        if target_s > self._now_s:
            self._now_s = float(target_s)
        return self._now_s


class CPUClock:
    """The host's monotonic clock.

    For the purposes of the reproduction the CPU clock *is* simulated time;
    the interesting divergence (offset, unit, drift, read delay) lives on the
    GPU side.
    """

    def __init__(self, sim_clock: SimulationClock) -> None:
        self._sim = sim_clock

    def now_s(self) -> float:
        """Current CPU time in seconds."""
        return self._sim.now_s


@dataclass(frozen=True)
class TimestampReadResult:
    """Result of reading the GPU timestamp counter from the CPU.

    Attributes
    ----------
    gpu_ticks:
        The counter value that was captured on the GPU.
    cpu_time_after_s:
        CPU time at which the read returned (i.e. after the round trip).
    round_trip_s:
        Total CPU-side duration of the read.
    """

    gpu_ticks: int
    cpu_time_after_s: float
    round_trip_s: float


class GPUTimestampCounter:
    """Free-running GPU timestamp counter with its own epoch and drift.

    The mapping from simulated/CPU time ``t`` to counter ticks is::

        ticks = (t + epoch_offset) * (1 + drift) * counter_hz

    The profiler does not know ``epoch_offset`` or ``drift``; it must anchor
    the two domains by reading the counter from the CPU and calibrating the
    read delay, which is exactly what :mod:`repro.core.timesync` implements.
    """

    def __init__(self, spec: ClockSpec, sim_clock: SimulationClock, rng: np.random.Generator) -> None:
        self._spec = spec
        self._sim = sim_clock
        self._rng = rng
        self._host_read_path = None

    def attach_host_read_path(self, read_timestamp) -> None:
        """Route host-side reads of this counter through the owning device.

        A raw counter read advances only the shared :class:`SimulationClock`;
        when the counter belongs to a :class:`~repro.gpu.device.SimulatedGPU`,
        the elapsed round trip must *also* be recorded as idle power, stepped
        through the thermal model and credited to the firmware control
        accumulator -- otherwise a mid-recording read leaves a silent gap in
        the power timeline.  The device attaches its own ``read_timestamp``
        here so :meth:`read_from_cpu` always takes the consistent path.
        """
        self._host_read_path = read_timestamp

    @property
    def spec(self) -> ClockSpec:
        return self._spec

    @property
    def frequency_hz(self) -> float:
        return self._spec.timestamp_counter_hz

    # ------------------------------------------------------------------ #
    # Ground-truth conversions (used by the simulator, *not* the profiler).
    # ------------------------------------------------------------------ #
    def ticks_at(self, sim_time_s: float) -> int:
        """Counter value at an absolute simulated time (ground truth)."""
        drift = 1.0 + self._spec.drift_ppm * 1e-6
        gpu_seconds = (sim_time_s + self._spec.epoch_offset_s) * drift
        return int(round(gpu_seconds * self._spec.timestamp_counter_hz))

    def ticks_at_many(self, sim_times_s: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`ticks_at` (same float64 ops, half-even rounding)."""
        drift = 1.0 + self._spec.drift_ppm * 1e-6
        times = np.asarray(sim_times_s, dtype=float)
        gpu_seconds = (times + self._spec.epoch_offset_s) * drift
        return np.rint(gpu_seconds * self._spec.timestamp_counter_hz).astype(np.int64)

    def sim_time_of_ticks(self, ticks: int) -> float:
        """Inverse of :meth:`ticks_at` (ground truth, for testing)."""
        drift = 1.0 + self._spec.drift_ppm * 1e-6
        gpu_seconds = ticks / self._spec.timestamp_counter_hz
        return gpu_seconds / drift - self._spec.epoch_offset_s

    # ------------------------------------------------------------------ #
    # Host-visible operation.
    # ------------------------------------------------------------------ #
    def sample_read_delay_s(self) -> float:
        """Draw one realisation of the CPU->GPU timestamp read delay."""
        delay = self._rng.normal(
            self._spec.timestamp_read_delay_s, self._spec.timestamp_read_jitter_s
        )
        return max(delay, 0.5e-6)

    def read_from_cpu(self) -> TimestampReadResult:
        """Read the counter from the CPU, advancing CPU time by the round trip.

        The counter value captured corresponds to the moment the read request
        reaches the GPU, i.e. roughly one half of the round trip after the CPU
        issued it -- the asymmetry that makes delay calibration necessary.

        When the counter is attached to a device (the normal case), the read
        is delegated to :meth:`SimulatedGPU.read_timestamp` so the round trip
        is spent at idle power -- visible to telemetry, the thermal model and
        the firmware control accumulator.  Only a standalone counter (no
        device) advances the bare simulation clock.
        """
        if self._host_read_path is not None:
            return self._host_read_path()
        one_way = self.sample_read_delay_s()
        return_way = self.sample_read_delay_s()
        capture_time = self._sim.now_s + one_way
        ticks = self.ticks_at(capture_time)
        self._sim.advance(one_way + return_way)
        return TimestampReadResult(
            gpu_ticks=ticks,
            cpu_time_after_s=self._sim.now_s,
            round_trip_s=one_way + return_way,
        )


__all__ = [
    "SimulationClock",
    "CPUClock",
    "GPUTimestampCounter",
    "TimestampReadResult",
]
