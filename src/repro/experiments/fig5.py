"""Figure 5: FinGraV methodology evaluation on CB-4K-GEMM.

The paper evaluates the methodology's ingredients on the compute-bound 4K GEMM:

* **CPU-GPU time sync** -- the synchronised profile captures the gradual power
  ramp from idle through warm-ups to SSP; the unsynchronised profile
  mis-places samples and misses the ramp.
* **Power-profile differentiation** -- SSE and SSP profiles differ by ~36 %.
* **Execution-time binning** -- keeping only the golden runs tightens the
  profile around its true shape.
* **#runs resiliency** -- a degree-4 polynomial fit over only ~50 runs still
  recovers the trend that ~200 runs show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..analysis.trends import fit_trend, profile_spread, trend_agreement
from ..core.profile import FineGrainProfile
from ..core.profiler import FinGraVResult
from ..core.stitching import ProfileStitcher
from .common import ExperimentScale, default_scale
from .sweep import ProfileJob, SweepRunner, configured_adaptive, kernel_spec, run_jobs


@dataclass(frozen=True)
class Fig5Result:
    """Everything the Figure-5 reproduction reports."""

    kernel_name: str
    synchronized: FinGraVResult
    unsynchronized_run_profile: FineGrainProfile
    unsync_misattribution_fraction: float
    unbinned_spread: float
    binned_spread: float
    reduced_runs: int
    reduced_trend_agreement: float
    sse_vs_ssp_error: float

    # ------------------------------------------------------------------ #
    # The paper's four claims.
    # ------------------------------------------------------------------ #
    def sync_captures_ramp(self) -> bool:
        """Synchronisation aligns power logs with the right executions.

        The paper's unsynchronised profile "fails to align power changes with
        appropriate executions in a run": the naive index-based placement
        shifts every run's samples by a different fraction of the sampling
        period.  Measured here as the fraction of power logs whose execution
        attribution differs between the synchronised and unsynchronised
        placements -- a large fraction means the unsynchronised profile cannot
        represent the warm-up-to-SSP ramp faithfully.
        """
        return self.unsync_misattribution_fraction > 0.25

    def binning_tightens_profile(self) -> bool:
        """Golden-run points scatter less around the trend than the full cloud."""
        return self.binned_spread < self.unbinned_spread

    def differentiation_matters(self) -> bool:
        """SSE and SSP profiles differ considerably (paper: up to ~36 %)."""
        return self.sse_vs_ssp_error > 0.10

    def resilient_to_fewer_runs(self) -> bool:
        """The reduced-run degree-4 trend closely follows the full-run trend."""
        return self.reduced_trend_agreement > 0.9

    def summary(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "runs": self.synchronized.num_runs,
            "golden_runs": self.synchronized.num_golden_runs,
            "sync_captures_ramp": self.sync_captures_ramp(),
            "unsync_misattribution_pct": round(self.unsync_misattribution_fraction * 100, 1),
            "unbinned_spread": round(self.unbinned_spread, 4),
            "binned_spread": round(self.binned_spread, 4),
            "binning_tightens_profile": self.binning_tightens_profile(),
            "sse_vs_ssp_error_pct": round(self.sse_vs_ssp_error * 100, 1),
            "reduced_runs": self.reduced_runs,
            "reduced_trend_agreement": round(self.reduced_trend_agreement, 3),
            "resilient_to_fewer_runs": self.resilient_to_fewer_runs(),
        }

    def rows(self) -> list[dict[str, object]]:
        return [self.summary()]


def fig5_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 5,
    runs: int | None = None,
) -> list[ProfileJob]:
    """The single full-methodology CB-4K-GEMM profile job behind Figure 5."""
    scale = scale or default_scale()
    return [
        ProfileJob(
            job_id="fig5/CB-4K-GEMM",
            kernel=kernel_spec("cb_gemm", 4096),
            runs=runs or scale.methodology_runs,
            backend_seed=seed,
            profiler_seed=seed + 100,
            # Figure 5 re-stitches the raw run records through baseline
            # stitchers, so this job must ship the full result (never slim).
            result_mode="full",
            adaptive=configured_adaptive(),
        )
    ]


def fig5_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 5,
    reduced_runs: int | None = None,
) -> Fig5Result:
    """Assemble the Figure-5 result (re-stitching the job's recorded runs)."""
    scale = scale or default_scale()
    reduced_runs = reduced_runs or scale.reduced_runs
    synchronized: FinGraVResult = results["fig5/CB-4K-GEMM"]

    # Unsynchronised placement of the *same* runs (the red profile in Fig. 5).
    unsync_stitcher = ProfileStitcher(synchronize=False)
    unsync_series = unsync_stitcher.collect(list(synchronized.runs))
    unsynchronized_run_profile = unsync_stitcher.run_profile(
        unsync_series, list(synchronized.golden_run_indices)
    )

    # How often does the naive placement attribute a power log to a different
    # execution than the synchronised placement?
    sync_stitcher = ProfileStitcher(calibration=synchronized.calibration)
    sync_series = sync_stitcher.collect(list(synchronized.runs))
    mismatches = 0
    considered = 0
    for run_index, sync_lois in sync_series.lois_by_run.items():
        sync_map = {loi.reading.gpu_timestamp_ticks: loi.execution_index for loi in sync_lois}
        naive_map = {
            loi.reading.gpu_timestamp_ticks: loi.execution_index
            for loi in unsync_series.lois_by_run.get(run_index, ())
        }
        keys = set(sync_map) | set(naive_map)
        considered += len(keys)
        mismatches += sum(1 for key in keys if sync_map.get(key) != naive_map.get(key))
    misattribution = mismatches / considered if considered else 0.0

    # Binning effect: spread of the SSP profile with and without golden-run
    # selection, again on the same runs.
    full_stitcher = ProfileStitcher(calibration=synchronized.calibration)
    full_series = full_stitcher.collect(list(synchronized.runs))
    unbinned_ssp = full_stitcher.ssp_profile(
        full_series, golden_runs=None, min_execution_index=synchronized.plan.ssp_index
    )
    binned_ssp = synchronized.ssp_profile
    unbinned_spread = profile_spread(unbinned_ssp)
    binned_spread = profile_spread(binned_ssp)

    # #runs resiliency: degree-4 trend over a reduced subset of runs.
    golden = list(synchronized.golden_run_indices)
    rng = np.random.default_rng(seed + 500)
    subset = sorted(
        rng.choice(golden, size=min(reduced_runs, len(golden)), replace=False).tolist()
    )
    reduced_profile = synchronized.run_profile.restricted_to_runs(subset)
    reference_trend = fit_trend(synchronized.run_profile, degree=4)
    reduced_trend = fit_trend(reduced_profile, degree=4)
    agreement = trend_agreement(reference_trend, reduced_trend)

    return Fig5Result(
        kernel_name=synchronized.kernel_name,
        synchronized=synchronized,
        unsynchronized_run_profile=unsynchronized_run_profile,
        unsync_misattribution_fraction=misattribution,
        unbinned_spread=unbinned_spread,
        binned_spread=binned_spread,
        reduced_runs=len(subset),
        reduced_trend_agreement=agreement,
        sse_vs_ssp_error=synchronized.sse_vs_ssp_error(),
    )


def run_fig5(
    scale: ExperimentScale | None = None,
    seed: int = 5,
    runs: int | None = None,
    reduced_runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig5Result:
    """Reproduce Figure 5 (methodology evaluation on CB-4K-GEMM)."""
    jobs = fig5_jobs(scale=scale, seed=seed, runs=runs)
    return fig5_from_results(
        run_jobs(jobs, runner), scale=scale, seed=seed, reduced_runs=reduced_runs
    )


__all__ = ["Fig5Result", "fig5_jobs", "fig5_from_results", "run_fig5"]
