"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's figures and probe the knobs the methodology (and
the simulation substrate) depends on:

* **Sampler ablation** -- replace the 1 ms averaging logger with an idealised
  instantaneous sampler: the SSE/SSP split collapses, confirming that the
  split is a consequence of trailing-window averaging (paper Section V-C3
  notes that with an instantaneous sampler the interleaving caveat vanishes).
* **Coarse-sampler coverage** -- the challenge-C1 baseline: an amd-smi-like
  sampler with a tens-of-milliseconds period misses most sub-ms executions.
* **Binning-margin sweep** -- tighter margins keep fewer runs but yield
  tighter profiles (the Table I trade-off).
* **Clock-drift sensitivity** -- with a drifting GPU clock, a single anchor
  per run keeps LOI placement accurate only because runs are short; large
  drift degrades TOI accuracy (the Lang et al. discussion in Section VII).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dataclass_replace
from typing import Mapping

import numpy as np

from ..analysis.trends import profile_spread
from ..core.baselines import CoarseSamplerEstimator, CoverageReport
from ..core.binning import ExecutionTimeBinner
from ..core.profiler import FinGraVResult
from ..core.stitching import ProfileStitcher
from ..core.timesync import extract_lois, synchronizer_for_run
from ..gpu.spec import ClockSpec, GPUSpec, mi300x_spec
from ..kernels.workloads import cb_gemm
from .common import ExperimentScale, default_scale, make_backend, make_profiler
from .sweep import ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


# --------------------------------------------------------------------------- #
# Sampler ablation.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SamplerAblationResult:
    """SSE-vs-SSP error under the averaging logger vs an instantaneous sampler."""

    kernel_name: str
    averaging_error: float
    instantaneous_error: float

    def averaging_window_causes_split(self) -> bool:
        """The SSE/SSP split should mostly vanish without window averaging."""
        return self.instantaneous_error < self.averaging_error * 0.5

    def to_row(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "averaging_error_pct": round(self.averaging_error * 100, 1),
            "instantaneous_error_pct": round(self.instantaneous_error * 100, 1),
            "split_caused_by_averaging": self.averaging_window_causes_split(),
        }


def sampler_ablation_jobs(
    scale: ExperimentScale | None = None, seed: int = 31, runs: int | None = None
) -> list[ProfileJob]:
    """The averaging-vs-instantaneous sampler pair as independent jobs."""
    scale = scale or default_scale()
    runs = runs or scale.gemm_runs
    spec = kernel_spec("cb_gemm", 2048)
    # The ablation compares SSE-vs-SSP errors, answered by the summary
    # snapshot: ship slim with no profile sections at all.
    result_mode = configured_result_mode()
    return [
        ProfileJob(
            job_id="ablations/sampler/averaging",
            kernel=spec, runs=runs,
            backend_seed=seed, profiler_seed=seed + 100,
            sampler="averaging",
            result_mode=result_mode,
            profile_sections=(),
            adaptive=configured_adaptive(),
        ),
        ProfileJob(
            job_id="ablations/sampler/instantaneous",
            kernel=spec, runs=runs,
            backend_seed=seed + 1, profiler_seed=seed + 101,
            sampler="instantaneous",
            result_mode=result_mode,
            profile_sections=(),
            adaptive=configured_adaptive(),
        ),
    ]


def sampler_ablation_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 31,
) -> SamplerAblationResult:
    del scale, seed
    averaging: FinGraVResult = results["ablations/sampler/averaging"]
    instantaneous: FinGraVResult = results["ablations/sampler/instantaneous"]
    return SamplerAblationResult(
        kernel_name=averaging.kernel_name,
        averaging_error=averaging.sse_vs_ssp_error(),
        instantaneous_error=instantaneous.sse_vs_ssp_error(),
    )


def run_sampler_ablation(
    scale: ExperimentScale | None = None,
    seed: int = 31,
    runs: int | None = None,
    runner: SweepRunner | None = None,
) -> SamplerAblationResult:
    jobs = sampler_ablation_jobs(scale=scale, seed=seed, runs=runs)
    return sampler_ablation_from_results(run_jobs(jobs, runner), scale=scale, seed=seed)


# --------------------------------------------------------------------------- #
# Coarse-sampler coverage (challenge C1).
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CoarseCoverageResult:
    """How much of a sub-ms kernel an amd-smi-like sampler actually sees."""

    kernel_name: str
    fine_coverage: CoverageReport
    coarse_coverage: CoverageReport

    def coarse_misses_kernels(self) -> bool:
        return self.coarse_coverage.execution_coverage < 0.5 * max(
            self.fine_coverage.execution_coverage, 1e-9
        ) or self.coarse_coverage.execution_coverage < 0.2

    def to_row(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "fine_execution_coverage": round(self.fine_coverage.execution_coverage, 3),
            "coarse_execution_coverage": round(self.coarse_coverage.execution_coverage, 3),
            "coarse_misses_kernels": self.coarse_misses_kernels(),
        }


def run_coarse_coverage(
    scale: ExperimentScale | None = None, seed: int = 32, runs: int = 30, executions: int = 8
) -> CoarseCoverageResult:
    del scale  # run count is intentionally small; coverage is a per-run property
    kernel = cb_gemm(2048)
    estimator = CoarseSamplerEstimator()
    rng = np.random.default_rng(seed)

    def collect(sampler: str, backend_seed: int) -> CoverageReport:
        backend = make_backend(seed=backend_seed, sampler=sampler)
        period = backend.power_sample_period_s
        records = [
            backend.run(
                kernel,
                executions=executions,
                pre_delay_s=float(rng.uniform(0, 2 * period)),
                run_index=i,
            )
            for i in range(runs)
        ]
        return estimator.coverage(records)

    return CoarseCoverageResult(
        kernel_name=kernel.name,
        fine_coverage=collect("averaging", seed + 1),
        coarse_coverage=collect("coarse", seed + 2),
    )


# --------------------------------------------------------------------------- #
# Binning-margin sweep.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BinningMarginPoint:
    margin: float
    golden_fraction: float
    profile_spread: float

    def to_row(self) -> dict[str, object]:
        return {
            "margin_pct": round(self.margin * 100, 1),
            "golden_fraction": round(self.golden_fraction, 3),
            "profile_spread": round(self.profile_spread, 4),
        }


@dataclass(frozen=True)
class BinningMarginSweep:
    kernel_name: str
    points: tuple[BinningMarginPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.to_row() for point in self.points]

    def tighter_margin_keeps_fewer_runs(self) -> bool:
        fractions = [point.golden_fraction for point in self.points]
        return all(a <= b + 1e-9 for a, b in zip(fractions, fractions[1:]))


def binning_margin_jobs(
    scale: ExperimentScale | None = None, seed: int = 33, runs: int | None = None
) -> list[ProfileJob]:
    """The single CB-4K-GEMM profile job behind the margin sweep."""
    scale = scale or default_scale()
    return [
        ProfileJob(
            job_id="ablations/margins/CB-4K-GEMM",
            kernel=kernel_spec("cb_gemm", 4096),
            runs=runs or scale.methodology_runs,
            backend_seed=seed,
            profiler_seed=seed + 100,
            # The margin sweep re-bins and re-stitches the raw run records,
            # so this job must ship the full result (never slim).
            result_mode="full",
            adaptive=configured_adaptive(),
        )
    ]


def binning_margin_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 33,
    margins: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.10),
) -> BinningMarginSweep:
    del scale, seed
    result: FinGraVResult = results["ablations/margins/CB-4K-GEMM"]
    kernel_name = result.kernel_name

    stitcher = ProfileStitcher(calibration=result.calibration)
    series = stitcher.collect(list(result.runs))
    durations = [run.ssp_execution.duration_s for run in result.runs]
    run_indices = [run.run_index for run in result.runs]

    points: list[BinningMarginPoint] = []
    for margin in sorted(margins):
        binning = ExecutionTimeBinner(margin).bin(durations)
        golden = [run_indices[i] for i in binning.selected_indices]
        profile = stitcher.ssp_profile(series, golden)
        spread = profile_spread(profile) if len(profile) >= 3 else 0.0
        points.append(
            BinningMarginPoint(
                margin=margin,
                golden_fraction=binning.selection_ratio,
                profile_spread=spread,
            )
        )
    return BinningMarginSweep(kernel_name=kernel_name, points=tuple(points))


def run_binning_margin_sweep(
    scale: ExperimentScale | None = None,
    seed: int = 33,
    runs: int | None = None,
    margins: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.10),
    runner: SweepRunner | None = None,
) -> BinningMarginSweep:
    jobs = binning_margin_jobs(scale=scale, seed=seed, runs=runs)
    return binning_margin_from_results(
        run_jobs(jobs, runner), scale=scale, seed=seed, margins=margins
    )


# --------------------------------------------------------------------------- #
# Clock-drift sensitivity.
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class DriftSensitivityPoint:
    drift_ppm: float
    mean_toi_error_s: float
    loi_count: int

    def to_row(self) -> dict[str, object]:
        return {
            "drift_ppm": self.drift_ppm,
            "mean_toi_error_us": round(self.mean_toi_error_s * 1e6, 2),
            "lois": self.loi_count,
        }


@dataclass(frozen=True)
class DriftSensitivityResult:
    kernel_name: str
    points: tuple[DriftSensitivityPoint, ...]

    def rows(self) -> list[dict[str, object]]:
        return [point.to_row() for point in self.points]

    def error_grows_with_drift(self) -> bool:
        errors = [point.mean_toi_error_s for point in self.points]
        return all(a <= b + 1e-9 for a, b in zip(errors, errors[1:]))


def run_drift_sensitivity(
    scale: ExperimentScale | None = None,
    seed: int = 34,
    runs: int = 30,
    drifts_ppm: tuple[float, ...] = (0.0, 50.0, 500.0, 5000.0),
) -> DriftSensitivityResult:
    """Quantify LOI placement error as the GPU clock drifts vs the CPU clock.

    The placement error of each LOI is measured against the ground-truth
    sample time the simulator retains in its telemetry (never visible to the
    methodology on real hardware, but available here for validation).
    """
    del scale
    kernel = cb_gemm(8192)
    rng = np.random.default_rng(seed)
    points: list[DriftSensitivityPoint] = []
    for drift in sorted(drifts_ppm):
        base_spec = mi300x_spec()
        clock_spec = dataclass_replace(base_spec.clocks, drift_ppm=drift)
        spec = GPUSpec(
            name=base_spec.name,
            num_xcds=base_spec.num_xcds,
            num_iods=base_spec.num_iods,
            num_hbm_stacks=base_spec.num_hbm_stacks,
            xcd=base_spec.xcd,
            iod=base_spec.iod,
            hbm=base_spec.hbm,
            power=base_spec.power,
            dvfs=base_spec.dvfs,
            clocks=clock_spec,
            telemetry=base_spec.telemetry,
        )
        backend = make_backend(seed=seed + int(drift), spec=spec)
        calibration = backend.calibrate_read_delay(16)
        period = backend.power_sample_period_s
        errors: list[float] = []
        loi_count = 0
        for run_index in range(runs):
            record = backend.run(
                kernel,
                executions=4,
                pre_delay_s=float(rng.uniform(0, 2 * period)),
                run_index=run_index,
            )
            synchronizer = synchronizer_for_run(record, calibration)
            lois = extract_lois(record, synchronizer)
            loi_count += len(lois)
            counter = backend.device.timestamp_counter
            for loi in lois:
                true_time = counter.sim_time_of_ticks(loi.reading.gpu_timestamp_ticks)
                errors.append(abs(loi.window_end_cpu_s - true_time))
        mean_error = float(np.mean(errors)) if errors else 0.0
        points.append(
            DriftSensitivityPoint(drift_ppm=drift, mean_toi_error_s=mean_error, loi_count=loi_count)
        )
    return DriftSensitivityResult(kernel_name=kernel.name, points=tuple(points))


__all__ = [
    "SamplerAblationResult",
    "sampler_ablation_jobs",
    "sampler_ablation_from_results",
    "run_sampler_ablation",
    "CoarseCoverageResult",
    "run_coarse_coverage",
    "BinningMarginPoint",
    "BinningMarginSweep",
    "binning_margin_jobs",
    "binning_margin_from_results",
    "run_binning_margin_sweep",
    "DriftSensitivityPoint",
    "DriftSensitivityResult",
    "run_drift_sensitivity",
]
