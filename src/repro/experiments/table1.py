"""Table I: FinGraV profiling guidance, re-derived empirically.

The paper's Table I recommends, per kernel-execution-time range, how many runs
to execute, how many logs of interest (LOIs) to target, and what binning
margin to allow.  This driver re-derives the empirical basis of that table:
for one representative kernel per range it measures

* the LOI yield per run (how often a 1 ms sample lands inside the execution of
  interest), which determines the #runs needed to hit the LOI target, and
* the fraction of runs surviving golden-run selection at the recommended
  binning margin,

and places the paper's recommendation next to the measured requirement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..core.guidance import GuidanceEntry, paper_guidance_table
from ..core.profiler import FinGraVResult
from .common import ExperimentScale, default_scale
from .sweep import KernelSpec, ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class GuidanceRowMeasurement:
    """Measured LOI economics for one execution-time range."""

    entry: GuidanceEntry
    kernel_name: str
    execution_time_s: float
    runs_executed: int
    golden_runs: int
    ssp_lois: int
    target_lois: int
    #: Executions per run whose LOIs count toward the SSP profile (the SSP
    #: execution plus the stability tail appended by the profiler).
    qualifying_executions_per_run: int = 1

    @property
    def loi_yield_per_run(self) -> float:
        """Average SSP LOIs obtained per executed run (tail executions included)."""
        return self.ssp_lois / self.runs_executed if self.runs_executed else 0.0

    @property
    def per_execution_yield(self) -> float:
        """Probability that one specific execution of a run yields an LOI.

        This is the paper's framing (at best a single power log per run for a
        sub-millisecond kernel), independent of how many stability-tail
        executions the profiler appends.
        """
        if self.runs_executed <= 0 or self.qualifying_executions_per_run <= 0:
            return 0.0
        return self.ssp_lois / (self.runs_executed * self.qualifying_executions_per_run)

    @property
    def runs_needed_for_target(self) -> int:
        """Runs required for the LOI target at one qualifying execution per run."""
        if self.per_execution_yield <= 0:
            return 0
        return int(math.ceil(self.target_lois / min(self.per_execution_yield, 1.0)))

    @property
    def golden_fraction(self) -> float:
        return self.golden_runs / self.runs_executed if self.runs_executed else 0.0

    def to_row(self) -> dict[str, object]:
        return {
            "range": self.entry.describe().split(":")[0],
            "kernel": self.kernel_name,
            "execution_time_us": round(self.execution_time_s * 1e6, 1),
            "paper_runs": self.entry.runs,
            "paper_margin_pct": round(self.entry.binning_margin * 100, 1),
            "target_lois": self.target_lois,
            "per_execution_loi_yield": round(self.per_execution_yield, 3),
            "runs_needed_for_target": self.runs_needed_for_target,
            "runs_executed": self.runs_executed,
            "golden_fraction": round(self.golden_fraction, 2),
        }


@dataclass(frozen=True)
class Table1Result:
    """The regenerated guidance table."""

    measurements: tuple[GuidanceRowMeasurement, ...]

    def rows(self) -> list[dict[str, object]]:
        return [measurement.to_row() for measurement in self.measurements]

    def paper_rows(self) -> list[dict[str, object]]:
        """Table I exactly as printed in the paper."""
        return paper_guidance_table().rows()

    def shorter_kernels_need_more_runs(self) -> bool:
        """The paper's rationale: smaller kernels yield fewer LOIs per execution.

        Checked on the per-execution LOI yield: the shortest kernel's yield is
        the lowest and the longest kernel's the highest, which is why Table I
        recommends more runs at the short end.
        """
        ordered = sorted(self.measurements, key=lambda m: m.execution_time_s)
        yields = [m.per_execution_yield for m in ordered]
        if len(yields) < 2:
            return False
        return yields[0] <= min(yields) + 1e-9 and yields[-1] >= max(yields) - 1e-9

    def recommendations_are_sufficient(self, slack: float = 1.5) -> bool:
        """Paper-recommended #runs roughly cover the measured requirement.

        The paper treats its #runs as guidance plus an optional top-up
        (methodology step 8), so a modest slack factor is allowed.
        """
        return all(
            m.runs_needed_for_target <= m.entry.runs * slack
            for m in self.measurements
            if m.runs_needed_for_target > 0
        )


#: Representative kernel per guidance range: (range upper bound tag, spec).
_REPRESENTATIVES: tuple[tuple[str, KernelSpec], ...] = (
    ("25-50us", kernel_spec("cb_gemm", 2048)),
    ("50-200us", kernel_spec("cb_gemm", 4096)),
    ("200us-1ms", kernel_spec("square_gemm", 6144, name="CB-6K-GEMM")),
    (">1ms", kernel_spec("cb_gemm", 8192)),
)


def _measure_row(entry: GuidanceEntry, result: FinGraVResult) -> GuidanceRowMeasurement:
    # executions_per_run is carried by both full and slim results, so the
    # measurement never needs the raw run records.
    qualifying = max(result.executions_per_run - result.plan.ssp_executions + 1, 1)
    return GuidanceRowMeasurement(
        entry=entry,
        kernel_name=result.kernel_name,
        execution_time_s=result.execution_time_s,
        runs_executed=result.num_runs,
        golden_runs=result.num_golden_runs,
        ssp_lois=result.ssp_loi_count,
        target_lois=entry.recommended_lois(result.execution_time_s),
        qualifying_executions_per_run=qualifying,
    )


def table1_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 1,
    runs: int | None = None,
) -> list[ProfileJob]:
    """One profile job per guidance range's representative kernel."""
    scale = scale or default_scale()
    # The measurements read scalar bookkeeping only (run counts, LOI counts,
    # the plan): ship slim results retaining *no* profile sections at all.
    result_mode = configured_result_mode()
    return [
        ProfileJob(
            job_id=f"table1/{tag}",
            kernel=spec,
            runs=runs or scale.gemm_runs,
            backend_seed=seed + offset,
            profiler_seed=seed + 100 + offset,
            result_mode=result_mode,
            profile_sections=(),
            adaptive=configured_adaptive(),
        )
        for offset, (tag, spec) in enumerate(_REPRESENTATIVES)
    ]


def table1_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 1,
) -> Table1Result:
    """Assemble the regenerated Table I from executed sweep jobs."""
    del scale, seed
    table = paper_guidance_table()
    measurements: list[GuidanceRowMeasurement] = []
    for tag, _ in _REPRESENTATIVES:
        result: FinGraVResult = results[f"table1/{tag}"]
        entry = table.lookup(result.execution_time_s)
        measurements.append(_measure_row(entry, result))
    return Table1Result(measurements=tuple(measurements))


def run_table1(
    scale: ExperimentScale | None = None,
    seed: int = 1,
    runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Table1Result:
    """Regenerate Table I by measuring LOI economics per execution-time range."""
    jobs = table1_jobs(scale=scale, seed=seed, runs=runs)
    return table1_from_results(run_jobs(jobs, runner), scale=scale, seed=seed)


__all__ = [
    "GuidanceRowMeasurement",
    "Table1Result",
    "table1_jobs",
    "table1_from_results",
    "run_table1",
]
