"""Shared plumbing for the experiment drivers.

Every paper table/figure has one driver module in this package.  They all
build their backends and profilers through these helpers so that seeds, run
budgets and sampler choices are controlled in one place, and so the benchmarks
can switch between a *fast* scale (CI-friendly) and the *paper* scale
(the run counts of Table I) with a single argument.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core.profiler import FinGraVProfiler, ProfilerConfig
from ..gpu.backend import BackendConfig, SimulatedDeviceBackend
from ..gpu.spec import GPUSpec, mi300x_spec


@dataclass(frozen=True)
class ExperimentScale:
    """Run budgets for the experiment drivers."""

    name: str
    gemm_runs: int
    gemv_runs: int
    collective_runs: int
    interleaved_runs: int
    methodology_runs: int
    reduced_runs: int

    def validate(self) -> None:
        for field_name in (
            "gemm_runs", "gemv_runs", "collective_runs",
            "interleaved_runs", "methodology_runs", "reduced_runs",
        ):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


#: Minimal budgets for smoke jobs (CI sweep) and the integration tests.
TINY_SCALE = ExperimentScale(
    name="tiny",
    gemm_runs=40,
    gemv_runs=100,
    collective_runs=40,
    interleaved_runs=30,
    methodology_runs=60,
    reduced_runs=20,
)

#: Small budgets for unit/integration tests and quick local runs.
FAST_SCALE = ExperimentScale(
    name="fast",
    gemm_runs=50,
    gemv_runs=120,
    collective_runs=50,
    interleaved_runs=40,
    methodology_runs=70,
    reduced_runs=25,
)

#: The paper's run budgets (Table I) -- used by the benchmark harnesses.
PAPER_SCALE = ExperimentScale(
    name="paper",
    gemm_runs=200,
    gemv_runs=400,
    collective_runs=200,
    interleaved_runs=150,
    methodology_runs=200,
    reduced_runs=50,
)


def default_scale() -> ExperimentScale:
    """Scale selected via the ``FINGRAV_SCALE`` environment variable.

    ``FINGRAV_SCALE`` may name any known scale (``tiny`` / ``fast`` /
    ``paper``); anything else (including unset) selects the fast budgets.
    """
    try:
        return scale_by_name(os.environ.get("FINGRAV_SCALE", "fast"))
    except ValueError:
        return FAST_SCALE


def scale_by_name(name: str) -> ExperimentScale:
    """Look up a scale by name (``tiny`` / ``fast`` / ``paper``)."""
    scales = {scale.name: scale for scale in (TINY_SCALE, FAST_SCALE, PAPER_SCALE)}
    try:
        return scales[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown scale {name!r}; pick one of {sorted(scales)}") from exc


def execution_provenance() -> dict[str, str | None]:
    """Engine/provider identity stamped into sweep manifests and benchmarks.

    Resolution can itself fail (e.g. a corrupted compiled provider mid-CI);
    provenance is diagnostic metadata, so that degrades to an ``"error"``
    stamp instead of failing the caller.
    """
    from ..gpu import fastcore

    try:
        return {
            "engine": fastcore.resolve_engine(),
            "provider": fastcore.provider_name(),
            "numba": fastcore.numba_version(),
        }
    except Exception as exc:  # pragma: no cover - defensive
        return {"engine": "error", "provider": None, "numba": None, "error": str(exc)}


_POWER_SAMPLE_PERIOD_S: float | None = None


def power_sample_period_s() -> float:
    """The standard backend's power-logger period (cached spec constant)."""
    global _POWER_SAMPLE_PERIOD_S
    if _POWER_SAMPLE_PERIOD_S is None:
        _POWER_SAMPLE_PERIOD_S = make_backend(seed=0).power_sample_period_s
    return _POWER_SAMPLE_PERIOD_S


def make_backend(
    seed: int = 0,
    sampler: str = "averaging",
    spec: GPUSpec | None = None,
) -> SimulatedDeviceBackend:
    """A simulated-MI300X backend with the standard configuration."""
    return SimulatedDeviceBackend(
        spec=spec or mi300x_spec(),
        seed=seed,
        config=BackendConfig(sampler=sampler),
    )


def make_profiler(
    backend: SimulatedDeviceBackend,
    seed: int = 2024,
    synchronize: bool = True,
    apply_binning: bool = True,
    differentiate: bool = True,
    max_additional_runs: int = 200,
    result_mode: str = "full",
    profile_sections: tuple[str, ...] | None = None,
    adaptive: bool = False,
) -> FinGraVProfiler:
    """A FinGraV profiler with the standard configuration.

    ``result_mode="slim"`` makes ``profile()`` return the slim result
    projection (bit-identical profiles, no raw runs) -- what the sweep engine
    ships through worker IPC and its on-disk cache for drivers that never
    re-stitch the raw runs.  ``profile_sections`` narrows a slim result to
    the profile sections the driver actually consumes (summary-only drivers
    declare ``()``); it is ignored in full mode.  ``adaptive`` enables
    convergence-driven early stopping of run collection (the remaining
    adaptive knobs stay at their ``ProfilerConfig`` defaults under the
    sweep; see ``docs/profiler.md``).
    """
    config = ProfilerConfig(
        seed=seed,
        synchronize=synchronize,
        apply_binning=apply_binning,
        differentiate=differentiate,
        max_additional_runs=max_additional_runs,
        result_mode=result_mode,
        profile_sections=profile_sections,
        adaptive=adaptive,
    )
    return FinGraVProfiler(backend, config)


__all__ = [
    "ExperimentScale",
    "TINY_SCALE",
    "FAST_SCALE",
    "PAPER_SCALE",
    "default_scale",
    "scale_by_name",
    "execution_provenance",
    "power_sample_period_s",
    "make_backend",
    "make_profiler",
]
