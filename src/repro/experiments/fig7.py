"""Figure 7: component-level comparison of CB GEMMs vs MB GEMVs.

The paper plots relative total / XCD / IOD / HBM power of the three
compute-bound GEMMs and the three memory-bound GEMVs, using their SSP
profiles.  The expected relationships are:

* CB GEMMs draw considerably higher total and XCD power than MB GEMVs;
* among CB GEMMs, CB-8K-GEMM is slightly higher in total/XCD power;
* total power drops from MB-8K-GEMV to MB-2K-GEMV;
* MB-8K-GEMV stresses IOD power more than any CB GEMM;
* CB-8K-GEMM has the highest HBM power of the six kernels;
* CB-2K-GEMM has roughly half the compute utilisation of CB-8K yet similar
  XCD power (the power-proportionality gap of takeaway #4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..analysis.comparative import ComponentComparison, comparison_from_results
from ..analysis.errors import ErrorSummary, summarize_errors
from ..analysis.proportionality import ProportionalityAssessment, assess_proportionality
from ..core.profiler import FinGraVResult
from ..gpu.spec import mi300x_spec
from ..kernels.workloads import GEMM_SIZES, cb_gemms, mb_gemvs
from .common import ExperimentScale, default_scale, power_sample_period_s
from .sweep import ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class Fig7Result:
    """Everything the Figure-7 reproduction reports."""

    comparison: ComponentComparison
    results: tuple[FinGraVResult, ...]
    errors: ErrorSummary
    proportionality: ProportionalityAssessment
    cb_names: tuple[str, ...]
    mb_names: tuple[str, ...]

    # ------------------------------------------------------------------ #
    # The paper's claims as individual checks.
    # ------------------------------------------------------------------ #
    def cb_above_mb_total(self) -> bool:
        cb = [self.comparison.summary_for(n).component("total") for n in self.cb_names]
        mb = [self.comparison.summary_for(n).component("total") for n in self.mb_names]
        return min(cb) > max(mb)

    def cb_above_mb_xcd(self) -> bool:
        cb = [self.comparison.summary_for(n).component("xcd") for n in self.cb_names]
        mb = [self.comparison.summary_for(n).component("xcd") for n in self.mb_names]
        return min(cb) > max(mb)

    def cb8k_highest_cb_total(self) -> bool:
        totals = {n: self.comparison.summary_for(n).component("total") for n in self.cb_names}
        return max(totals, key=totals.get) == "CB-8K-GEMM"

    def gemv_total_drops_with_size(self) -> bool:
        ordered = [self.comparison.summary_for(n).component("total") for n in self.mb_names]
        return ordered[0] > ordered[-1]

    def mb8k_stresses_iod(self) -> bool:
        mb8k_iod = self.comparison.summary_for("MB-8K-GEMV").component("iod")
        cb_iods = [self.comparison.summary_for(n).component("iod") for n in self.cb_names]
        return mb8k_iod > max(cb_iods)

    def cb8k_highest_hbm(self) -> bool:
        hbm = self.comparison.series("hbm")
        return max(hbm, key=hbm.get) == "CB-8K-GEMM"

    def xcd_similar_across_cb(self, tolerance: float = 0.35) -> bool:
        xcd = [self.comparison.summary_for(n).component("xcd") for n in self.cb_names]
        return (max(xcd) - min(xcd)) / max(xcd) <= tolerance

    def all_claims(self) -> dict[str, bool]:
        return {
            "cb_above_mb_total": self.cb_above_mb_total(),
            "cb_above_mb_xcd": self.cb_above_mb_xcd(),
            "cb8k_highest_cb_total": self.cb8k_highest_cb_total(),
            "gemv_total_drops_with_size": self.gemv_total_drops_with_size(),
            "mb8k_stresses_iod": self.mb8k_stresses_iod(),
            "cb8k_highest_hbm": self.cb8k_highest_hbm(),
            "xcd_similar_across_cb": self.xcd_similar_across_cb(),
        }

    def rows(self) -> list[dict[str, object]]:
        return self.comparison.to_rows()

    def summary(self) -> dict[str, object]:
        summary: dict[str, object] = {"kernels": len(self.comparison.summaries)}
        summary.update(self.all_claims())
        summary["max_sse_vs_ssp_error_pct"] = round(self.errors.max_error() * 100, 1)
        return summary


def fig7_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 7,
    gemm_runs: int | None = None,
    gemv_runs: int | None = None,
) -> list[ProfileJob]:
    """Per-kernel profile jobs for Figure 7 (one independent job per kernel)."""
    scale = scale or default_scale()
    gemm_runs = gemm_runs or scale.gemm_runs
    gemv_runs = gemv_runs or scale.gemv_runs
    jobs: list[ProfileJob] = []
    offset = 0
    # Assembly only reads the SSP/SSE profiles (component comparison + error
    # summary) and scalar summaries, never the raw runs or the whole-run
    # profile: ship slim, run profile dropped (and never stitched).
    result_mode = configured_result_mode()
    for key, runs in (("cb_gemm", gemm_runs), ("mb_gemv", gemv_runs)):
        for size in GEMM_SIZES:
            spec = kernel_spec(key, size)
            jobs.append(
                ProfileJob(
                    job_id=f"fig7/{spec.build().name}",
                    kernel=spec,
                    runs=runs,
                    backend_seed=seed + offset,
                    profiler_seed=seed + 100 + offset,
                    result_mode=result_mode,
                    profile_sections=("ssp", "sse"),
                    adaptive=configured_adaptive(),
                )
            )
            offset += 1
    return jobs


def fig7_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 7,
) -> Fig7Result:
    """Assemble the Figure-7 result from executed sweep jobs."""
    del scale, seed  # assembly depends only on the job results
    gemms = cb_gemms()
    gemvs = mb_gemvs()
    ordered: tuple[FinGraVResult, ...] = tuple(
        results[f"fig7/{kernel.name}"] for kernel in (*gemms, *gemvs)
    )
    comparison = comparison_from_results(ordered)
    errors = summarize_errors(ordered, power_sample_period_s())
    proportionality = assess_proportionality(
        kernels=[*gemms, *gemvs],
        summaries=comparison.summaries,
        spec=mi300x_spec(),
    )
    return Fig7Result(
        comparison=comparison,
        results=ordered,
        errors=errors,
        proportionality=proportionality,
        cb_names=tuple(k.name for k in gemms),
        mb_names=tuple(k.name for k in gemvs),
    )


def run_fig7(
    scale: ExperimentScale | None = None,
    seed: int = 7,
    gemm_runs: int | None = None,
    gemv_runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig7Result:
    """Reproduce Figure 7 (component comparison of the six GEMM/GEMV kernels)."""
    jobs = fig7_jobs(scale=scale, seed=seed, gemm_runs=gemm_runs, gemv_runs=gemv_runs)
    return fig7_from_results(run_jobs(jobs, runner), scale=scale, seed=seed)


__all__ = ["Fig7Result", "fig7_jobs", "fig7_from_results", "run_fig7"]
