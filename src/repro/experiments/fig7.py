"""Figure 7: component-level comparison of CB GEMMs vs MB GEMVs.

The paper plots relative total / XCD / IOD / HBM power of the three
compute-bound GEMMs and the three memory-bound GEMVs, using their SSP
profiles.  The expected relationships are:

* CB GEMMs draw considerably higher total and XCD power than MB GEMVs;
* among CB GEMMs, CB-8K-GEMM is slightly higher in total/XCD power;
* total power drops from MB-8K-GEMV to MB-2K-GEMV;
* MB-8K-GEMV stresses IOD power more than any CB GEMM;
* CB-8K-GEMM has the highest HBM power of the six kernels;
* CB-2K-GEMM has roughly half the compute utilisation of CB-8K yet similar
  XCD power (the power-proportionality gap of takeaway #4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.comparative import ComponentComparison, compare_kernels
from ..analysis.errors import ErrorSummary, summarize_errors
from ..analysis.proportionality import ProportionalityAssessment, assess_proportionality
from ..core.profiler import FinGraVResult
from ..kernels.workloads import cb_gemms, mb_gemvs
from .common import ExperimentScale, default_scale, make_backend, make_profiler


@dataclass(frozen=True)
class Fig7Result:
    """Everything the Figure-7 reproduction reports."""

    comparison: ComponentComparison
    results: tuple[FinGraVResult, ...]
    errors: ErrorSummary
    proportionality: ProportionalityAssessment
    cb_names: tuple[str, ...]
    mb_names: tuple[str, ...]

    # ------------------------------------------------------------------ #
    # The paper's claims as individual checks.
    # ------------------------------------------------------------------ #
    def cb_above_mb_total(self) -> bool:
        cb = [self.comparison.summary_for(n).component("total") for n in self.cb_names]
        mb = [self.comparison.summary_for(n).component("total") for n in self.mb_names]
        return min(cb) > max(mb)

    def cb_above_mb_xcd(self) -> bool:
        cb = [self.comparison.summary_for(n).component("xcd") for n in self.cb_names]
        mb = [self.comparison.summary_for(n).component("xcd") for n in self.mb_names]
        return min(cb) > max(mb)

    def cb8k_highest_cb_total(self) -> bool:
        totals = {n: self.comparison.summary_for(n).component("total") for n in self.cb_names}
        return max(totals, key=totals.get) == "CB-8K-GEMM"

    def gemv_total_drops_with_size(self) -> bool:
        ordered = [self.comparison.summary_for(n).component("total") for n in self.mb_names]
        return ordered[0] > ordered[-1]

    def mb8k_stresses_iod(self) -> bool:
        mb8k_iod = self.comparison.summary_for("MB-8K-GEMV").component("iod")
        cb_iods = [self.comparison.summary_for(n).component("iod") for n in self.cb_names]
        return mb8k_iod > max(cb_iods)

    def cb8k_highest_hbm(self) -> bool:
        hbm = self.comparison.series("hbm")
        return max(hbm, key=hbm.get) == "CB-8K-GEMM"

    def xcd_similar_across_cb(self, tolerance: float = 0.35) -> bool:
        xcd = [self.comparison.summary_for(n).component("xcd") for n in self.cb_names]
        return (max(xcd) - min(xcd)) / max(xcd) <= tolerance

    def all_claims(self) -> dict[str, bool]:
        return {
            "cb_above_mb_total": self.cb_above_mb_total(),
            "cb_above_mb_xcd": self.cb_above_mb_xcd(),
            "cb8k_highest_cb_total": self.cb8k_highest_cb_total(),
            "gemv_total_drops_with_size": self.gemv_total_drops_with_size(),
            "mb8k_stresses_iod": self.mb8k_stresses_iod(),
            "cb8k_highest_hbm": self.cb8k_highest_hbm(),
            "xcd_similar_across_cb": self.xcd_similar_across_cb(),
        }

    def rows(self) -> list[dict[str, object]]:
        return self.comparison.to_rows()

    def summary(self) -> dict[str, object]:
        summary: dict[str, object] = {"kernels": len(self.comparison.summaries)}
        summary.update(self.all_claims())
        summary["max_sse_vs_ssp_error_pct"] = round(self.errors.max_error() * 100, 1)
        return summary


def run_fig7(
    scale: ExperimentScale | None = None,
    seed: int = 7,
    gemm_runs: int | None = None,
    gemv_runs: int | None = None,
) -> Fig7Result:
    """Reproduce Figure 7 (component comparison of the six GEMM/GEMV kernels)."""
    scale = scale or default_scale()
    gemm_runs = gemm_runs or scale.gemm_runs
    gemv_runs = gemv_runs or scale.gemv_runs

    gemms = cb_gemms()
    gemvs = mb_gemvs()
    backend = make_backend(seed=seed)
    profiler = make_profiler(backend, seed=seed + 100)

    gemm_comparison, gemm_results = compare_kernels(profiler, gemms, runs=gemm_runs)
    gemv_comparison, gemv_results = compare_kernels(profiler, gemvs, runs=gemv_runs)
    results = tuple(gemm_results + gemv_results)
    comparison = ComponentComparison(
        summaries=tuple(list(gemm_comparison.summaries) + list(gemv_comparison.summaries))
    )
    errors = summarize_errors(results, backend.power_sample_period_s)
    proportionality = assess_proportionality(
        kernels=[*gemms, *gemvs],
        summaries=comparison.summaries,
        spec=backend.device.spec,
    )
    return Fig7Result(
        comparison=comparison,
        results=results,
        errors=errors,
        proportionality=proportionality,
        cb_names=tuple(k.name for k in gemms),
        mb_names=tuple(k.name for k in gemvs),
    )


__all__ = ["Fig7Result", "run_fig7"]
