"""Figure 6: CB-8K-GEMM total and XCD power over a run.

The paper's Figure 6 plots total and XCD power across warm-up, SSE and SSP
executions of the compute-bound 8K GEMM over 200 runs.  The expected shape is:
power rises sharply for the initial executions (boost into the power limit),
the power-management firmware throttles the clock so power drops to the SSE
level, and power then climbs slowly back to the SSP level (~20 % above SSE in
the paper) where it stabilises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.profiler import FinGraVResult
from .common import ExperimentScale, default_scale
from .sweep import ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class RunShapeSeries:
    """Binned whole-run power series for one component."""

    component: str
    times_s: tuple[float, ...]
    power_w: tuple[float, ...]

    def peak_w(self) -> float:
        return max(self.power_w)

    def rows(self) -> list[dict[str, float]]:
        return [
            {"time_ms": t * 1e3, f"{self.component}_w": p}
            for t, p in zip(self.times_s, self.power_w)
        ]


@dataclass(frozen=True)
class Fig6Result:
    """Everything the Figure-6 reproduction reports."""

    kernel_name: str
    result: FinGraVResult
    total_series: RunShapeSeries
    xcd_series: RunShapeSeries
    sse_power_w: float
    ssp_power_w: float
    sse_vs_ssp_error: float
    throttling_detected: bool
    ssp_executions: int

    def rise_then_fall_then_rise(self) -> bool:
        """The paper's qualitative shape for CB-8K-GEMM.

        Checked on the in-execution part of the run profile: an early peak
        exceeds a subsequent dip, and the tail recovers above that dip.
        """
        power = np.asarray(self.total_series.power_w)
        if len(power) < 5:
            return False
        # Restrict to bins where the kernel is clearly active (above idle-ish level).
        active = power > 0.5 * power.max()
        if not np.any(active):
            return False
        active_power = power[active]
        # Drop the trailing bins: the last averaging windows straddle the end of
        # the run and are diluted by the post-run idle padding.
        if len(active_power) > 6:
            active_power = active_power[:-2]
        peak_index = int(np.argmax(active_power[: max(len(active_power) // 2, 1)]))
        peak = float(active_power[peak_index])
        after_peak = active_power[peak_index + 1:]
        if len(after_peak) < 2:
            return False
        dip_index = int(np.argmin(after_peak))
        dip = float(after_peak[dip_index])
        tail = float(np.max(after_peak[dip_index:]))
        return peak > dip * 1.05 and tail > dip * 1.05

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for total_row, xcd_row in zip(self.total_series.rows(), self.xcd_series.rows()):
            rows.append({**total_row, **xcd_row})
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "execution_time_us": round(self.result.execution_time_s * 1e6, 1),
            "throttling_detected": self.throttling_detected,
            "ssp_executions": self.ssp_executions,
            "sse_total_w": round(self.sse_power_w, 1),
            "ssp_total_w": round(self.ssp_power_w, 1),
            "sse_vs_ssp_error_pct": round(self.sse_vs_ssp_error * 100, 1),
            "rise_fall_rise_shape": self.rise_then_fall_then_rise(),
        }


def _binned_series(result: FinGraVResult, component: str, bins: int) -> RunShapeSeries:
    times, power = result.run_profile.binned_mean(component, bins=bins)
    return RunShapeSeries(
        component=component,
        times_s=tuple(float(t) for t in times),
        power_w=tuple(float(p) for p in power),
    )


def fig6_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 6,
    runs: int | None = None,
) -> list[ProfileJob]:
    """The single CB-8K-GEMM profile job behind Figure 6."""
    scale = scale or default_scale()
    return [
        ProfileJob(
            job_id="fig6/CB-8K-GEMM",
            kernel=kernel_spec("cb_gemm", 8192),
            runs=runs or scale.gemm_runs,
            backend_seed=seed,
            profiler_seed=seed + 100,
            # Assembly bins the whole-run profile and reads the SSE/SSP means
            # and error from the summary snapshot: ship slim, run-only.
            result_mode=configured_result_mode(),
            profile_sections=("run",),
            adaptive=configured_adaptive(),
        )
    ]


def fig6_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 6,
    bins: int = 28,
) -> Fig6Result:
    """Assemble the Figure-6 result from the executed sweep job."""
    del scale, seed
    result: FinGraVResult = results["fig6/CB-8K-GEMM"]
    # The SSE/SSP means and error come from the summary snapshot so a slim
    # run-only result (no SSP/SSE profiles shipped) assembles identically.
    summary = result.summary()
    return Fig6Result(
        kernel_name=result.kernel_name,
        result=result,
        total_series=_binned_series(result, "total", bins),
        xcd_series=_binned_series(result, "xcd", bins),
        sse_power_w=float(summary["sse_mean_total_w"]),
        ssp_power_w=float(summary["ssp_mean_total_w"]),
        sse_vs_ssp_error=float(summary["sse_vs_ssp_error"]),
        throttling_detected=result.plan.throttling_detected,
        ssp_executions=result.plan.ssp_executions,
    )


def run_fig6(
    scale: ExperimentScale | None = None,
    seed: int = 6,
    bins: int = 28,
    runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig6Result:
    """Reproduce Figure 6 (CB-8K-GEMM whole-run total and XCD power)."""
    jobs = fig6_jobs(scale=scale, seed=seed, runs=runs)
    return fig6_from_results(run_jobs(jobs, runner), scale=scale, seed=seed, bins=bins)


__all__ = ["RunShapeSeries", "Fig6Result", "fig6_jobs", "fig6_from_results", "run_fig6"]
