"""Figure 9: total power of interleaved GEMM/GEMV executions vs isolated SSP.

The paper interleaves kernels and compares the measured power of the kernel of
interest to its isolated SSP profile:

* ``CB->8K``      -- 60 CB-2K-GEMMs before CB-8K-GEMM: only a slight rise;
* ``MB->2K``      -- 40 MB-4K-GEMVs before CB-2K-GEMM: far lower than SSP;
* ``CB->2K``      -- CB-8K/4K-GEMMs before CB-2K-GEMM: higher than SSP;
* ``MB->8K gemv`` -- MB-4K/2K-GEMVs before MB-8K-GEMV: lower than SSP;
* ``CB->4K gemv`` -- CB-8K/4K-GEMMs before MB-4K-GEMV: higher than SSP.

The takeaway: kernels shorter than the averaging window inherit the power
level of whatever ran before them, while CB-8K-GEMM (longer than the window)
is essentially unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..analysis.interleaving import InterleavedMeasurement
from ..core.profile import FineGrainProfile
from ..core.profiler import FinGraVResult
from .common import ExperimentScale, default_scale
from .sweep import KernelSpec, ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class Fig9Result:
    """Everything the Figure-9 reproduction reports."""

    measurements: tuple[InterleavedMeasurement, ...]

    def measurement(self, label: str) -> InterleavedMeasurement:
        for measurement in self.measurements:
            if measurement.label == label:
                return measurement
        raise KeyError(f"no measurement labelled {label!r}")

    # ------------------------------------------------------------------ #
    # The paper's per-scenario expectations.
    # ------------------------------------------------------------------ #
    def expectations(self) -> dict[str, bool]:
        checks: dict[str, bool] = {}
        cb_to_8k = self.measurement("CB->8K")
        checks["CB->8K only slightly changed"] = 0.92 <= cb_to_8k.ratio <= 1.15
        checks["MB->2K far lower than SSP"] = self.measurement("MB->2K").ratio < 0.8
        checks["CB->2K higher than SSP"] = self.measurement("CB->2K").ratio > 1.05
        checks["MB->8K gemv lower than SSP"] = self.measurement("MB->8K gemv").ratio < 0.95
        checks["CB->4K gemv higher than SSP"] = self.measurement("CB->4K gemv").ratio > 1.05
        return checks

    def short_kernels_affected_long_not(self) -> bool:
        """Takeaway #5: short kernels inherit preceding power; CB-8K does not."""
        checks = self.expectations()
        return all(checks.values())

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for measurement in self.measurements:
            rows.append(
                {
                    "scenario": measurement.label,
                    "kernel": measurement.kernel_name,
                    "preceded_by": " + ".join(measurement.preceding_description),
                    "isolated_ssp_w": round(measurement.isolated_ssp_w, 1),
                    "interleaved_w": round(measurement.interleaved_w, 1),
                    "ratio_to_ssp": round(measurement.ratio, 3),
                    "direction": measurement.direction(),
                    "lois": measurement.lois,
                }
            )
        return rows

    def summary(self) -> dict[str, object]:
        summary: dict[str, object] = dict(self.expectations())
        summary["all_expectations_hold"] = self.short_kernels_affected_long_not()
        return summary


#: The five Figure-9 scenarios as picklable job specs, mirroring
#: :func:`repro.kernels.workloads.interleaving_scenarios`.
_SCENARIOS: tuple[tuple[str, KernelSpec, tuple[tuple[KernelSpec, int], ...]], ...] = (
    ("CB->8K", kernel_spec("cb_gemm", 8192), ((kernel_spec("cb_gemm", 2048), 60),)),
    ("MB->2K", kernel_spec("cb_gemm", 2048), ((kernel_spec("mb_gemv", 4096), 40),)),
    (
        "CB->2K",
        kernel_spec("cb_gemm", 2048),
        ((kernel_spec("cb_gemm", 8192), 2), (kernel_spec("cb_gemm", 4096), 40)),
    ),
    (
        "MB->8K gemv",
        kernel_spec("mb_gemv", 8192),
        ((kernel_spec("mb_gemv", 4096), 20), (kernel_spec("mb_gemv", 2048), 20)),
    ),
    (
        "CB->4K gemv",
        kernel_spec("mb_gemv", 4096),
        ((kernel_spec("cb_gemm", 8192), 2), (kernel_spec("cb_gemm", 4096), 4)),
    ),
)


def _isolated_kernels() -> list[tuple[str, KernelSpec]]:
    """Distinct kernels of interest, in first-appearance order."""
    isolated: dict[str, KernelSpec] = {}
    for _, spec, _ in _SCENARIOS:
        isolated.setdefault(spec.build().name, spec)
    return list(isolated.items())


def fig9_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 9,
    runs: int | None = None,
    isolated_runs: int | None = None,
) -> list[ProfileJob]:
    """Isolated-SSP jobs per kernel of interest plus one job per scenario."""
    scale = scale or default_scale()
    runs = runs or scale.interleaved_runs
    jobs: list[ProfileJob] = []
    # Assembly reads only the isolated SSP profiles: ship slim, SSP-only
    # results (the interleaved scenario jobs return a bare FineGrainProfile
    # regardless).
    result_mode = configured_result_mode()
    for offset, (name, spec) in enumerate(_isolated_kernels()):
        kernel_runs = isolated_runs
        if kernel_runs is None:
            kernel_runs = scale.gemv_runs if "GEMV" in name else scale.gemm_runs
        jobs.append(
            ProfileJob(
                job_id=f"fig9/isolated/{name}",
                kernel=spec,
                runs=kernel_runs,
                backend_seed=seed + offset,
                profiler_seed=seed + 100 + offset,
                result_mode=result_mode,
                profile_sections=("ssp",),
                adaptive=configured_adaptive(),
            )
        )
    for offset, (label, spec, preceding) in enumerate(_SCENARIOS):
        jobs.append(
            ProfileJob(
                job_id=f"fig9/interleaved/{label}",
                kernel=spec,
                runs=runs,
                backend_seed=seed + 10 + offset,
                profiler_seed=seed + 110 + offset,
                preceding=preceding,
                interleave_seed=seed + 200 + offset,
            )
        )
    return jobs


def fig9_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 9,
) -> Fig9Result:
    """Assemble the Figure-9 measurements from executed sweep jobs."""
    del scale, seed
    measurements: list[InterleavedMeasurement] = []
    for label, spec, preceding in _SCENARIOS:
        kernel_name = spec.build().name
        reference: FinGraVResult = results[f"fig9/isolated/{kernel_name}"]
        interleaved: FineGrainProfile = results[f"fig9/interleaved/{label}"]
        if interleaved.is_empty:
            raise ValueError(
                f"scenario {label}: no logs of interest were captured; "
                "increase the number of runs"
            )
        measurements.append(
            InterleavedMeasurement(
                label=label,
                kernel_name=kernel_name,
                isolated_ssp_w=reference.ssp_profile.mean_power_w("total"),
                interleaved_w=interleaved.mean_power_w("total"),
                preceding_description=tuple(
                    f"{p.build().name} x{count}" for p, count in preceding
                ),
                lois=len(interleaved),
                interleaved_profile=interleaved,
            )
        )
    return Fig9Result(measurements=tuple(measurements))


def run_fig9(
    scale: ExperimentScale | None = None,
    seed: int = 9,
    runs: int | None = None,
    isolated_runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig9Result:
    """Reproduce Figure 9 (interleaved GEMM/GEMV power comparison)."""
    jobs = fig9_jobs(scale=scale, seed=seed, runs=runs, isolated_runs=isolated_runs)
    return fig9_from_results(run_jobs(jobs, runner), scale=scale, seed=seed)


__all__ = ["Fig9Result", "fig9_jobs", "fig9_from_results", "run_fig9"]
