"""Figure 9: total power of interleaved GEMM/GEMV executions vs isolated SSP.

The paper interleaves kernels and compares the measured power of the kernel of
interest to its isolated SSP profile:

* ``CB->8K``      -- 60 CB-2K-GEMMs before CB-8K-GEMM: only a slight rise;
* ``MB->2K``      -- 40 MB-4K-GEMVs before CB-2K-GEMM: far lower than SSP;
* ``CB->2K``      -- CB-8K/4K-GEMMs before CB-2K-GEMM: higher than SSP;
* ``MB->8K gemv`` -- MB-4K/2K-GEMVs before MB-8K-GEMV: lower than SSP;
* ``CB->4K gemv`` -- CB-8K/4K-GEMMs before MB-4K-GEMV: higher than SSP.

The takeaway: kernels shorter than the averaging window inherit the power
level of whatever ran before them, while CB-8K-GEMM (longer than the window)
is essentially unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.interleaving import InterleavedMeasurement, InterleavingStudy
from ..kernels.workloads import interleaving_scenarios
from .common import ExperimentScale, default_scale, make_backend, make_profiler


@dataclass(frozen=True)
class Fig9Result:
    """Everything the Figure-9 reproduction reports."""

    measurements: tuple[InterleavedMeasurement, ...]

    def measurement(self, label: str) -> InterleavedMeasurement:
        for measurement in self.measurements:
            if measurement.label == label:
                return measurement
        raise KeyError(f"no measurement labelled {label!r}")

    # ------------------------------------------------------------------ #
    # The paper's per-scenario expectations.
    # ------------------------------------------------------------------ #
    def expectations(self) -> dict[str, bool]:
        checks: dict[str, bool] = {}
        cb_to_8k = self.measurement("CB->8K")
        checks["CB->8K only slightly changed"] = 0.92 <= cb_to_8k.ratio <= 1.15
        checks["MB->2K far lower than SSP"] = self.measurement("MB->2K").ratio < 0.8
        checks["CB->2K higher than SSP"] = self.measurement("CB->2K").ratio > 1.05
        checks["MB->8K gemv lower than SSP"] = self.measurement("MB->8K gemv").ratio < 0.95
        checks["CB->4K gemv higher than SSP"] = self.measurement("CB->4K gemv").ratio > 1.05
        return checks

    def short_kernels_affected_long_not(self) -> bool:
        """Takeaway #5: short kernels inherit preceding power; CB-8K does not."""
        checks = self.expectations()
        return all(checks.values())

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for measurement in self.measurements:
            rows.append(
                {
                    "scenario": measurement.label,
                    "kernel": measurement.kernel_name,
                    "preceded_by": " + ".join(measurement.preceding_description),
                    "isolated_ssp_w": round(measurement.isolated_ssp_w, 1),
                    "interleaved_w": round(measurement.interleaved_w, 1),
                    "ratio_to_ssp": round(measurement.ratio, 3),
                    "direction": measurement.direction(),
                    "lois": measurement.lois,
                }
            )
        return rows

    def summary(self) -> dict[str, object]:
        summary: dict[str, object] = dict(self.expectations())
        summary["all_expectations_hold"] = self.short_kernels_affected_long_not()
        return summary


def run_fig9(
    scale: ExperimentScale | None = None,
    seed: int = 9,
    runs: int | None = None,
    isolated_runs: int | None = None,
) -> Fig9Result:
    """Reproduce Figure 9 (interleaved GEMM/GEMV power comparison)."""
    scale = scale or default_scale()
    runs = runs or scale.interleaved_runs
    backend = make_backend(seed=seed)
    profiler = make_profiler(backend, seed=seed + 100)
    study = InterleavingStudy(backend, profiler=profiler, runs=runs, seed=seed + 200)

    scenarios = interleaving_scenarios()
    # Profile each distinct kernel of interest once in isolation and share it.
    isolated = {}
    for scenario in scenarios:
        name = backend.kernel_name(scenario.kernel_of_interest)
        if name not in isolated:
            kernel = scenario.kernel_of_interest
            kernel_runs = isolated_runs
            if kernel_runs is None:
                kernel_runs = scale.gemv_runs if "GEMV" in name else scale.gemm_runs
            isolated[name] = study.isolated_ssp(kernel, runs=kernel_runs)

    measurements = study.run_scenarios(scenarios, isolated=isolated, runs=runs)
    return Fig9Result(measurements=tuple(measurements))


__all__ = ["Fig9Result", "run_fig9"]
