"""One driver per paper table/figure, plus ablations and the sweep engine.

Each module exposes ``run_<experiment>()`` returning a result object with the
rows/series the paper reports and boolean checks for the paper's qualitative
claims.  Drivers register their per-kernel profiling work as
:class:`~repro.experiments.sweep.ProfileJob` specs, so a
:class:`~repro.experiments.sweep.SweepRunner` can fan the whole suite out
across a process pool (``python -m repro.experiments.sweep --all``); the
matching benchmark under ``benchmarks/`` calls the driver and prints the
regenerated table/figure data.
"""

from .ablations import (
    BinningMarginSweep,
    CoarseCoverageResult,
    DriftSensitivityResult,
    SamplerAblationResult,
    run_binning_margin_sweep,
    run_coarse_coverage,
    run_drift_sensitivity,
    run_sampler_ablation,
)
from .common import (
    FAST_SCALE,
    PAPER_SCALE,
    TINY_SCALE,
    ExperimentScale,
    default_scale,
    make_backend,
    make_profiler,
    power_sample_period_s,
    scale_by_name,
)
from .fig5 import Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6
from .fig7 import Fig7Result, run_fig7
from .fig8 import Fig8Result, run_fig8
from .fig9 import Fig9Result, run_fig9
from .fig10 import Fig10Result, run_fig10
from .sweep import (
    EXPERIMENT_NAMES,
    JobFailure,
    KernelSpec,
    ProfileJob,
    SweepConfig,
    SweepJobError,
    SweepManifest,
    SweepRunner,
    configured_adaptive,
    configured_result_mode,
    default_runner,
    execute_job,
    kernel_spec,
    run_jobs,
    run_sweep,
)
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

__all__ = [
    "BinningMarginSweep",
    "CoarseCoverageResult",
    "DriftSensitivityResult",
    "SamplerAblationResult",
    "run_binning_margin_sweep",
    "run_coarse_coverage",
    "run_drift_sensitivity",
    "run_sampler_ablation",
    "FAST_SCALE",
    "PAPER_SCALE",
    "TINY_SCALE",
    "ExperimentScale",
    "default_scale",
    "scale_by_name",
    "power_sample_period_s",
    "make_backend",
    "make_profiler",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Fig7Result",
    "run_fig7",
    "Fig8Result",
    "run_fig8",
    "Fig9Result",
    "run_fig9",
    "Fig10Result",
    "run_fig10",
    "EXPERIMENT_NAMES",
    "JobFailure",
    "KernelSpec",
    "ProfileJob",
    "SweepConfig",
    "SweepJobError",
    "SweepManifest",
    "SweepRunner",
    "configured_adaptive",
    "configured_result_mode",
    "default_runner",
    "execute_job",
    "kernel_spec",
    "run_jobs",
    "run_sweep",
    "Table1Result",
    "run_table1",
    "Table2Result",
    "run_table2",
]
