"""Figure 8: CB-2K-GEMM total and XCD power over a run.

The compute-light 2K GEMM is much shorter than the 1 ms averaging window, so
its measured power starts low (the window is mostly idle) and rises gradually
as repeated executions fill the window, stabilising only at the SSP execution.
The resulting SSE-vs-SSP spread is the paper's headline measurement-error
number (~80 %), far larger than for CB-8K-GEMM (~20 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.profiler import FinGraVResult
from .common import ExperimentScale, default_scale
from .fig6 import RunShapeSeries, _binned_series
from .sweep import ProfileJob, SweepRunner, configured_adaptive, configured_result_mode, kernel_spec, run_jobs


@dataclass(frozen=True)
class Fig8Result:
    """Everything the Figure-8 reproduction reports."""

    kernel_name: str
    result: FinGraVResult
    total_series: RunShapeSeries
    xcd_series: RunShapeSeries
    sse_power_w: float
    ssp_power_w: float
    sse_vs_ssp_error: float
    ssp_executions: int

    def gradual_rise(self) -> bool:
        """The paper's qualitative shape for CB-2K-GEMM: a monotonic-ish climb.

        Checked as: the early in-run power is well below the late in-run
        power, and no early peak exceeds the final level (no throttle spike).
        """
        power = np.asarray(self.total_series.power_w)
        if len(power) < 5:
            return False
        quarter = max(len(power) // 4, 1)
        early = float(np.mean(power[:quarter]))
        late = float(np.max(power[-quarter:]))
        peak = float(np.max(power))
        return early < 0.8 * late and peak <= late * 1.05

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for total_row, xcd_row in zip(self.total_series.rows(), self.xcd_series.rows()):
            rows.append({**total_row, **xcd_row})
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "execution_time_us": round(self.result.execution_time_s * 1e6, 1),
            "ssp_executions": self.ssp_executions,
            "sse_total_w": round(self.sse_power_w, 1),
            "ssp_total_w": round(self.ssp_power_w, 1),
            "sse_vs_ssp_error_pct": round(self.sse_vs_ssp_error * 100, 1),
            "gradual_rise_shape": self.gradual_rise(),
        }


def fig8_jobs(
    scale: ExperimentScale | None = None,
    seed: int = 8,
    runs: int | None = None,
) -> list[ProfileJob]:
    """The single CB-2K-GEMM profile job behind Figure 8."""
    scale = scale or default_scale()
    return [
        ProfileJob(
            job_id="fig8/CB-2K-GEMM",
            kernel=kernel_spec("cb_gemm", 2048),
            runs=runs or scale.gemm_runs,
            backend_seed=seed,
            profiler_seed=seed + 100,
            # Assembly bins the whole-run profile and reads the SSE/SSP means
            # and error from the summary snapshot: ship slim, run-only.
            result_mode=configured_result_mode(),
            profile_sections=("run",),
            adaptive=configured_adaptive(),
        )
    ]


def fig8_from_results(
    results: Mapping[str, object],
    scale: ExperimentScale | None = None,
    seed: int = 8,
    bins: int = 24,
) -> Fig8Result:
    """Assemble the Figure-8 result from the executed sweep job."""
    del scale, seed
    result: FinGraVResult = results["fig8/CB-2K-GEMM"]
    # The SSE/SSP means and error come from the summary snapshot so a slim
    # run-only result (no SSP/SSE profiles shipped) assembles identically.
    summary = result.summary()
    return Fig8Result(
        kernel_name=result.kernel_name,
        result=result,
        total_series=_binned_series(result, "total", bins),
        xcd_series=_binned_series(result, "xcd", bins),
        sse_power_w=float(summary["sse_mean_total_w"]),
        ssp_power_w=float(summary["ssp_mean_total_w"]),
        sse_vs_ssp_error=float(summary["sse_vs_ssp_error"]),
        ssp_executions=result.plan.ssp_executions,
    )


def run_fig8(
    scale: ExperimentScale | None = None,
    seed: int = 8,
    bins: int = 24,
    runs: int | None = None,
    runner: SweepRunner | None = None,
) -> Fig8Result:
    """Reproduce Figure 8 (CB-2K-GEMM whole-run total and XCD power)."""
    jobs = fig8_jobs(scale=scale, seed=seed, runs=runs)
    return fig8_from_results(run_jobs(jobs, runner), scale=scale, seed=seed, bins=bins)


__all__ = ["Fig8Result", "fig8_jobs", "fig8_from_results", "run_fig8"]
