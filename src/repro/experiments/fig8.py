"""Figure 8: CB-2K-GEMM total and XCD power over a run.

The compute-light 2K GEMM is much shorter than the 1 ms averaging window, so
its measured power starts low (the window is mostly idle) and rises gradually
as repeated executions fill the window, stabilising only at the SSP execution.
The resulting SSE-vs-SSP spread is the paper's headline measurement-error
number (~80 %), far larger than for CB-8K-GEMM (~20 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.profiler import FinGraVResult
from ..kernels.workloads import cb_gemm
from .common import ExperimentScale, default_scale, make_backend, make_profiler
from .fig6 import RunShapeSeries, _binned_series


@dataclass(frozen=True)
class Fig8Result:
    """Everything the Figure-8 reproduction reports."""

    kernel_name: str
    result: FinGraVResult
    total_series: RunShapeSeries
    xcd_series: RunShapeSeries
    sse_power_w: float
    ssp_power_w: float
    sse_vs_ssp_error: float
    ssp_executions: int

    def gradual_rise(self) -> bool:
        """The paper's qualitative shape for CB-2K-GEMM: a monotonic-ish climb.

        Checked as: the early in-run power is well below the late in-run
        power, and no early peak exceeds the final level (no throttle spike).
        """
        power = np.asarray(self.total_series.power_w)
        if len(power) < 5:
            return False
        quarter = max(len(power) // 4, 1)
        early = float(np.mean(power[:quarter]))
        late = float(np.max(power[-quarter:]))
        peak = float(np.max(power))
        return early < 0.8 * late and peak <= late * 1.05

    def rows(self) -> list[dict[str, object]]:
        rows = []
        for total_row, xcd_row in zip(self.total_series.rows(), self.xcd_series.rows()):
            rows.append({**total_row, **xcd_row})
        return rows

    def summary(self) -> dict[str, object]:
        return {
            "kernel": self.kernel_name,
            "execution_time_us": round(self.result.execution_time_s * 1e6, 1),
            "ssp_executions": self.ssp_executions,
            "sse_total_w": round(self.sse_power_w, 1),
            "ssp_total_w": round(self.ssp_power_w, 1),
            "sse_vs_ssp_error_pct": round(self.sse_vs_ssp_error * 100, 1),
            "gradual_rise_shape": self.gradual_rise(),
        }


def run_fig8(
    scale: ExperimentScale | None = None,
    seed: int = 8,
    bins: int = 24,
    runs: int | None = None,
) -> Fig8Result:
    """Reproduce Figure 8 (CB-2K-GEMM whole-run total and XCD power)."""
    scale = scale or default_scale()
    backend = make_backend(seed=seed)
    profiler = make_profiler(backend, seed=seed + 100)
    kernel = cb_gemm(2048)
    result = profiler.profile(kernel, runs=runs or scale.gemm_runs)
    return Fig8Result(
        kernel_name=result.kernel_name,
        result=result,
        total_series=_binned_series(result, "total", bins),
        xcd_series=_binned_series(result, "xcd", bins),
        sse_power_w=result.sse_profile.mean_power_w("total"),
        ssp_power_w=result.ssp_profile.mean_power_w("total"),
        sse_vs_ssp_error=result.sse_vs_ssp_error(),
        ssp_executions=result.plan.ssp_executions,
    )


__all__ = ["Fig8Result", "run_fig8"]
